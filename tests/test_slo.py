"""SLO-aware strategy selection."""

import pytest

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import Money
from repro.core import CharacterizationStore, RetryPolicy
from repro.core.slo import SLOSelector
from repro.sampling import CharacterizationBuilder
from repro.workloads import workload_by_name
from tests.helpers import make_cloud


def put_profile(store, zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    store.put(builder.snapshot())


@pytest.fixture
def selector():
    cloud = make_cloud(seed=201)
    store = CharacterizationStore()
    put_profile(store, "test-1a", {"xeon-2.5": 60, "xeon-2.9": 40})
    put_profile(store, "test-1b", {"xeon-2.5": 40, "xeon-3.0": 60})
    return SLOSelector(cloud, store)


WORKLOAD = workload_by_name("zipper")  # base 8 s


class TestForecast(object):
    def test_baseline_forecast(self, selector):
        forecast = selector.forecast(WORKLOAD, "test-1a")
        assert forecast.expected_retries == 0
        # Mean factor = 0.6*1.0 + 0.4*1.22 = 1.088 -> ~8.7 s runtime.
        assert forecast.expected_latency_s == pytest.approx(8.73, abs=0.2)
        # p95 is bounded by the slowest CPU's runtime.
        assert forecast.latency_p95_s >= 8.0 * 1.22

    def test_retry_forecast_faster_but_with_retries(self, selector):
        retry = RetryPolicy(["xeon-2.9"])
        forecast = selector.forecast(WORKLOAD, "test-1a", retry)
        baseline = selector.forecast(WORKLOAD, "test-1a")
        assert forecast.expected_retries > 0
        assert forecast.expected_latency_s < baseline.expected_latency_s
        assert forecast.expected_cost_usd < baseline.expected_cost_usd

    def test_retry_tail_includes_retry_rounds(self, selector):
        retry = RetryPolicy(["xeon-2.9"], hold_seconds=0.5)
        with_hold = selector.forecast(WORKLOAD, "test-1a", retry)
        no_hold = selector.forecast(
            WORKLOAD, "test-1a", RetryPolicy(["xeon-2.9"],
                                             hold_seconds=0.0))
        assert with_hold.latency_p95_s > no_hold.latency_p95_s

    def test_banning_everything_raises(self, selector):
        retry = RetryPolicy(["xeon-2.5", "xeon-2.9"])
        with pytest.raises(CharacterizationError):
            selector.forecast(WORKLOAD, "test-1a", retry)

    def test_candidate_menu_shape(self, selector):
        forecasts = selector.candidate_forecasts(
            WORKLOAD, ["test-1a", "test-1b"])
        names = {f.name for f in forecasts}
        assert "direct@test-1a" in names
        assert "focus_fastest@test-1b" in names
        assert len(forecasts) == 6  # 2 zones x 3 strategies

    def test_unknown_zones_skipped(self, selector):
        forecasts = selector.candidate_forecasts(WORKLOAD,
                                                 ["test-1a", "ghost"])
        assert all(f.zone_id == "test-1a" for f in forecasts)

    def test_no_zones_raises(self, selector):
        with pytest.raises(CharacterizationError):
            selector.candidate_forecasts(WORKLOAD, ["ghost"])


class TestSelect(object):
    def test_loose_slo_picks_cheapest(self, selector):
        chosen = selector.select(WORKLOAD, ["test-1a", "test-1b"],
                                 latency_slo_s=60.0)
        # With latency unconstrained, a focus-fastest strategy in the
        # 3.0 GHz-rich zone is the cheapest menu entry.
        assert chosen.name.startswith("focus_fastest")
        assert chosen.zone_id == "test-1b"

    def test_median_slo_filters_then_minimizes_cost(self, selector):
        menu = selector.candidate_forecasts(WORKLOAD,
                                            ["test-1a", "test-1b"])
        slo = sorted(f.latency_p95_s for f in menu)[len(menu) // 2]
        chosen = selector.select(WORKLOAD, ["test-1a", "test-1b"],
                                 latency_slo_s=slo)
        feasible = [f for f in menu if f.meets(slo)]
        infeasible = [f for f in menu if not f.meets(slo)]
        assert infeasible, "the median SLO must exclude something"
        assert chosen.meets(slo)
        assert chosen.expected_cost_usd == pytest.approx(
            min(f.expected_cost_usd for f in feasible))

    def test_interactive_slo_prefers_direct_over_retry_tails(self):
        # A zone whose fast CPU is rare: focusing it piles up retry
        # rounds on the tail, so a tail-sensitive SLO forces the direct
        # strategy even though retrying is cheaper — the paper's
        # batch-vs-interactive guidance as a mechanical outcome.
        cloud = make_cloud(seed=202)
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 55, "xeon-2.9": 45})
        selector = SLOSelector(cloud, store)
        menu = selector.candidate_forecasts(WORKLOAD, ["test-1a"])
        retry_like = [f for f in menu if f.retry_policy is not None]
        direct = [f for f in menu if f.retry_policy is None][0]
        assert min(f.expected_cost_usd for f in retry_like) < (
            direct.expected_cost_usd)
        assert all(f.latency_p95_s > direct.latency_p95_s - 1.2
                   for f in retry_like)

    def test_impossible_slo_raises_with_guidance(self, selector):
        with pytest.raises(ConfigurationError) as excinfo:
            selector.select(WORKLOAD, ["test-1a", "test-1b"],
                            latency_slo_s=0.5)
        assert "fastest available" in str(excinfo.value)

    def test_selected_strategy_meets_slo(self, selector):
        slo = 10.5
        chosen = selector.select(WORKLOAD, ["test-1a", "test-1b"],
                                 latency_slo_s=slo)
        assert chosen.latency_p95_s <= slo
