"""Burst execution and workload profiling."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    RetryPolicy,
    SmartRouter,
    WorkloadRunner,
)
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import make_cloud


@pytest.fixture
def setup():
    cloud = make_cloud(seed=51)
    account = cloud.create_account("runner", "aws")
    mesh = SkyMesh(cloud)
    deployment = cloud.deploy(
        account, "test-1a", "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    mesh.register(deployment)
    return cloud, account, mesh, deployment


class TestRunBurst(object):
    def test_burst_aggregates(self, setup):
        cloud, account, mesh, _ = setup
        store = CharacterizationStore()
        builder = CharacterizationBuilder("test-1a")
        builder.add_poll({"xeon-2.5": 10, "xeon-2.9": 6})
        store.put(builder.snapshot())
        router = SmartRouter(cloud, mesh, store,
                             BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"), ["test-1a"])
        result = WorkloadRunner(cloud).run_burst(router, 20)
        assert result.n == 20
        assert result.total_cost > Money(0)
        assert sum(result.cpu_counts.values()) == 20
        assert result.retry_fraction == 0.0
        assert result.zones == ["test-1a"]


class TestProfileWorkload(object):
    def test_profile_covers_zone_cpus(self, setup):
        cloud, _, _, deployment = setup
        workload = workload_by_name("matrix_multiply")
        profile = WorkloadRunner(cloud).profile_workload(
            deployment, workload, repetitions=600, batch_size=200)
        assert set(profile.cpu_keys()) == {"xeon-2.5", "xeon-2.9"}
        assert sum(profile.count(c) for c in profile.cpu_keys()) == 600

    def test_profile_recovers_figure9_factors(self, setup):
        cloud, _, _, deployment = setup
        workload = workload_by_name("matrix_multiply")
        profile = WorkloadRunner(cloud).profile_workload(
            deployment, workload, repetitions=800, batch_size=200)
        normalized = profile.normalized_to("xeon-2.5")
        expected = workload.cpu_factors()["xeon-2.9"]
        assert normalized["xeon-2.9"] == pytest.approx(expected, rel=0.05)

    def test_profile_validates_repetitions(self, setup):
        cloud, _, _, deployment = setup
        with pytest.raises(ConfigurationError):
            WorkloadRunner(cloud).profile_workload(
                deployment, workload_by_name("zipper"), 0)

    def test_normalized_to_unobserved_cpu_raises(self, setup):
        cloud, _, _, deployment = setup
        profile = WorkloadRunner(cloud).profile_workload(
            deployment, workload_by_name("zipper"), repetitions=100,
            batch_size=100)
        with pytest.raises(ConfigurationError):
            profile.normalized_to("amd-epyc")

    def test_profile_many(self, setup):
        cloud, _, _, deployment = setup
        workloads = [workload_by_name("zipper"),
                     workload_by_name("sha1_hash")]
        profiles = WorkloadRunner(cloud).profile_many(
            deployment, workloads, repetitions=100, batch_size=100)
        assert set(profiles) == {"zipper", "sha1_hash"}


class TestBatchedBurst(object):
    def test_baseline_burst(self, setup):
        cloud, account, _, deployment = setup
        workload = workload_by_name("zipper")
        result = WorkloadRunner(cloud).run_batched_burst(
            deployment, workload, 500)
        assert result.executed == 500
        assert result.total_retries == 0
        assert result.total_cost > Money(0)

    def test_retry_burst_lands_on_allowed_cpus(self, setup):
        cloud, _, _, deployment = setup
        workload = workload_by_name("zipper")
        retry = RetryPolicy(["xeon-2.9"], max_retries=10)
        result = WorkloadRunner(cloud).run_batched_burst(
            deployment, workload, 500, retry_policy=retry,
            policy_name="retry_slow")
        assert set(result.cpu_counts) == {"xeon-2.5"}
        assert result.total_retries > 0

    def test_retry_burst_costs_include_holds(self, setup):
        cloud, _, _, deployment = setup
        workload = workload_by_name("zipper")
        baseline = WorkloadRunner(cloud).run_batched_burst(
            deployment, workload, 300)
        cloud.clock.advance(700.0)
        retry = RetryPolicy(["xeon-2.9"], max_retries=10)
        retried = WorkloadRunner(cloud).run_batched_burst(
            deployment, workload, 300, retry_policy=retry)
        # Filtering the slow 37% of the zone must beat the baseline even
        # after paying for holds.
        assert float(retried.total_cost) < float(baseline.total_cost)

    def test_burst_charged_to_account(self, setup):
        cloud, account, _, deployment = setup
        before = account.total_spend()
        WorkloadRunner(cloud).run_batched_burst(
            deployment, workload_by_name("zipper"), 100)
        assert account.total_spend() > before

    def test_validates_count(self, setup):
        cloud, _, _, deployment = setup
        with pytest.raises(ConfigurationError):
            WorkloadRunner(cloud).run_batched_burst(
                deployment, workload_by_name("zipper"), 0)

    def test_cost_per_invocation(self, setup):
        cloud, _, _, deployment = setup
        result = WorkloadRunner(cloud).run_batched_burst(
            deployment, workload_by_name("zipper"), 100)
        assert float(result.cost_per_invocation) == pytest.approx(
            float(result.total_cost) / 100)
