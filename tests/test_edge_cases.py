"""Edge cases across layers that no other test file pins down."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.cloudsim.handlers import SleepHandler
from tests.helpers import make_cloud


class TestZoneEdges(object):
    def test_occupancy_of_zero_capacity_zone(self, clock):
        from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
        from repro.cloudsim.host import HostPool
        zone = AvailabilityZone(
            "empty-1a", [HostPool("xeon-2.5", 0, 64)], clock,
            scaling=ScalingPolicy(max_surge_slots=0))
        assert zone.capacity == 0
        assert zone.occupancy() == 1.0  # full by definition

    def test_single_request_batch(self, zone):
        result = zone.place_batch("fn", 1, duration=0.25, window=0.2)
        assert result.served == 1
        assert result.unique_fis == 1

    def test_batch_larger_than_capacity(self, zone):
        result = zone.place_batch("fn", zone.capacity + 500,
                                  duration=0.25, window=0.0)
        assert result.served == zone.capacity
        assert result.failed == 500

    def test_duration_much_longer_than_window(self, zone):
        # duration/window > 1 clamps to all-unique, never more.
        result = zone.place_batch("fn", 100, duration=10.0, window=0.1)
        assert result.unique_fis == 100

    def test_reuse_prefers_same_deployment_even_with_many_others(self,
                                                                 zone):
        for index in range(5):
            zone.place_batch("other-{}".format(index), 50, duration=0.25,
                             window=0.2)
        zone.place_batch("mine", 50, duration=0.25, window=0.2)
        zone.clock.advance(5.0)
        second = zone.place_batch("mine", 50, duration=0.25, window=0.2)
        assert sum(second.reused_fi_counts.values()) == 50

    def test_cpu_keys_sorted(self, zone):
        assert zone.cpu_keys() == sorted(zone.cpu_keys())


class TestCloudEdges(object):
    def test_hold_with_unknown_instance_still_bills(self, cloud,
                                                    aws_account):
        # Holding an FI the index no longer tracks (e.g. batch-placed)
        # must still bill the hold — the platform doesn't care where the
        # busy-loop runs.
        deployment = cloud.deploy(aws_account, "test-1a", "fn", 2048,
                                  handler=SleepHandler(0.25))
        invocation = cloud.invoke(deployment)
        cloud.clock.advance(400.0)  # FI expired and dropped from index
        bill = cloud.hold(deployment, invocation, 0.150)
        assert bill.compute > Money(0)

    def test_invocation_repr_and_properties(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn", 2048,
                                  handler=SleepHandler(0.25))
        invocation = cloud.invoke(deployment)
        assert invocation.is_cold
        assert "test-1a" in repr(invocation)

    def test_region_names_filtering(self, cloud):
        assert cloud.region_names() == ["test-1"]
        assert cloud.region_names(provider="do") == []

    def test_poll_uses_handler_sleep(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn", 2048,
                                  handler=SleepHandler(0.5))
        result, bill = cloud.poll(deployment, 10)
        assert bill.billed_duration == pytest.approx(10 * 0.501)


class TestStudyResultEdges(object):
    def test_savings_summary_requires_baseline(self):
        from repro.core.study import StudyResult
        result = StudyResult("zipper", 2, ["only_policy"])
        result.daily_costs["only_policy"] = [1.0, 1.0]
        with pytest.raises(ConfigurationError):
            result.savings_summary()

    def test_cumulative_cost(self):
        from repro.core.study import StudyResult
        result = StudyResult("zipper", 2, ["baseline"])
        result.daily_costs["baseline"] = [1.5, 2.5]
        assert result.cumulative_cost("baseline") == 4.0


class TestMeshEdges(object):
    def test_sampling_endpoints_memory_never_exceeds_envelope(self):
        cloud = make_cloud(seed=211)
        account = cloud.create_account("edge", "aws")
        from repro.skymesh import SkyMesh
        mesh = SkyMesh(cloud)
        endpoints = mesh.deploy_sampling_endpoints(
            account, "test-1a", count=5, memory_base_mb=10235)
        assert max(e.memory_mb for e in endpoints) <= 10240

    def test_endpoint_lookup_distinguishes_arch(self):
        cloud = make_cloud(seed=212)
        account = cloud.create_account("edge", "aws")
        from repro.skymesh import SkyMesh
        mesh = SkyMesh(cloud)
        x86 = cloud.deploy(account, "test-1a", "dynamic", 2048,
                           arch="x86_64", handler=SleepHandler(0.25))
        arm = cloud.deploy(account, "test-1a", "dynamic", 2048,
                           arch="arm64", handler=SleepHandler(0.25))
        mesh.register(x86)
        mesh.register(arm)
        assert mesh.endpoint("test-1a", 2048, arch="arm64") is arm
        assert mesh.endpoint("test-1a", 2048, arch="x86_64") is x86


class TestDistributionSamplingEdge(object):
    def test_single_category_sampling(self):
        import numpy as np
        from repro.common.distributions import CategoricalDistribution
        d = CategoricalDistribution({"only": 5})
        draws = d.sample(np.random.default_rng(0), size=10)
        assert all(x == "only" for x in draws)


class TestRetriedInvocationEdges(object):
    def test_single_attempt_latency_equals_invocation(self):
        from repro.core.retry import RetriedInvocation
        from repro.common.units import Money

        class FakeInvocation(object):
            latency_s = 2.0
            runtime_s = 1.9
            cpu_key = "xeon-2.5"

            class bill(object):
                total = Money(0.001)

        outcome = RetriedInvocation(FakeInvocation(), [FakeInvocation()],
                                    Money(0), executed=True)
        assert outcome.retries == 0
        assert outcome.total_latency == 2.0
        assert outcome.billed_runtime == pytest.approx(1.9)
