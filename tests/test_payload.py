"""Dynamic-function payloads: encode/decode, hashing, size envelope."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import PayloadError
from repro.dynfunc.payload import (
    MAX_PAYLOAD_BYTES,
    DynamicPayload,
    build_payload,
    decode_payload,
    payload_decode_seconds,
)

SOURCE = "def handler(event, context):\n    return 42\n"


class TestBuildAndDecode(object):
    def test_roundtrip_code(self):
        payload = build_payload(SOURCE)
        source, files = decode_payload(payload)
        assert source == SOURCE
        assert files == {}

    def test_roundtrip_files(self):
        payload = build_payload(SOURCE, files={"data.bin": b"\x00\x01",
                                               "text.txt": "hello"})
        _, files = decode_payload(payload)
        assert files["data.bin"] == b"\x00\x01"
        assert files["text.txt"] == b"hello"

    def test_empty_source_rejected(self):
        with pytest.raises(PayloadError):
            build_payload("   ")

    def test_wire_dict_roundtrip(self):
        payload = build_payload(SOURCE, args={"x": 1})
        wire = payload.to_dict()
        rebuilt = DynamicPayload.from_dict(wire)
        assert rebuilt.sha256 == payload.sha256
        assert decode_payload(rebuilt)[0] == SOURCE

    def test_from_dict_missing_field(self):
        with pytest.raises(PayloadError):
            DynamicPayload.from_dict({"code": "xx"})

    def test_corrupt_blob_raises(self):
        payload = build_payload(SOURCE)
        payload = DynamicPayload("not-base64!!!", {}, payload.entry,
                                 None, payload.sha256)
        with pytest.raises(PayloadError):
            decode_payload(payload)


class TestHashing(object):
    def test_same_content_same_hash(self):
        assert build_payload(SOURCE).sha256 == build_payload(SOURCE).sha256

    def test_different_code_different_hash(self):
        assert (build_payload(SOURCE).sha256
                != build_payload(SOURCE + "# v2").sha256)

    def test_args_affect_hash(self):
        assert (build_payload(SOURCE, args={"a": 1}).sha256
                != build_payload(SOURCE, args={"a": 2}).sha256)

    def test_files_affect_hash(self):
        assert (build_payload(SOURCE, files={"f": b"1"}).sha256
                != build_payload(SOURCE, files={"f": b"2"}).sha256)


class TestSizeEnvelope(object):
    def test_envelope_is_5mb(self):
        assert MAX_PAYLOAD_BYTES == 5 * 1024 * 1024

    def test_oversized_payload_rejected(self):
        import os
        big = os.urandom(6 * 1024 * 1024)  # incompressible
        with pytest.raises(PayloadError):
            build_payload(SOURCE, files={"big.bin": big})

    def test_compressible_data_fits(self):
        big_but_compressible = b"a" * (6 * 1024 * 1024)
        payload = build_payload(SOURCE,
                                files={"big.txt": big_but_compressible})
        assert payload.encoded_bytes < MAX_PAYLOAD_BYTES


class TestDecodeModel(object):
    def test_small_payload_decodes_in_a_millisecond(self):
        # §3.2: "decoding and executing the source code ... added less than
        # 1 millisecond" for small payloads.
        payload = build_payload(SOURCE)
        assert payload_decode_seconds(payload) < 2e-3

    def test_max_payload_decodes_under_70ms(self):
        # §3.2: "at most 70 ms" for a 5 MB payload.
        class Fake(object):
            encoded_bytes = MAX_PAYLOAD_BYTES

        assert payload_decode_seconds(Fake()) <= 0.070 + 1e-9

    def test_monotonic_in_size(self):
        small = build_payload(SOURCE)
        larger = build_payload(SOURCE, files={"f": b"x" * 100000})
        assert (payload_decode_seconds(larger)
                > payload_decode_seconds(small))


class TestBannedCpus(object):
    def test_with_banned_cpus_copies(self):
        payload = build_payload(SOURCE)
        banned = payload.with_banned_cpus(["amd-epyc"])
        assert banned.banned_cpus == ("amd-epyc",)
        assert payload.banned_cpus == ()
        assert banned.sha256 == payload.sha256  # same cached content


@given(st.text(min_size=1).filter(lambda s: s.strip()),
       st.dictionaries(st.sampled_from(["a.txt", "b.bin", "c/d.dat"]),
                       st.binary(max_size=2048), max_size=3))
def test_property_roundtrip(source, files):
    payload = build_payload(source, files=files)
    decoded_source, decoded_files = decode_payload(payload)
    assert decoded_source == source
    assert decoded_files == files
