"""Retry policies and the retry engine."""

import pytest

from repro.common.errors import ConfigurationError, SaturationError
from repro.common.units import Money
from repro.core import RetryEngine, RetryPolicy
from repro.workloads import workload_by_name
from tests.helpers import drain_zone, make_cloud

FACTORS = {"xeon-2.5": 1.0, "xeon-2.9": 1.25, "xeon-3.0": 0.9,
           "amd-epyc": 1.5}
CPUS = sorted(FACTORS)


class TestRetryPolicy(object):
    def test_retry_slow_bans_two_slowest(self):
        policy = RetryPolicy.retry_slow(CPUS, FACTORS)
        assert policy.banned_cpus == {"amd-epyc", "xeon-2.9"}

    def test_focus_fastest_keeps_only_best(self):
        policy = RetryPolicy.focus_fastest(CPUS, FACTORS)
        assert policy.banned_cpus == {"amd-epyc", "xeon-2.5", "xeon-2.9"}
        assert not policy.is_banned("xeon-3.0")

    def test_retry_slow_cannot_ban_everything(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy.retry_slow(["a", "b"], {"a": 1, "b": 2},
                                   n_slowest=2)

    def test_focus_fastest_needs_cpus(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy.focus_fastest([], {})

    def test_defaults_match_paper(self):
        policy = RetryPolicy(["amd-epyc"])
        assert policy.hold_seconds == pytest.approx(0.150)
        assert policy.max_retries == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy([], max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy([], hold_seconds=-0.1)


@pytest.fixture
def retry_setup():
    # test-1a mixes xeon-2.5 (10 hosts) and xeon-2.9 (6 hosts).
    cloud = make_cloud(seed=31)
    account = cloud.create_account("router", "aws")
    workload = workload_by_name("zipper")
    deployment = cloud.deploy(account, "test-1a", "zipper", 2048,
                              handler=workload.handler())
    return cloud, account, deployment, workload


class TestRetryEngine(object):
    def test_lands_on_allowed_cpu(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        policy = RetryPolicy(["xeon-2.9"], max_retries=20)
        for _ in range(5):
            outcome = engine.invoke(deployment, policy)
            assert outcome.cpu_key == "xeon-2.5"
            assert outcome.executed
            cloud.clock.advance(400.0)

    def test_retries_counted_and_held(self, retry_setup):
        cloud, account, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        policy = RetryPolicy(["xeon-2.9"], max_retries=20)
        outcomes = [engine.invoke(deployment, policy) for _ in range(20)]
        retried = [o for o in outcomes if o.retries > 0]
        assert retried  # the 2.9 pool is ~37% of the zone
        assert any(o.hold_cost > Money(0) for o in retried)
        assert "retry-hold" in account.spend_breakdown()

    def test_no_retries_when_nothing_banned(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        outcome = engine.invoke(deployment, RetryPolicy([]))
        assert outcome.retries == 0
        assert outcome.hold_cost == Money(0)

    def test_budget_exhaustion_runs_anyway(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        # Ban both CPUs: every attempt is declined until the final
        # no-ban attempt executes the workload wherever it lands.
        policy = RetryPolicy(["xeon-2.5", "xeon-2.9"], max_retries=3)
        outcome = engine.invoke(deployment, policy)
        assert outcome.executed
        assert outcome.retries == 3
        assert outcome.final.runtime_s > 1.0  # the workload actually ran

    def test_declined_attempts_are_cheap(self, retry_setup):
        cloud, _, deployment, workload = retry_setup
        engine = RetryEngine(cloud)
        policy = RetryPolicy(["xeon-2.5", "xeon-2.9"], max_retries=2)
        outcome = engine.invoke(deployment, policy)
        for attempt in outcome.attempts[:-1]:
            assert attempt.runtime_s < 0.1  # CPU check, not the workload

    def test_total_cost_includes_holds(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        policy = RetryPolicy(["xeon-2.5", "xeon-2.9"], max_retries=2)
        outcome = engine.invoke(deployment, policy)
        attempts_cost = sum((a.bill.total for a in outcome.attempts),
                            Money(0))
        assert outcome.total_cost == attempts_cost + outcome.hold_cost

    def test_latency_grows_with_retries(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        direct = engine.invoke(deployment, RetryPolicy([]))
        cloud.clock.advance(400.0)
        policy = RetryPolicy(["xeon-2.5", "xeon-2.9"], max_retries=2)
        retried = engine.invoke(deployment, policy)
        assert retried.total_latency > direct.total_latency


class TestStructuredFailure(object):
    """Regression: platform errors mid-retry surface as a structured
    failed outcome, not a raise that loses attempts and hold cost."""

    def test_saturation_returns_a_failed_outcome(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        engine = RetryEngine(cloud)
        outcome = engine.invoke(deployment, RetryPolicy([]))
        assert outcome.failed
        assert not outcome.executed
        assert outcome.final is None
        assert outcome.cpu_key is None
        assert outcome.retries == 0
        assert isinstance(outcome.error, SaturationError)
        assert "FAILED no_capacity" in repr(outcome)

    def test_successful_outcomes_are_not_failed(self, retry_setup):
        cloud, _, deployment, _ = retry_setup
        engine = RetryEngine(cloud)
        outcome = engine.invoke(deployment, RetryPolicy([]))
        assert not outcome.failed
        assert outcome.error is None
