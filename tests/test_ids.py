"""Identifier factories and zone/region name helpers."""

from repro.common.ids import make_id_factory, region_of_zone, zone_of_region


class TestIdFactory(object):
    def test_sequential(self):
        factory = make_id_factory("req")
        assert factory() == "req-000001"
        assert factory() == "req-000002"

    def test_independent_factories(self):
        first, second = make_id_factory("a"), make_id_factory("b")
        first()
        assert second() == "b-000001"


class TestZoneNames(object):
    def test_zone_of_region(self):
        assert zone_of_region("us-east-2", "a") == "us-east-2a"

    def test_region_of_zone(self):
        assert region_of_zone("us-east-2a") == "us-east-2"
        assert region_of_zone("eu-north-1b") == "eu-north-1"

    def test_region_of_zone_without_suffix(self):
        # IBM/DO regions have no per-zone subdivision.
        assert region_of_zone("us-south") == "us-south"
        assert region_of_zone("nyc1") == "nyc1"

    def test_roundtrip(self):
        for region, suffix in [("us-west-1", "a"), ("ap-south-2", "c")]:
            assert region_of_zone(zone_of_region(region, suffix)) == region
