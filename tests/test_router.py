"""The SmartRouter."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    RegionalPolicy,
    RetryRoutingPolicy,
    SmartRouter,
)
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import make_cloud


def put_profile(store, zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    store.put(builder.snapshot())


@pytest.fixture
def routing_setup():
    cloud = make_cloud(seed=41)
    account = cloud.create_account("router", "aws")
    mesh = SkyMesh(cloud)
    for zone in ("test-1a", "test-1b"):
        deployment = cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
        mesh.register(deployment)
    store = CharacterizationStore()
    put_profile(store, "test-1a", {"xeon-2.5": 60, "xeon-2.9": 40})
    put_profile(store, "test-1b", {"xeon-2.5": 40, "xeon-3.0": 60})
    return cloud, mesh, store


def make_router(setup, policy, **kwargs):
    cloud, mesh, store = setup
    return SmartRouter(cloud, mesh, store, policy,
                       workload_by_name("sha1_hash"),
                       ["test-1a", "test-1b"], **kwargs)


class TestRouting(object):
    def test_baseline_routes_to_fixed_zone(self, routing_setup):
        router = make_router(routing_setup, BaselinePolicy("test-1a"))
        request = router.route()
        assert request.zone_id == "test-1a"
        assert request.retries == 0
        assert request.cost > Money(0)

    def test_regional_routes_to_best_zone(self, routing_setup):
        router = make_router(routing_setup, RegionalPolicy())
        assert router.route().zone_id == "test-1b"

    def test_retry_policy_applied(self, routing_setup):
        router = make_router(
            routing_setup,
            RetryRoutingPolicy("test-1a", "focus_fastest",
                               max_retries=20))
        requests = [router.route() for _ in range(15)]
        assert all(r.cpu_key == "xeon-2.5" for r in requests)
        assert any(r.retries > 0 for r in requests)

    def test_needs_candidate_zones(self, routing_setup):
        cloud, mesh, store = routing_setup
        with pytest.raises(ConfigurationError):
            SmartRouter(cloud, mesh, store, BaselinePolicy("test-1a"),
                        workload_by_name("sha1_hash"), [])

    def test_burst_decides_once(self, routing_setup):
        router = make_router(routing_setup, RegionalPolicy())
        requests = router.route_burst(10)
        assert len(requests) == 10
        assert len({r.zone_id for r in requests}) == 1

    def test_burst_validates_count(self, routing_setup):
        router = make_router(routing_setup, BaselinePolicy("test-1a"))
        with pytest.raises(ConfigurationError):
            router.route_burst(0)

    def test_latency_includes_client_rtt(self, routing_setup):
        from repro.cloudsim.network import GeoPoint
        far = GeoPoint(-33.9, 151.2)
        with_client = make_router(routing_setup,
                                  BaselinePolicy("test-1a"), client=far)
        near = make_router(routing_setup, BaselinePolicy("test-1a"))
        assert (with_client.route().latency_s
                > near.route().latency_s + 0.05)


class TestPassiveCharacterization(object):
    def test_observations_fed_back_to_store(self, routing_setup):
        cloud, mesh, store = routing_setup
        router = make_router(routing_setup, BaselinePolicy("test-1a"),
                             passive=True)
        router.route_burst(20)
        assert store.passive_samples("test-1a") == 20

    def test_disabled_by_default(self, routing_setup):
        cloud, mesh, store = routing_setup
        router = make_router(routing_setup, BaselinePolicy("test-1a"))
        router.route_burst(5)
        assert store.passive_samples("test-1a") == 0

    def test_passive_profile_converges_to_zone_mix(self, routing_setup):
        cloud, mesh, store = routing_setup
        store.clear_passive()
        fresh_store = CharacterizationStore()
        router = SmartRouter(cloud, mesh, fresh_store,
                             BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"),
                             ["test-1a"], passive=True)
        # Without any polls, passive observations alone build a profile.
        for _ in range(60):
            router.route(router.policy.decide(None))
        profile = fresh_store.get("test-1a")
        truth = cloud.zone("test-1a").cpu_slot_shares()
        assert profile.ape_to(truth) < 35.0
