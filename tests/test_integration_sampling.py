"""Integration: the sampling methodology end-to-end on the real catalog.

These tests replay the paper's experiment flows (EX-1 through EX-4) at
reduced scale against the full 41-region catalog.
"""

import pytest

from repro import (
    EX3_ZONES,
    ProgressiveAnalysis,
    SamplingCampaign,
    SkyMesh,
    build_sky,
)
from repro.common.units import Money
from repro.sampling import DailyCampaignSeries


@pytest.fixture
def sky():
    cloud = build_sky(seed=77, aws_only=True)
    account = cloud.create_account("primary", "aws")
    mesh = SkyMesh(cloud)
    return cloud, account, mesh


class TestEx1SaturationFlow(object):
    def test_saturation_observes_most_of_the_zone(self, sky):
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1a",
                                                   count=40)
        result = SamplingCampaign(cloud, endpoints).run()
        assert result.saturated
        zone = cloud.zone("us-west-1a")
        assert result.total_fis >= zone.capacity * 0.8

    def test_two_account_validation(self, sky):
        # EX-1: a second, fully independent account hits immediate
        # saturation right after the first exhausts the zone — the pool is
        # shared even though quotas and endpoints are not.
        cloud, account, mesh = sky
        endpoints_a = mesh.deploy_sampling_endpoints(account, "us-west-1a",
                                                     count=40)
        SamplingCampaign(cloud, endpoints_a).run()

        second_account = cloud.create_account("secondary", "aws")
        endpoints_b = mesh.deploy_sampling_endpoints(
            second_account, "us-west-1a", count=5, memory_base_mb=3072)
        first_poll = SamplingCampaign(cloud, endpoints_b,
                                      max_polls=1).run()
        assert first_poll.observations[0].failure_rate > 0.9

    def test_full_saturation_costs_about_20_cents(self, sky):
        # §4.3: "the cost to fully saturate an AZ is approximately $0.20."
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1a",
                                                   count=40)
        result = SamplingCampaign(cloud, endpoints).run()
        assert Money(0.08) < result.total_cost < Money(0.40)


class TestEx3ProgressiveFlow(object):
    def test_eleven_zone_progressive_sampling(self, sky):
        cloud, account, mesh = sky
        polls_needed = []
        for zone_id in EX3_ZONES:
            endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                       count=60)
            result = SamplingCampaign(cloud, endpoints).run()
            analysis = ProgressiveAnalysis(result)
            polls = analysis.polls_to_accuracy(95.0)
            if polls is not None:
                polls_needed.append(polls)
        # §4.3: ~6 polls on average reach 95 % accuracy.
        assert polls_needed
        mean_polls = sum(polls_needed) / len(polls_needed)
        assert 2.0 <= mean_polls <= 12.0

    def test_us_east_2a_zero_error(self, sky):
        # §4.3: us-east-2a consistently returns 0 % error (single CPU).
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "us-east-2a",
                                                   count=30)
        analysis = ProgressiveAnalysis(
            SamplingCampaign(cloud, endpoints).run())
        assert analysis.ape_after(1) == pytest.approx(0.0)
        assert analysis.polls_to_accuracy(99.9) == 1

    def test_characterization_cost_headline(self, sky):
        # §5: "our sampling technique was able to accurately characterize
        # the available infrastructure of an AZ for only $0.04."
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1b",
                                                   count=40)
        analysis = ProgressiveAnalysis(
            SamplingCampaign(cloud, endpoints).run())
        cost = analysis.cost_to_accuracy(95.0)
        assert cost is not None
        assert float(cost) < 0.15


class TestEx4TemporalFlow(object):
    def test_stable_zone_holds_for_a_week(self, sky):
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "sa-east-1a",
                                                   count=40)
        series = DailyCampaignSeries(cloud, endpoints, days=7)
        series.run()
        decay = [ape for _, ape in series.decay_curve()]
        assert max(decay) < 25.0

    def test_volatile_zone_drifts_quickly(self, sky):
        cloud, account, mesh = sky
        endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1b",
                                                   count=40)
        series = DailyCampaignSeries(cloud, endpoints, days=7)
        series.run()
        decay = [ape for _, ape in series.decay_curve()]
        assert max(decay) > 15.0
