"""Stateful property-based testing of availability-zone invariants.

A hypothesis rule-based machine drives a zone through arbitrary
interleavings of batch placements, single invocations, holds, time
advances, and rebalances, checking after every step that the accounting
invariants hold:

* occupied slots never exceed capacity;
* free + occupied always equals capacity;
* placement results conserve requests (served + failed == requested);
* observed CPU keys always belong to the zone's pools;
* advancing past the keep-alive with no traffic empties the zone.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.common.errors import SaturationError
from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
from repro.cloudsim.host import HostPool
from repro.simclock import SimClock


class ZoneMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.clock = SimClock()
        self.zone = AvailabilityZone(
            "prop-1a",
            [
                HostPool("xeon-2.5", hosts=6, slots_per_host=16),
                HostPool("xeon-3.0", hosts=3, slots_per_host=16),
                HostPool("amd-epyc", hosts=1, slots_per_host=16,
                         affinity=0.5),
            ],
            self.clock,
            keepalive=120.0,
            scaling=ScalingPolicy(max_surge_slots=0),
            rng=7,
        )
        self.base_capacity = self.zone.capacity
        self.live_fis = []

    # -- actions -----------------------------------------------------------------
    @rule(n=st.integers(min_value=1, max_value=120),
          duration=st.floats(min_value=0.05, max_value=5.0),
          window=st.floats(min_value=0.0, max_value=2.0),
          tag=st.integers(min_value=0, max_value=3))
    def place_batch(self, n, duration, window, tag):
        result = self.zone.place_batch("fn-{}".format(tag), n, duration,
                                       window)
        assert result.served + result.failed == n
        assert result.served >= 0 and result.failed >= 0
        assert sum(result.request_cpu_counts.values()) == result.served
        assert set(result.new_fi_counts) <= set(self.zone.pools)

    @rule(duration=st.floats(min_value=0.05, max_value=5.0),
          force_new=st.booleans(),
          tag=st.integers(min_value=0, max_value=3))
    def invoke_one(self, duration, force_new, tag):
        try:
            fi, reused = self.zone.invoke_one(
                "svc-{}".format(tag), lambda cpu: duration,
                force_new=force_new)
        except SaturationError:
            assert self.zone.free_slots() == 0
        else:
            assert fi.cpu_key in self.zone.pools
            self.live_fis.append(fi)

    @rule(hold=st.floats(min_value=0.01, max_value=1.0))
    def hold_an_fi(self, hold):
        live = [fi for fi in self.live_fis
                if not fi.is_expired(self.clock.now)]
        self.live_fis = live
        if live:
            self.zone.hold_instance(live[-1], hold)

    @rule(seconds=st.floats(min_value=0.1, max_value=90.0))
    def advance(self, seconds):
        self.clock.advance(seconds)

    @rule(fast_share=st.floats(min_value=0.1, max_value=0.9))
    def rebalance(self, fast_share):
        self.zone.rebalance({"xeon-2.5": 1.0 - fast_share,
                             "xeon-3.0": fast_share})

    @rule()
    def long_quiescence_empties_zone(self):
        self.clock.advance(300.0)  # past every busy window + keep-alive
        assert self.zone.occupied() == 0

    # -- invariants ----------------------------------------------------------------
    @invariant()
    def slots_conserved(self):
        if not hasattr(self, "zone"):
            return
        occupied = self.zone.occupied()
        free = self.zone.free_slots()
        assert occupied >= 0
        assert free >= 0
        assert occupied + free == self.zone.capacity

    @invariant()
    def pool_local_accounting(self):
        if not hasattr(self, "zone"):
            return
        for pool in self.zone.pools.values():
            assert pool.occupied(self.clock.now) <= pool.capacity


ZoneMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestZoneStateMachine = ZoneMachine.TestCase
