"""The serving plane: arrivals, admission, and the coalescing gateway.

The headline contracts: seeded arrival processes are reproducible
draw-for-draw; admission conserves every request (granted + shed == n);
and a full gateway run is byte-deterministic — two rigs built from the
same seed produce identical :meth:`GatewayReport.aggregate_key`.
"""

import asyncio

import pytest

from repro import Observability, SkyController, workload_by_name
from repro.common.errors import ConfigurationError
from repro.core.slo import default_slo_s
from repro.sampling import CharacterizationBuilder
from repro.serve import (
    AdmissionController,
    DiurnalArrivals,
    GatewayConfig,
    PoissonArrivals,
    ServeGateway,
    TokenBucket,
    build_arrivals,
)
from tests.helpers import make_cloud

ZONES = ("test-1a", "test-1b")


def make_gateway(seed=7, rate_rps=2000.0, config=None, arrivals=None,
                 workload="sha1_hash"):
    """A small two-zone serving rig with pre-seeded characterizations."""
    cloud = make_cloud(seed=seed)
    obs = Observability()
    account = cloud.create_account("serve", "aws")
    controller = SkyController(cloud, account, list(ZONES), obs=obs,
                               sampling_count=2)
    for zone_id in ZONES:
        builder = CharacterizationBuilder(zone_id)
        builder.add_poll({key: pool.capacity
                          for key, pool in cloud.zone(zone_id).pools.items()
                          if pool.capacity > 0})
        profile = builder.snapshot()
        controller.store.put(profile)
        controller.tracker.observe(profile)
    if arrivals is None:
        arrivals = PoissonArrivals(rate_rps, seed=seed)
    return ServeGateway(controller, workload_by_name(workload), arrivals,
                        config or GatewayConfig())


def assert_conservation(report):
    """Every offered request ends in exactly one outcome bucket."""
    assert report.offered == report.admitted + report.shed
    assert report.admitted == report.served + report.failed


# -- arrivals -----------------------------------------------------------------

class TestArrivals(object):
    def test_poisson_seeded_and_reproducible(self):
        a = PoissonArrivals(500.0, seed=3)
        b = PoissonArrivals(500.0, seed=3)
        draws = [(a.draw(t * 0.001, 0.001), b.draw(t * 0.001, 0.001))
                 for t in range(200)]
        assert all(x == y for x, y in draws)
        assert sum(x for x, _ in draws) > 0

    def test_different_seeds_differ(self):
        a = [PoissonArrivals(500.0, seed=1).draw(0.0, 1.0)
             for _ in range(1)]
        b = [PoissonArrivals(500.0, seed=2).draw(0.0, 1.0)
             for _ in range(1)]
        # One draw each at mean 500; a collision is astronomically
        # unlikely but possible — compare a short series instead.
        one = PoissonArrivals(500.0, seed=1)
        two = PoissonArrivals(500.0, seed=2)
        assert [one.draw(t, 0.01) for t in range(20)] != \
            [two.draw(t, 0.01) for t in range(20)]

    def test_zero_rate_draws_nothing(self):
        assert PoissonArrivals(0.0, seed=0).draw(0.0, 10.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1.0)

    def test_diurnal_rate_shape(self):
        diurnal = DiurnalArrivals(100.0, 500.0, period_s=86400.0, seed=0)
        assert diurnal.rate_at(0.0) == pytest.approx(100.0)
        assert diurnal.rate_at(43200.0) == pytest.approx(500.0)
        assert diurnal.rate_at(86400.0) == pytest.approx(100.0)
        mid = diurnal.rate_at(21600.0)
        assert 100.0 < mid < 500.0

    def test_diurnal_phase_shift(self):
        shifted = DiurnalArrivals(100.0, 500.0, period_s=86400.0,
                                  phase_s=43200.0, seed=0)
        assert shifted.rate_at(0.0) == pytest.approx(500.0)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(500.0, 100.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, 2.0, period_s=0.0)

    def test_build_arrivals_factory(self):
        assert isinstance(build_arrivals("poisson", 100.0),
                          PoissonArrivals)
        diurnal = build_arrivals("diurnal", 100.0, seed=1)
        assert isinstance(diurnal, DiurnalArrivals)
        assert diurnal.peak_rps == pytest.approx(400.0)
        with pytest.raises(ConfigurationError):
            build_arrivals("bursty", 100.0)


# -- admission ----------------------------------------------------------------

class TestAdmission(object):
    def test_disabled_bucket_grants_everything(self):
        bucket = TokenBucket(rate_rps=None)
        assert bucket.grant(10 ** 6, 0.001) == 10 ** 6

    def test_bucket_caps_sustained_rate(self):
        bucket = TokenBucket(rate_rps=100.0, burst=100.0)
        granted = sum(bucket.grant(50, 0.1) for _ in range(100))
        # 100 burst tokens + 100 rps over 10 simulated seconds.
        assert granted <= 100 + 100 * 10
        assert granted >= 100 * 10 * 0.9

    def test_burst_defaults_to_one_second(self):
        assert TokenBucket(rate_rps=250.0).burst == pytest.approx(250.0)

    def test_admit_conserves_requests(self):
        admission = AdmissionController(rate_limit_rps=100.0, burst=10.0,
                                        max_queue_depth=5)
        for queue_depth in (0, 3, 5, 50):
            granted, shed_tokens, shed_queue = admission.admit(
                40, queue_depth, 0.01)
            assert granted + shed_tokens + shed_queue == 40
            assert granted >= 0 and shed_tokens >= 0 and shed_queue >= 0

    def test_queue_full_sheds_without_token_refund(self):
        admission = AdmissionController(rate_limit_rps=100.0, burst=10.0,
                                        max_queue_depth=1)
        granted, shed_tokens, shed_queue = admission.admit(10, 1, 0.0)
        assert granted == 0
        assert shed_queue == 10 - shed_tokens
        # The queue-shed requests consumed their tokens: nothing left.
        assert admission.bucket.tokens < 1.0

    def test_nothing_to_admit(self):
        admission = AdmissionController()
        assert admission.admit(0, 0, 0.001) == (0, 0, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_rps=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue_depth=0)


# -- SLO helper ---------------------------------------------------------------

class TestDefaultSlo(object):
    def test_scales_with_workload(self):
        workload = workload_by_name("sha1_hash")
        assert default_slo_s(workload) == pytest.approx(
            3.0 * workload.base_seconds)

    def test_floor_for_fast_workloads(self):
        workload = workload_by_name("sha1_hash")
        assert default_slo_s(workload, multiplier=1e-9) == 0.25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_slo_s(workload_by_name("sha1_hash"), multiplier=0.0)


# -- the gateway --------------------------------------------------------------

class TestGateway(object):
    def test_smoke_serves_and_conserves(self):
        gateway = make_gateway(seed=7, rate_rps=2000.0)
        report = gateway.run_sync(2.0)
        assert report.served > 1000
        assert report.batches_coalesced > 0
        assert report.sim_seconds == pytest.approx(2.0, rel=0.01)
        assert report.goodput_rps > 500
        assert_conservation(report)

    def test_seeded_runs_are_byte_identical(self):
        first = make_gateway(seed=11, rate_rps=1500.0).run_sync(2.0)
        second = make_gateway(seed=11, rate_rps=1500.0).run_sync(2.0)
        assert first.aggregate_key() == second.aggregate_key()

    def test_different_seeds_diverge(self):
        first = make_gateway(seed=11, rate_rps=1500.0).run_sync(1.0)
        second = make_gateway(seed=12, rate_rps=1500.0).run_sync(1.0)
        assert first.aggregate_key() != second.aggregate_key()

    def test_low_rate_falls_back_to_scalar_path(self):
        config = GatewayConfig(batch_floor=16)
        gateway = make_gateway(seed=5, rate_rps=200.0, config=config)
        report = gateway.run_sync(2.0)
        assert report.batches_scalar > 0
        assert report.batches_coalesced == 0
        assert report.served > 0
        assert_conservation(report)

    def test_rate_limit_sheds_and_reports(self):
        config = GatewayConfig(rate_limit_rps=500.0, burst=50.0)
        gateway = make_gateway(seed=9, rate_rps=2000.0, config=config)
        report = gateway.run_sync(2.0)
        assert report.shed_tokens > 0
        assert 0.0 < report.shed_rate < 1.0
        # Admitted rate honors the limit (burst allowance on top).
        assert report.admitted <= 500.0 * 2.0 + 50.0 + 1
        assert_conservation(report)
        shed_events = gateway.obs.recorder.events("serve.shed")
        assert shed_events
        assert all(e.fields["reason"] == "rate_limit" for e in shed_events)

    def test_latency_quantiles_and_slo(self):
        gateway = make_gateway(seed=7, rate_rps=1000.0)
        report = gateway.run_sync(2.0)
        p50, p99 = report.quantile_ms(0.50), report.quantile_ms(0.99)
        assert 0.0 < p50 <= p99
        assert 0.0 <= report.slo_attainment <= 1.0
        payload = report.to_dict()
        for key in ("offered", "served", "goodput_rps", "shed_rate",
                    "slo_attainment", "p50_ms", "p95_ms", "p99_ms"):
            assert key in payload

    def test_serve_metrics_reach_the_registry(self):
        gateway = make_gateway(seed=7, rate_rps=1500.0)
        report = gateway.run_sync(2.0)
        registry = gateway.obs.registry
        batches = registry.counter("serve_batches_total", mode="coalesced")
        assert batches.value == report.batches_coalesced
        served = registry.counter("serve_requests_total", outcome="served")
        assert served.value == report.served
        assert registry.histogram("serve_latency_s").count == report.served
        assert registry.counter("serve_drains_total").value == 1
        assert registry.counter("serve_offered_total").value == \
            report.offered

    def test_drain_flushes_buffered_requests(self):
        # A huge batch size and a long deadline keep arrivals buffered;
        # the drain must dispatch them rather than drop them.
        config = GatewayConfig(batch_size=10 ** 6, flush_deadline_s=10.0)
        gateway = make_gateway(seed=7, rate_rps=2000.0, config=config)

        async def scenario():
            run = asyncio.ensure_future(gateway.run(60.0))
            while gateway.report.offered < 500:
                await asyncio.sleep(0)
            gateway.request_drain()
            return await run

        report = asyncio.run(scenario())
        assert report.drained > 0
        assert report.sim_seconds < 60.0
        assert_conservation(report)
        drains = gateway.obs.recorder.events("serve.drain")
        assert len(drains) == 1
        assert drains[0].fields["requested"] is True
        assert drains[0].fields["drained"] == report.drained

    def test_diurnal_arrivals_track_the_curve(self):
        arrivals = DiurnalArrivals(200.0, 4000.0, period_s=4.0, seed=3)
        gateway = make_gateway(seed=3, arrivals=arrivals)
        report = gateway.run_sync(4.0)
        assert report.served > 0
        assert_conservation(report)
        # Offered volume must reflect the mean rate, not the trough.
        mean_rate = (200.0 + 4000.0) / 2.0
        assert report.offered > 4.0 * 200.0 * 2
        assert report.offered < 4.0 * mean_rate * 2

    def test_run_validation(self):
        gateway = make_gateway()
        with pytest.raises(ConfigurationError):
            gateway.run_sync(0.0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(tick_s=0.0)
        with pytest.raises(ConfigurationError):
            ServeGateway(gateway.controller, gateway.workload,
                         arrivals="not-a-process")

    def test_wall_pace_changes_wall_time_not_results(self):
        flat = make_gateway(seed=21, rate_rps=800.0).run_sync(0.5)
        config = GatewayConfig(wall_pace=0.01)
        paced = make_gateway(seed=21, rate_rps=800.0,
                             config=config).run_sync(0.5)
        assert flat.aggregate_key() == paced.aggregate_key()
