"""The distributed sweep backend: protocol, coordinator, workers, chaos.

The acceptance bar mirrors the engine's headline contract: records that
crossed a socket — under any worker count, a mid-sweep worker kill, or a
seeded ``FaultyTransport`` chaos run — merge into results byte-identical
to the ``workers=1`` serial reference.
"""

import itertools
import pickle
import socket
import threading

import pytest

from repro.common.errors import (
    ConfigurationError,
    TransportError,
    TransportTimeout,
)
from repro.engine import (
    CampaignTask,
    CloudSpec,
    FaultyTransport,
    SweepCoordinator,
    SweepEngine,
    SweepWorker,
    Transport,
    spawn_local_workers,
)
from repro.engine import protocol
from repro.engine.executor import _chunk, _run_chunk
from repro.engine.protocol import connect, encode_frame, parse_address
from repro.obs import Observability


def _tiny_task(seed=0, zone="us-west-1a"):
    return CampaignTask(CloudSpec.for_zones([zone], seed=seed), zone,
                        endpoints=3, n_requests=150, max_polls=2)


def _task_grid(n):
    zones = ("us-west-1a", "us-west-1b")
    return [_tiny_task(seed=index, zone=zones[index % 2])
            for index in range(n)]


def _dumps(results):
    return [pickle.dumps(result) for result in results]


def _serial_reference(n):
    return _dumps(SweepEngine(workers=1).run(_task_grid(n)))


def _pair():
    left, right = socket.socketpair()
    return Transport(left), Transport(right)


# -- wire protocol -------------------------------------------------------------

class TestProtocol(object):
    def test_send_recv_round_trip(self):
        a, b = _pair()
        a.send(("task", 3, [(0, "payload")]))
        assert b.recv(timeout=1.0) == ("task", 3, [(0, "payload")])
        b.send(("heartbeat", "w1"))
        assert a.recv(timeout=1.0) == ("heartbeat", "w1")
        a.close()
        b.close()

    def test_recv_timeout_is_typed_and_survivable(self):
        a, b = _pair()
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.05)
        # A timeout is not a link failure: the next frame still arrives.
        a.send(("bye",))
        assert b.recv(timeout=1.0) == ("bye",)

    def test_peer_close_raises_transport_error(self):
        a, b = _pair()
        a.close()
        with pytest.raises(TransportError):
            b.recv(timeout=1.0)
        assert b.closed

    def test_send_on_closed_transport_refused(self):
        a, _ = _pair()
        a.close()
        with pytest.raises(TransportError):
            a.send(("bye",))

    def test_oversized_frame_refused_at_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(TransportError):
            encode_frame(b"x" * 64)

    def test_oversized_header_refused_at_recv(self):
        left, right = socket.socketpair()
        transport = Transport(right)
        left.sendall(protocol.HEADER.pack(protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError):
            transport.recv(timeout=1.0)

    def test_corrupt_frame_is_a_transport_error(self):
        left, right = socket.socketpair()
        transport = Transport(right)
        left.sendall(protocol.HEADER.pack(4) + b"\x80junk"[:4])
        with pytest.raises(TransportError):
            transport.recv(timeout=1.0)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7077") == ("127.0.0.1", 7077)
        for bad in ("localhost", ":1", "host:", "host:seven"):
            with pytest.raises(ConfigurationError):
                parse_address(bad)


class TestFaultyTransport(object):
    def test_seeded_drops_are_reproducible(self):
        import random
        rng = random.Random(99)
        decisions = [rng.random() < 0.5 for _ in range(8)]
        a, b = _pair()
        faulty = FaultyTransport(a, seed=99, drop=0.5)
        for index in range(8):
            faulty.send(("msg", index))
        kept = [i for i, dropped in enumerate(decisions) if not dropped]
        for index in kept:
            assert b.recv(timeout=1.0) == ("msg", index)
        with pytest.raises(TransportTimeout):
            b.recv(timeout=0.05)
        assert faulty.faults_injected == decisions.count(True)

    def test_disconnect_closes_and_raises(self):
        a, _ = _pair()
        faulty = FaultyTransport(a, seed=0, disconnect=1.0)
        with pytest.raises(TransportError):
            faulty.send(("hello", "w", 1))
        assert faulty.closed
        assert faulty.faults_injected == 1

    def test_probability_validation(self):
        a, _ = _pair()
        with pytest.raises(ConfigurationError):
            FaultyTransport(a, drop=1.5)
        with pytest.raises(ConfigurationError):
            FaultyTransport(a, disconnect=-0.1)


# -- coordinator mechanics -----------------------------------------------------

class TestCoordinator(object):
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SweepCoordinator(heartbeat_s=0.0)
        with pytest.raises(ConfigurationError):
            SweepCoordinator(max_requeues=-1)

    def test_no_workers_raises_after_join_timeout(self):
        coordinator = SweepCoordinator(join_timeout_s=0.3)
        with coordinator:
            with pytest.raises(TransportError):
                list(coordinator.run(_chunk([(0, _tiny_task())], 1)))

    def test_requeue_once_then_complete(self):
        events = []
        coordinator = SweepCoordinator(
            heartbeat_s=1.0, join_timeout_s=10.0, max_requeues=1,
            emit=lambda name, **fields: events.append((name, fields)))
        chunks = _chunk(list(enumerate([_tiny_task()])), 1)
        records = []
        with coordinator:
            driver = threading.Thread(
                target=lambda: records.extend(coordinator.run(chunks)),
                daemon=True)
            driver.start()
            # First worker takes the chunk, then vanishes mid-flight.
            flaky = connect(*coordinator.address)
            flaky.send(("hello", "flaky", 111))
            assert flaky.recv(timeout=5.0)[0] == "task"
            flaky.close()
            # Second worker picks up the requeued chunk and finishes it.
            solid = connect(*coordinator.address)
            solid.send(("hello", "solid", 222))
            message = solid.recv(timeout=5.0)
            assert message[0] == "task"
            solid.send(("result", message[1], _run_chunk(message[2])))
            driver.join(timeout=10.0)
            assert not driver.is_alive()
            assert solid.recv(timeout=5.0) == ("bye",)
            solid.close()
        assert [record[1] for record in records] == [True]
        names = [name for name, _ in events]
        assert names.count("sweep.worker_joined") == 2
        lost = [fields for name, fields in events
                if name == "sweep.worker_lost"]
        assert lost and lost[0]["worker"] == "flaky"
        requeued = [fields for name, fields in events
                    if name == "sweep.chunk_requeued"]
        assert requeued == [{"chunk": 0, "cells": 1, "worker": "flaky"}]
        stats = {s["worker"]: s for s in coordinator.worker_stats()}
        assert stats["flaky"]["losses"] == 1
        assert stats["solid"]["chunks_done"] == 1

    def test_requeue_budget_exhausted_becomes_chunk_failure(self):
        coordinator = SweepCoordinator(heartbeat_s=1.0, join_timeout_s=10.0,
                                       max_requeues=0)
        chunks = _chunk(list(enumerate([_tiny_task()])), 1)
        records = []
        with coordinator:
            driver = threading.Thread(
                target=lambda: records.extend(coordinator.run(chunks)),
                daemon=True)
            driver.start()
            flaky = connect(*coordinator.address)
            flaky.send(("hello", "flaky", 1))
            assert flaky.recv(timeout=5.0)[0] == "task"
            flaky.close()
            driver.join(timeout=10.0)
            assert not driver.is_alive()
        index, ok, payload, wall_ms, pid = records[0]
        assert (index, ok, wall_ms, pid) == (0, False, 0.0, -1)
        assert payload[0] == "TransportError"
        assert payload[2] is True  # infrastructure loss, not a task bug

    def test_chunk_deadline_requeues_a_hung_worker(self):
        events = []
        coordinator = SweepCoordinator(
            heartbeat_s=0.2, chunk_deadline_s=0.5, join_timeout_s=10.0,
            max_requeues=1,
            emit=lambda name, **fields: events.append(name))
        chunks = _chunk(list(enumerate([_tiny_task()])), 1)
        records = []
        with coordinator:
            driver = threading.Thread(
                target=lambda: records.extend(coordinator.run(chunks)),
                daemon=True)
            driver.start()
            # A worker that heartbeats forever but never produces results.
            hung = connect(*coordinator.address)
            hung.send(("hello", "hung", 1))
            assert hung.recv(timeout=5.0)[0] == "task"
            stop = threading.Event()

            def beat():
                while not stop.wait(0.1):
                    try:
                        hung.send(("heartbeat", "hung"))
                    except TransportError:
                        return

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
            solid = connect(*coordinator.address)
            solid.send(("hello", "solid", 2))
            message = solid.recv(timeout=10.0)
            assert message[0] == "task"
            solid.send(("result", message[1], _run_chunk(message[2])))
            driver.join(timeout=15.0)
            stop.set()
            assert not driver.is_alive()
            solid.close()
            hung.close()
        assert [record[1] for record in records] == [True]
        assert "sweep.chunk_requeued" in events


# -- distributed determinism ---------------------------------------------------

class TestDistributedDeterminism(object):
    def test_socket_workers_byte_identical_to_serial(self):
        reference = _serial_reference(6)
        tasks = _task_grid(6)
        coordinator = SweepCoordinator(heartbeat_s=0.5, join_timeout_s=15.0)
        with coordinator:
            host, port = coordinator.address
            threads = []
            for lane in range(3):
                worker = SweepWorker(host, port,
                                     worker_id="t{}".format(lane),
                                     heartbeat_s=0.1)
                thread = threading.Thread(target=worker.run, daemon=True)
                thread.start()
                threads.append(thread)
            results = [None] * len(tasks)
            chunks = _chunk(list(enumerate(tasks)), 1)
            for index, ok, payload, _, _ in coordinator.run(chunks):
                assert ok, payload
                results[index] = payload
            for thread in threads:
                thread.join(timeout=10.0)
        assert _dumps(results) == reference
        assert 1 <= coordinator.workers_seen <= 3

    def test_worker_kill_mid_sweep_byte_identical(self):
        reference = _serial_reference(6)
        tasks = _task_grid(6)
        coordinator = SweepCoordinator(heartbeat_s=0.3, join_timeout_s=30.0,
                                       max_requeues=2)
        with coordinator:
            processes = spawn_local_workers(
                coordinator.address, 2, extra_args=("--heartbeat", "0.1"))
            try:
                results = [None] * len(tasks)
                chunks = _chunk(list(enumerate(tasks)), 1)
                killed = False
                for index, ok, payload, _, _ in coordinator.run(chunks):
                    assert ok, payload
                    results[index] = payload
                    if not killed:
                        processes[0].kill()  # SIGKILL, mid-sweep
                        killed = True
                assert killed
            finally:
                for process in processes:
                    process.kill()
                for process in processes:
                    process.wait(timeout=10.0)
        assert _dumps(results) == reference

    def test_chaos_transport_byte_identical(self):
        reference = _serial_reference(4)
        tasks = _task_grid(4)
        coordinator = SweepCoordinator(heartbeat_s=0.2,
                                       chunk_deadline_s=2.5,
                                       join_timeout_s=15.0,
                                       max_requeues=50)
        faults = []

        def chaos_factory(base_seed, drop, disconnect):
            counter = itertools.count()

            def factory(host, port):
                transport = FaultyTransport(
                    connect(host, port),
                    seed=base_seed + 97 * next(counter),
                    drop=drop, disconnect=disconnect)
                faults.append(transport)
                return transport

            return factory

        stop = threading.Event()
        with coordinator:
            host, port = coordinator.address
            # Seed 1's first draw is 0.134 < 0.3: the chaotic worker's
            # very first hello is guaranteed to hit an injected
            # disconnect, so the chaos path is exercised every run.
            specs = [("chaotic", chaos_factory(1, 0.05, 0.3)),
                     ("steady", chaos_factory(2, 0.02, 0.02))]
            threads = []
            for worker_id, factory in specs:
                worker = SweepWorker(host, port, worker_id=worker_id,
                                     heartbeat_s=0.1, max_reconnects=200,
                                     transport_factory=factory)
                thread = threading.Thread(target=worker.run, args=(stop,),
                                          daemon=True)
                thread.start()
                threads.append(thread)
            results = [None] * len(tasks)
            chunks = _chunk(list(enumerate(tasks)), 1)
            for index, ok, payload, _, _ in coordinator.run(chunks):
                assert ok, payload
                results[index] = payload
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        assert _dumps(results) == reference
        assert sum(t.faults_injected for t in faults) > 0


# -- engine integration --------------------------------------------------------

class TestEngineRemoteBackend(object):
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(backend="carrier-pigeon")

    def test_remote_backend_byte_identical_with_spawned_workers(self):
        reference = _serial_reference(4)
        obs = Observability()
        engine = SweepEngine(workers=2, backend="remote", remote_workers=2,
                             chunk_size=1, heartbeat_s=0.5,
                             join_timeout_s=30.0, obs=obs)
        results = engine.run(_task_grid(4))
        assert engine.last_mode == "remote"
        assert _dumps(results) == reference
        start = obs.recorder.events("sweep.start")[0]
        assert start.fields["backend"] == "remote"
        assert start.fields["start_method"] == "remote"
        assert obs.recorder.count("sweep.worker_joined") >= 1
        assert obs.registry.counter(
            "sweep_workers_joined_total").value >= 1
        assert obs.registry.labels_of("sweep_remote_worker_utilization")
        done = obs.recorder.events("sweep.done")[0]
        assert done.fields["mode"] == "remote"

    def test_remote_degrades_to_pool_when_no_workers_join(self):
        reference = _serial_reference(2)
        obs = Observability()
        engine = SweepEngine(workers=2, backend="remote",
                             join_timeout_s=0.4, obs=obs)
        results = engine.run(_task_grid(2))
        assert engine.last_mode == "pool"
        assert _dumps(results) == reference
        assert obs.registry.counter("sweep_fallbacks_total").value == 1
        fallback = obs.recorder.events("sweep.fallback")[0]
        assert "no workers joined" in fallback.fields["reason"]


# -- telemetry shipping over the wire ------------------------------------------

class TestRemoteTelemetry(object):
    def test_remote_telemetry_byte_identical_and_merged(self):
        reference = _serial_reference(4)
        obs = Observability()
        engine = SweepEngine(workers=2, backend="remote", remote_workers=2,
                             chunk_size=1, heartbeat_s=0.5,
                             join_timeout_s=30.0, obs=obs, telemetry=True)
        results = engine.run(_task_grid(4))
        assert engine.last_mode == "remote"
        assert _dumps(results) == reference
        assert obs.recorder.count("sweep.telemetry") == 4
        # Shipped series land under the shipping worker's label.
        workers = {labels["worker"] for labels in
                   obs.registry.labels_of("sweep_worker_cells_total")}
        assert workers
        assert all(worker.startswith("worker-") for worker in workers)
        # One coherent trace: sweep -> per-chunk -> per-cell, all closed.
        trace = obs.tracer.last_trace()
        assert trace.root.name == "sweep"
        assert trace.complete
        names = [span.name for span in trace.spans]
        assert names.count("cell") == 4
        assert names.count("chunk") == 4
        # Worker events replayed onto the parent bus with attribution.
        polls = obs.recorder.events("sampling.poll")
        assert polls
        assert all("worker" in event.fields and "chunk" in event.fields
                   for event in polls)

    def test_worker_kill_telemetry_attributed_to_accepting_worker(self):
        reference = _serial_reference(6)
        tasks = _task_grid(6)
        merged = []
        coordinator = SweepCoordinator(
            heartbeat_s=0.3, join_timeout_s=30.0, max_requeues=2,
            telemetry=True,
            telemetry_sink=lambda worker, chunk, payloads:
                merged.append((worker, chunk, payloads)))
        with coordinator:
            processes = spawn_local_workers(
                coordinator.address, 2, extra_args=("--heartbeat", "0.1"))
            try:
                results = [None] * len(tasks)
                pids = [None] * len(tasks)
                chunks = _chunk(list(enumerate(tasks)), 1)
                killed = False
                for index, ok, payload, _, pid in coordinator.run(chunks):
                    assert ok, payload
                    results[index] = payload
                    pids[index] = pid
                    if not killed:
                        processes[0].kill()  # SIGKILL, mid-sweep
                        killed = True
                assert killed
            finally:
                for process in processes:
                    process.kill()
                for process in processes:
                    process.wait(timeout=10.0)
        assert _dumps(results) == reference
        # Every chunk's telemetry merged exactly once — requeue losers and
        # the killed worker's half-shipped chunks are discarded.
        assert sorted(chunk for _, chunk, _ in merged) == list(range(6))
        # With chunk_size=1, chunk ids equal cell indexes: telemetry for a
        # chunk must come from the worker whose records were accepted.
        for worker_id, chunk_id, payloads in merged:
            assert payloads
            assert worker_id == "worker-{}".format(pids[chunk_id])
            assert all(payload["worker"] == worker_id
                       for payload in payloads)
            assert all(payload["cell"] == chunk_id
                       for payload in payloads)

    def test_plain_peers_interoperate_without_telemetry(self):
        # A coordinator not asked for telemetry sends 3-tuple task frames;
        # a default worker must not ship TELEMETRY frames back.
        coordinator = SweepCoordinator(heartbeat_s=0.5, join_timeout_s=10.0)
        chunks = _chunk(list(enumerate([_tiny_task()])), 1)
        records = []
        with coordinator:
            driver = threading.Thread(
                target=lambda: records.extend(coordinator.run(chunks)),
                daemon=True)
            driver.start()
            worker = SweepWorker(*coordinator.address, worker_id="plain",
                                 heartbeat_s=0.1)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            driver.join(timeout=15.0)
            assert not driver.is_alive()
            thread.join(timeout=10.0)
        assert [record[1] for record in records] == [True]
        assert coordinator._telemetry == {}
