"""Exporters: JSONL round trips, Prometheus text, CSV rows."""

import json
import math
from decimal import Decimal

import pytest

from repro import reporting
from repro.obs.export import (
    events_to_jsonl,
    metrics_to_rows,
    parse_prometheus_text,
    prometheus_text,
    read_events_jsonl,
    traces_to_rows,
    write_events_jsonl,
)
from repro.obs.hooks import EventBus, EventRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", zone="a").inc(5)
    registry.counter("requests_total", zone="b").inc(2)
    registry.gauge("occupancy", zone="a").set(0.75)
    histogram = registry.histogram("latency_s", buckets=(0.1, 1.0),
                                   zone="a")
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry


class TestJsonl(object):
    def test_round_trip_through_file(self, tmp_path):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit("az.placement", 1.0, zone="a", served=10, failed=0)
        bus.emit("sampling.poll", 2.5, zone="a", cost_usd=0.01)
        path = str(tmp_path / "events.jsonl")
        write_events_jsonl(path, recorder.events())
        loaded = read_events_jsonl(path)
        assert loaded == [
            {"event": "az.placement", "timestamp": 1.0, "zone": "a",
             "served": 10, "failed": 0},
            {"event": "sampling.poll", "timestamp": 2.5, "zone": "a",
             "cost_usd": 0.01},
        ]

    def test_accepts_plain_dicts(self):
        text = events_to_jsonl([{"event": "x", "timestamp": 0.0}])
        assert text == '{"event": "x", "timestamp": 0.0}\n'

    def test_empty_stream(self):
        assert events_to_jsonl([]) == ""

    def test_non_native_field_values_degrade_to_strings(self):
        # Regression: a Money or Decimal leaking into an event field used
        # to raise TypeError and lose the whole export.
        from repro.common.units import Money
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit("billing.charge", 1.0, zone="a", amount=Money(0.125),
                 precise=Decimal("0.5"), tags={"x", "y"})
        text = events_to_jsonl(recorder.events())
        loaded = json.loads(text)
        assert loaded["amount"] == str(Money(0.125))
        assert loaded["precise"] == "0.5"
        assert loaded["zone"] == "a"  # native values stay native


class TestPrometheus(object):
    def test_snapshot_parses_back(self):
        registry = sample_registry()
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples[("requests_total", ("zone", "a"))] == 5.0
        assert samples[("requests_total", ("zone", "b"))] == 2.0
        assert samples[("occupancy", ("zone", "a"))] == 0.75
        assert samples[("latency_s_count", ("zone", "a"))] == 3.0
        assert samples[("latency_s_sum", ("zone", "a"))] == \
            pytest.approx(2.55)
        assert samples[("latency_s_bucket", ("le", "0.1"),
                        ("zone", "a"))] == 1.0
        assert samples[("latency_s_bucket", ("le", "1.0"),
                        ("zone", "a"))] == 2.0
        assert samples[("latency_s_bucket", ("le", "+Inf"),
                        ("zone", "a"))] == 3.0

    def test_type_lines_present(self):
        text = prometheus_text(sample_registry())
        assert "# TYPE requests_total counter" in text
        assert "# TYPE occupancy gauge" in text
        assert "# TYPE latency_s histogram" in text
        # One TYPE line per family, not per child.
        assert text.count("# TYPE requests_total") == 1

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_special_values_round_trip(self):
        # Prometheus spells them +Inf / -Inf / NaN; Python's repr does
        # not produce valid exposition tokens for any of the three.
        registry = MetricsRegistry()
        registry.gauge("watermark", kind="hi").set(float("inf"))
        registry.gauge("watermark", kind="lo").set(float("-inf"))
        registry.gauge("watermark", kind="flat").set(float("nan"))
        text = prometheus_text(registry)
        values = {line.rsplit(" ", 1)[0]: line.rsplit(" ", 1)[1]
                  for line in text.splitlines()
                  if not line.startswith("#")}
        assert values['watermark{kind="hi"}'] == "+Inf"
        assert values['watermark{kind="lo"}'] == "-Inf"
        assert values['watermark{kind="flat"}'] == "NaN"
        samples = parse_prometheus_text(text)
        assert samples[("watermark", ("kind", "hi"))] == float("inf")
        assert samples[("watermark", ("kind", "lo"))] == float("-inf")
        assert math.isnan(samples[("watermark", ("kind", "flat"))])


class TestCsvRows(object):
    def test_rows_pair_with_reporting_write_csv(self, tmp_path):
        rows = metrics_to_rows(sample_registry())
        path = str(tmp_path / "metrics.csv")
        reporting.write_csv(path, rows)
        lines = (tmp_path / "metrics.csv").read_text().strip().splitlines()
        assert len(lines) == 1 + len(rows)
        assert lines[0].startswith("metric,kind,labels")

    def test_histogram_rows_carry_quantiles(self):
        rows = metrics_to_rows(sample_registry())
        histogram_row = [r for r in rows if r["kind"] == "histogram"][0]
        assert histogram_row["count"] == 3
        assert histogram_row["p95"] > 0

    def test_trace_rows(self, tmp_path):
        tracer = Tracer()
        root = tracer.start_trace("request", 0.0, policy="p")
        tracer.start_span("dispatch", root, 0.0, zone="a").finish(1.0)
        root.finish(1.0)
        rows = traces_to_rows(tracer.traces())
        assert len(rows) == 2
        assert rows[0]["parent_id"] == 0
        assert rows[1]["name"] == "dispatch"
        reporting.write_csv(str(tmp_path / "spans.csv"), rows)
