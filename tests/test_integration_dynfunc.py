"""Integration: dynamic functions across the mesh, real code + simulation."""

from repro import SkyMesh, build_sky, workload_by_name
from repro.dynfunc import (
    DynamicFunctionRuntime,
    UniversalDynamicFunctionHandler,
)
from repro.workloads import all_workloads, resolve_runtime_model


class TestMeshWideDynamicFunctions(object):
    def test_global_mesh_deployment_scale(self):
        # §3.3: the sky mesh spans every region; on AWS the full ladder is
        # 9 memory settings x 2 architectures per zone (>1,600 total with
        # sampling endpoints).
        cloud = build_sky(seed=2)
        accounts = {name: cloud.create_account("acct-" + name, name)
                    for name in ("aws", "ibm", "do")}
        mesh = SkyMesh(cloud)
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        created = mesh.deploy_everywhere(accounts,
                                         lambda z, m, a: handler)
        aws_zones = len(cloud.zone_ids(provider="aws"))
        assert mesh.deployment_count("aws") == aws_zones * 9 * 2
        assert mesh.deployment_count("ibm") == 4 * 3
        assert mesh.deployment_count("do") > 0
        assert len(created) == len(mesh)

    def test_one_endpoint_runs_any_workload(self):
        # The point of dynamic functions: repurpose a single deployment
        # for every workload without redeployment.
        cloud = build_sky(seed=3, aws_only=True)
        account = cloud.create_account("acct", "aws")
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        deployment = cloud.deploy(account, "us-west-1b", "dynamic", 2048,
                                  handler=handler)
        durations = {}
        for workload in (workload_by_name("sha1_hash"),
                         workload_by_name("logistic_regression")):
            invocation = cloud.invoke(deployment,
                                      payload=workload.payload())
            durations[workload.name] = invocation.runtime_s
            cloud.clock.advance(400.0)
        assert durations["logistic_regression"] > durations["sha1_hash"]

    def test_payload_caching_on_warm_fi(self):
        cloud = build_sky(seed=3, aws_only=True)
        account = cloud.create_account("acct", "aws")
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        deployment = cloud.deploy(account, "us-east-2a", "dynamic", 2048,
                                  handler=handler)
        payload = workload_by_name("sha1_hash").payload()
        first = cloud.invoke(deployment, payload=payload)
        cloud.clock.advance(5.0)
        second = cloud.invoke(deployment, payload=payload)
        assert second.reused
        # Same CPU (us-east-2a is homogeneous), so the runtime gap is the
        # decode overhead skipped on the cache hit plus model noise.
        assert second.runtime_s <= first.runtime_s * 1.2


class TestRealCodeMatchesSimulatedSemantics(object):
    def test_every_workload_payload_executes_for_real(self):
        runtime = DynamicFunctionRuntime()
        for workload in all_workloads():
            result = runtime.handle(
                workload.payload(args={"seed": 1, "scale": 0.05}))
            assert result.value["workload"] == workload.name

    def test_cached_second_execution_is_flagged(self):
        runtime = DynamicFunctionRuntime()
        payload = workload_by_name("json_flattener").payload(
            args={"seed": 1, "scale": 0.1})
        assert not runtime.handle(payload).cached
        assert runtime.handle(payload).cached

    def test_dynamic_results_depend_on_seed_args(self):
        runtime = DynamicFunctionRuntime()
        workload = workload_by_name("graph_mst")
        first = runtime.handle(workload.payload(args={"seed": 1,
                                                      "scale": 0.1}))
        second = runtime.handle(workload.payload(args={"seed": 2,
                                                       "scale": 0.1}))
        assert first.value["summary"] != second.value["summary"]
