"""Routing telemetry."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import BaselinePolicy, CharacterizationStore, SmartRouter
from repro.core.telemetry import RoutingTelemetry
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import make_cloud


class FakeRequest(object):
    def __init__(self, zone_id="z-1", cpu_key="xeon-2.5", retries=0,
                 cost=0.001, latency_s=1.0):
        self.zone_id = zone_id
        self.cpu_key = cpu_key
        self.retries = retries
        self.cost = Money(cost)
        self.latency_s = latency_s


class TestRecording(object):
    def test_record_and_rows(self):
        telemetry = RoutingTelemetry()
        telemetry.record(FakeRequest(), workload="zipper",
                         policy="baseline", timestamp=5.0)
        rows = telemetry.rows()
        assert len(rows) == 1
        assert rows[0]["workload"] == "zipper"
        assert rows[0]["zone"] == "z-1"

    def test_capacity_bounds_memory(self):
        telemetry = RoutingTelemetry(capacity=10)
        for index in range(25):
            telemetry.record(FakeRequest(cost=index))
        assert len(telemetry) == 10
        # Oldest records were evicted.
        assert telemetry.rows()[0]["cost_usd"] == 15.0

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RoutingTelemetry(capacity=0)

    def test_clear(self):
        telemetry = RoutingTelemetry()
        telemetry.record(FakeRequest())
        telemetry.clear()
        assert len(telemetry) == 0

    def test_money_and_float_costs_record_uniformly(self):
        telemetry = RoutingTelemetry()
        money_request = FakeRequest(cost=0.004)
        float_request = FakeRequest()
        float_request.cost = 0.004  # raw float, not Money
        telemetry.record(money_request)
        telemetry.record(float_request)
        rows = telemetry.rows()
        assert rows[0]["cost_usd"] == rows[1]["cost_usd"] == 0.004
        assert telemetry.total_cost() == Money(0.008)


class TestAggregation(object):
    @pytest.fixture
    def telemetry(self):
        telemetry = RoutingTelemetry()
        telemetry.record(FakeRequest("a", "xeon-2.5", 0, 0.002, 1.0),
                         policy="baseline")
        telemetry.record(FakeRequest("a", "xeon-3.0", 2, 0.001, 2.0),
                         policy="retry")
        telemetry.record(FakeRequest("b", "xeon-3.0", 1, 0.003, 3.0),
                         policy="retry")
        return telemetry

    def test_totals(self, telemetry):
        assert telemetry.total_cost() == Money(0.006)
        assert telemetry.total_retries() == 3

    def test_by_zone(self, telemetry):
        zones = telemetry.by_zone()
        assert zones["a"]["requests"] == 2
        assert zones["a"]["retries"] == 2
        assert zones["a"]["mean_latency_s"] == pytest.approx(1.5)
        assert zones["b"]["cost_usd"] == pytest.approx(0.003)

    def test_latency_quantiles_in_groups(self, telemetry):
        import numpy as np
        zones = telemetry.by_zone()
        # Zone "a" saw latencies [1.0, 2.0].
        assert zones["a"]["p50_latency_s"] == pytest.approx(
            float(np.quantile([1.0, 2.0], 0.5)))
        assert zones["a"]["p95_latency_s"] == pytest.approx(
            float(np.quantile([1.0, 2.0], 0.95)))
        assert zones["a"]["p99_latency_s"] == pytest.approx(
            float(np.quantile([1.0, 2.0], 0.99)))
        # Single-sample group: all quantiles collapse to the value.
        assert zones["b"]["p50_latency_s"] == 3.0
        assert zones["b"]["p99_latency_s"] == 3.0

    def test_quantiles_present_in_every_grouping(self, telemetry):
        for grouping in (telemetry.by_zone(), telemetry.by_cpu(),
                         telemetry.by_policy()):
            for bucket in grouping.values():
                assert {"p50_latency_s", "p95_latency_s",
                        "p99_latency_s"} <= set(bucket)

    def test_empty_buffer_aggregations(self):
        telemetry = RoutingTelemetry()
        assert telemetry.by_zone() == {}
        assert telemetry.by_cpu() == {}
        assert telemetry.by_policy() == {}
        assert telemetry.total_cost() == Money(0)
        assert telemetry.total_retries() == 0
        assert telemetry.rows() == []

    def test_by_cpu(self, telemetry):
        cpus = telemetry.by_cpu()
        assert cpus["xeon-3.0"]["requests"] == 2

    def test_by_policy(self, telemetry):
        policies = telemetry.by_policy()
        assert policies["retry"]["requests"] == 2

    def test_cpu_distribution(self, telemetry):
        dist = telemetry.cpu_distribution()
        assert dist.share("xeon-3.0") == pytest.approx(2 / 3)

    def test_rows_export_via_reporting(self, telemetry, tmp_path):
        from repro import reporting
        path = tmp_path / "telemetry.csv"
        reporting.write_csv(str(path), telemetry.rows())
        assert len(path.read_text().strip().splitlines()) == 4


class TestWithRealRouter(object):
    def test_records_routed_requests(self):
        cloud = make_cloud(seed=141)
        account = cloud.create_account("tel", "aws")
        mesh = SkyMesh(cloud)
        mesh.register(cloud.deploy(
            account, "test-1a", "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(
                resolve_runtime_model)))
        store = CharacterizationStore()
        builder = CharacterizationBuilder("test-1a")
        builder.add_poll({"xeon-2.5": 10, "xeon-2.9": 6})
        store.put(builder.snapshot())
        router = SmartRouter(cloud, mesh, store,
                             BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"), ["test-1a"])
        telemetry = RoutingTelemetry()
        for _ in range(20):
            request = router.route()
            telemetry.record(request, workload="sha1_hash",
                             policy="baseline",
                             timestamp=cloud.clock.now)
        assert len(telemetry) == 20
        assert telemetry.total_cost() > Money(0)
        observed = telemetry.cpu_distribution()
        assert set(observed.categories) <= {"xeon-2.5", "xeon-2.9"}
