"""Availability zones: placement, saturation, scaling, drift hooks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, SaturationError
from repro.cloudsim.az import AvailabilityZone, ScalingPolicy, _apportion
from repro.cloudsim.host import HostPool
from tests.helpers import drain_zone, make_zone


class TestConstruction(object):
    def test_requires_pools(self, clock):
        with pytest.raises(ConfigurationError):
            AvailabilityZone("z", [], clock)

    def test_rejects_duplicate_cpu_pools(self, clock):
        pools = [HostPool("xeon-2.5", 1, 16), HostPool("xeon-2.5", 2, 16)]
        with pytest.raises(ConfigurationError):
            AvailabilityZone("z", pools, clock)

    def test_capacity_sums_pools(self, zone):
        assert zone.capacity == (12 + 4) * 64

    def test_ground_truth_shares(self, zone):
        truth = zone.cpu_slot_shares()
        assert truth.share("xeon-2.5") == pytest.approx(12 / 16)
        assert truth.share("xeon-3.0") == pytest.approx(4 / 16)


class TestPlaceBatch(object):
    def test_all_unique_when_sleep_covers_window(self, zone):
        result = zone.place_batch("fn", 100, duration=0.25, window=0.2)
        assert result.unique_fis == 100
        assert result.served == 100
        assert result.failed == 0

    def test_short_sleep_reuses_fis(self, zone):
        result = zone.place_batch("fn", 100, duration=0.1, window=1.0)
        assert result.unique_fis == 10
        assert result.served == 100  # served sequentially by reuse

    def test_zero_window_means_truly_parallel(self, zone):
        result = zone.place_batch("fn", 50, duration=0.01, window=0.0)
        assert result.unique_fis == 50

    def test_request_counts_match_served(self, zone):
        result = zone.place_batch("fn", 200, duration=0.3, window=0.2)
        assert sum(result.request_cpu_counts.values()) == result.served

    def test_cpu_counts_cover_only_known_pools(self, zone):
        result = zone.place_batch("fn", 200, duration=0.3, window=0.2)
        assert set(result.new_fi_counts) <= {"xeon-2.5", "xeon-3.0"}

    def test_warm_fis_of_same_deployment_reused_first(self, zone):
        zone.place_batch("fn", 100, duration=0.25, window=0.2)
        zone.clock.advance(5.0)
        second = zone.place_batch("fn", 100, duration=0.25, window=0.2)
        assert sum(second.reused_fi_counts.values()) == 100
        assert second.new_fis == 0

    def test_other_deployments_cannot_reuse(self, zone):
        zone.place_batch("fn-a", 100, duration=0.25, window=0.2)
        zone.clock.advance(5.0)
        second = zone.place_batch("fn-b", 100, duration=0.25, window=0.2)
        assert second.new_fis == 100

    def test_invalid_arguments(self, zone):
        with pytest.raises(ConfigurationError):
            zone.place_batch("fn", 0, duration=1.0, window=0.0)
        with pytest.raises(ConfigurationError):
            zone.place_batch("fn", 10, duration=0.0, window=0.0)

    def test_failure_rate_property(self, zone):
        result = zone.place_batch("fn", 100, duration=0.25, window=0.2)
        assert result.failure_rate == 0.0


class TestSaturation(object):
    def test_requests_fail_when_pool_is_full(self, zone):
        drain_zone(zone, duration=100.0)
        result = zone.place_batch("other", 100, duration=0.25, window=0.2)
        assert result.failed == 100

    def test_distinct_deployments_accumulate_until_saturation(self, zone):
        # Polls against distinct endpoints pile warm FIs onto the pool —
        # the core of the sampling method.
        total_served = 0
        deployments = 0
        while True:
            result = zone.place_batch("fn-{}".format(deployments), 200,
                                      duration=0.25, window=0.2)
            total_served += result.served
            deployments += 1
            zone.clock.advance(2.0)
            if result.failure_rate > 0.5:
                break
        assert total_served >= zone.capacity * 0.9
        assert deployments <= 10

    def test_saturation_is_shared_across_deployments(self, zone):
        # A "second account" (fresh deployment) fails immediately once the
        # zone is exhausted — the EX-1 validation.
        drain_zone(zone, duration=100.0)
        second_account = zone.place_batch("account-b-fn", 100,
                                          duration=0.25, window=0.2)
        assert second_account.failure_rate == 1.0

    def test_capacity_recovers_after_keepalive(self, zone):
        zone.place_batch("fn", 500, duration=1.0, window=0.0)
        zone.clock.advance(1.0 + zone.keepalive + 1.0)
        assert zone.free_slots() == zone.capacity


class TestScaling(object):
    def test_surge_capacity_added_under_pressure(self, clock):
        zone = make_zone(clock=clock, scaling=ScalingPolicy(
            pressure_threshold=0.5, slots_per_minute=64,
            max_surge_slots=256))
        base_capacity = zone.capacity
        drain_zone(zone, fraction=0.9, duration=600.0)
        clock.advance(120.0)
        zone.place_batch("fn", 10, duration=0.25, window=0.2)
        assert zone.capacity > base_capacity

    def test_no_scaling_without_pressure(self, clock):
        zone = make_zone(clock=clock)
        base_capacity = zone.capacity
        clock.advance(600.0)
        zone.place_batch("fn", 10, duration=0.25, window=0.2)
        assert zone.capacity == base_capacity

    def test_surge_is_bounded(self, clock):
        policy = ScalingPolicy(pressure_threshold=0.1, slots_per_minute=1000,
                               max_surge_slots=64)
        zone = make_zone(clock=clock, scaling=policy)
        base_capacity = zone.capacity
        drain_zone(zone, fraction=0.95, duration=3600.0)
        for _ in range(5):
            clock.advance(300.0)
            zone.place_batch("fn", 5, duration=0.25, window=0.2)
        assert zone.capacity <= base_capacity + 64 + 64  # slots + rounding


class TestInvokeOne(object):
    def test_cold_then_warm(self, zone):
        fi, reused = zone.invoke_one("fn", lambda cpu: 0.5)
        assert not reused
        zone.clock.advance(1.0)
        fi2, reused2 = zone.invoke_one("fn", lambda cpu: 0.5)
        assert reused2
        assert fi2.instance_id == fi.instance_id

    def test_force_new_skips_warm(self, zone):
        fi, _ = zone.invoke_one("fn", lambda cpu: 0.5)
        zone.clock.advance(1.0)
        fi2, reused = zone.invoke_one("fn", lambda cpu: 0.5, force_new=True)
        assert not reused
        assert fi2.instance_id != fi.instance_id

    def test_busy_fi_not_reused(self, zone):
        zone.invoke_one("fn", lambda cpu: 10.0)
        fi2, reused = zone.invoke_one("fn", lambda cpu: 10.0)
        assert not reused

    def test_duration_fn_receives_cpu(self, zone):
        seen = []

        def duration_fn(cpu_key):
            seen.append(cpu_key)
            return 0.5

        zone.invoke_one("fn", duration_fn)
        assert seen and seen[0] in ("xeon-2.5", "xeon-3.0")

    def test_saturated_zone_raises(self, zone):
        drain_zone(zone, duration=100.0)
        with pytest.raises(SaturationError):
            zone.invoke_one("fn", lambda cpu: 0.5)

    def test_hold_blocks_reuse(self, zone):
        fi, _ = zone.invoke_one("fn", lambda cpu: 0.5)
        zone.clock.advance(1.0)
        zone.hold_instance(fi, 0.150)
        fi2, reused = zone.invoke_one("fn", lambda cpu: 0.5)
        assert not reused


class TestRebalance(object):
    def test_rebalance_to_new_shares(self, zone):
        zone.rebalance({"xeon-2.5": 0.25, "xeon-3.0": 0.75})
        truth = zone.cpu_slot_shares()
        assert truth.share("xeon-3.0") == pytest.approx(0.75, abs=0.05)

    def test_rebalance_introduces_new_cpu(self, zone):
        zone.rebalance({"xeon-2.5": 0.5, "amd-epyc": 0.5})
        assert "amd-epyc" in zone.cpu_slot_shares().categories

    def test_rebalance_removes_missing_cpu_when_idle(self, zone):
        zone.rebalance({"xeon-2.5": 1.0})
        assert zone.cpu_slot_shares().categories == ("xeon-2.5",)

    def test_rebalance_cannot_evict_live_fis(self, zone):
        zone.place_batch("fn", 200, duration=600.0, window=0.0)
        before = zone.occupied()
        zone.rebalance({"xeon-2.5": 1.0})
        assert zone.occupied() >= before


class TestApportion(object):
    def test_sums_to_total(self):
        result = _apportion(10, {"a": 1, "b": 1, "c": 1})
        assert sum(result.values()) == 10

    def test_proportionality(self):
        result = _apportion(100, {"a": 3, "b": 1})
        assert result == {"a": 75, "b": 25}

    def test_zero_total(self):
        assert _apportion(0, {"a": 1}) == {}

    def test_empty_weights(self):
        assert _apportion(5, {}) == {}

    @given(st.integers(min_value=1, max_value=10 ** 5),
           st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                           st.integers(min_value=1, max_value=1000),
                           min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_apportion_conserves_total(self, total, weights):
        result = _apportion(total, weights)
        assert sum(result.values()) == total
        assert set(result) <= set(weights)
