"""Provider configurations."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.provider import (
    AWS_LAMBDA,
    CORE_PROVIDERS,
    DIGITAL_OCEAN,
    IBM_CODE_ENGINE,
    PROVIDERS,
    ProviderConfig,
    provider_by_name,
    register_provider,
)


class TestRegistry(object):
    def test_core_providers_registered(self):
        # Scenario packs may add more, but the paper's three are always
        # present and first-class.
        assert set(CORE_PROVIDERS) == {"aws", "ibm", "do"}
        assert set(CORE_PROVIDERS) <= set(PROVIDERS)

    def test_lookup(self):
        assert provider_by_name("aws") is AWS_LAMBDA

    def test_unknown_provider(self):
        with pytest.raises(ConfigurationError):
            provider_by_name("nimbus")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            register_provider(AWS_LAMBDA)

    def test_register_and_resolve(self):
        config = ProviderConfig(
            name="test-faas",
            memory_options_mb=(256, 512),
            archs=("x86_64",),
            concurrency_quota=10,
            billing=AWS_LAMBDA.billing,
        )
        try:
            register_provider(config)
            assert provider_by_name("test-faas") is config
        finally:
            PROVIDERS.pop("test-faas", None)


class TestAwsLambda(object):
    def test_paper_memory_ladder(self):
        # §3.3: 128 MB through 10 GB.
        for memory in (128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240):
            assert memory in AWS_LAMBDA.memory_options_mb

    def test_dual_architecture(self):
        assert set(AWS_LAMBDA.archs) == {"x86_64", "arm64"}

    def test_concurrency_quota_is_1000(self):
        # §3.1: "AWS Lambda had a limit of 1,000 concurrent function
        # requests on the accounts used in this study."
        assert AWS_LAMBDA.concurrency_quota == 1000

    def test_keepalive_is_five_minutes(self):
        # §4.1: FIs persist ~5 minutes.
        assert AWS_LAMBDA.keepalive == 300.0

    def test_memory_validation_allows_intermediate_values(self):
        assert AWS_LAMBDA.validate_memory(10140) == 10140

    def test_memory_validation_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            AWS_LAMBDA.validate_memory(64)
        with pytest.raises(ConfigurationError):
            AWS_LAMBDA.validate_memory(20480)

    def test_memory_validation_rejects_non_integral(self):
        # 512.7 MB is a caller bug: it must raise, not truncate to 512.
        with pytest.raises(ConfigurationError):
            AWS_LAMBDA.validate_memory(512.7)

    def test_memory_validation_accepts_integral_float(self):
        assert AWS_LAMBDA.validate_memory(512.0) == 512

    def test_arch_validation(self):
        assert AWS_LAMBDA.validate_arch("arm64") == "arm64"
        with pytest.raises(ConfigurationError):
            AWS_LAMBDA.validate_arch("riscv")


class TestIbmAndDo(object):
    def test_ibm_three_memory_settings(self):
        # §3.3: IBM Code Engine offers only 1, 2, and 4 GB.
        assert IBM_CODE_ENGINE.memory_options_mb == (1024, 2048, 4096)

    def test_ibm_x86_only(self):
        assert IBM_CODE_ENGINE.archs == ("x86_64",)

    def test_do_smaller_quota(self):
        assert DIGITAL_OCEAN.concurrency_quota < AWS_LAMBDA.concurrency_quota


class TestArrivalWindow(object):
    def test_reference_memory_gives_base_window(self):
        assert AWS_LAMBDA.arrival_window(2048) == pytest.approx(0.25)

    def test_lower_memory_widens_window(self):
        # Figure 3: lower memory needs longer sleeps for full coverage.
        assert AWS_LAMBDA.arrival_window(128) > AWS_LAMBDA.arrival_window(
            2048)

    def test_higher_memory_narrows_window(self):
        assert AWS_LAMBDA.arrival_window(10240) < AWS_LAMBDA.arrival_window(
            2048)

    def test_window_clamped(self):
        assert 0.05 <= AWS_LAMBDA.arrival_window(10240)
        assert AWS_LAMBDA.arrival_window(128) <= 3.0
