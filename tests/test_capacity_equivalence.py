"""Event-driven capacity accounting vs. the seed's sweep-everything spec.

The expiry-heap rewrite of :class:`~repro.cloudsim.host.HostPool` promises
that every *seeded placement outcome* is bit-identical to the naive
implementation it replaced.  This module keeps that promise executable:

* :class:`NaiveHostPool` re-implements the original algorithm — full bucket
  sweep on every capacity read, no cached counter, no warm index — behind
  the same interface, including the zone hot path's internal contract
  (``_heap`` / ``_occupied`` / ``_warm`` reads);
* the campaign tests drive two identically-seeded clouds, one stock and one
  with every pool swapped for the naive spec, through a 50-poll saturation
  campaign and a 400-invocation routing campaign (warm reuse, ``force_new``
  storms, holds) and require byte-identical transcripts;
* a hypothesis state machine interleaves allocations, warm claims, splits,
  resizes, and *external* bucket mutations (the background process shrinks
  counts and force-expires buckets out from under the pool) and checks the
  O(1) cached occupancy never drifts from the ground-truth sweep.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import build_sky
from repro.cloudsim.background import BackgroundLoad
from repro.cloudsim.handlers import SleepHandler
from repro.cloudsim.host import HostPool
from repro.cloudsim.instance import FIBucket
from repro.common.errors import ConfigurationError, SaturationError
from repro.common.units import MINUTES

_NEG_INF = float("-inf")


class _AlwaysWarm(object):
    """Stands in for the warm index: every deployment *might* have warm FIs.

    The seed consulted ``claim_warm`` unconditionally; returning a truthy
    value for every key makes the zone's warm-index fast-path guard a no-op
    so the naive pool sees the same call sequence the seed did.
    """

    def get(self, key, default=None):
        return True


class NaiveHostPool(HostPool):
    """The seed's sweep-everything accounting, kept as an executable spec.

    Every capacity read re-derives occupancy from the full bucket list, the
    way the pre-heap implementation did.  The sentinel ``_heap`` entry makes
    the zone's ``heap[0][0] <= now`` expiry guards always fire, so
    ``_occupied`` is freshly recomputed before each direct read — the
    unconditional sweep the seed performed.
    """

    def __init__(self, cpu_key, hosts, slots_per_host, affinity=1.0):
        super(NaiveHostPool, self).__init__(cpu_key, hosts, slots_per_host,
                                            affinity)
        self._heap = [(_NEG_INF, 0, None)]
        self._warm = _AlwaysWarm()

    # -- the original algorithms -------------------------------------------
    def expire(self, now):
        live = []
        occupied = 0
        released = 0
        on_release = self.on_release
        for b in self._buckets:
            if b.is_expired(now):
                b._released = True
                released += b.count
                if on_release is not None:
                    on_release(b, now)
            else:
                live.append(b)
                occupied += b.count
        self._buckets = live
        self._occupied = occupied
        if released and self.bus.enabled:
            self.bus.emit("host.expire", now, zone=self.zone_id,
                          cpu=self.cpu_key, released=released)

    def allocate(self, deployment, count, now, duration, keepalive):
        if count <= 0:
            raise ConfigurationError("allocation count must be positive")
        if count > self.free_slots(now):
            raise ConfigurationError(
                "pool {} over-allocated: {} requested, {} free".format(
                    self.cpu_key, count, self.free_slots(now)))
        bucket = FIBucket(deployment, self.cpu_key, count,
                          busy_until=now + duration,
                          expire_at=now + duration + keepalive)
        self._admit(bucket)
        if self.bus.enabled:
            self.bus.emit("host.allocate", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=count)
        return bucket

    def claim_warm(self, deployment, count, now, duration, keepalive):
        remaining = int(count)
        if remaining <= 0:
            return 0
        claimed = 0
        new_buckets = []
        for bucket in self._buckets:
            if (remaining > 0 and bucket.deployment == deployment
                    and bucket.is_idle(now)):
                take = min(bucket.count, remaining)
                if take == bucket.count:
                    bucket.touch(now, duration, keepalive)
                else:
                    bucket.count -= take
                    reused = FIBucket(deployment, self.cpu_key, take,
                                      busy_until=now + duration,
                                      expire_at=now + duration + keepalive)
                    new_buckets.append(reused)
                remaining -= take
                claimed += take
        self._buckets.extend(new_buckets)
        if claimed and self.bus.enabled:
            self.bus.emit("host.reuse", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=claimed)
        return claimed

    def idle_warm(self, deployment, now):
        return sum(b.count for b in self._buckets
                   if b.deployment == deployment and b.is_idle(now))

    def _admit(self, bucket):
        # Plain records, like the seed: no accounting hooks, no heap entry.
        # ``_occupied`` is advanced so direct reads between sweeps stay
        # honest; every sweep recomputes it from scratch anyway.
        bucket._pool = None
        self._buckets.append(bucket)
        self._occupied += bucket.count


def naivify(cloud):
    """Swap every pool in ``cloud`` for its :class:`NaiveHostPool` twin."""
    for region in cloud.regions.values():
        for zone in region.zones.values():
            for key, pool in list(zone.pools.items()):
                twin = NaiveHostPool(pool.cpu_key, pool.hosts,
                                     pool.slots_per_host, pool.affinity)
                twin.on_release = zone._bucket_released
                twin.bus = pool.bus
                twin.zone_id = pool.zone_id
                zone.pools[key] = twin
            zone._pool_order = None
    return cloud


# ---------------------------------------------------------------------------
# Seeded campaign equivalence
# ---------------------------------------------------------------------------

def _saturation_and_routing_transcript(cloud):
    """Drive the digest campaign: 50 saturating polls, then a routed
    invocation storm with warm reuse, force_new retries, and holds."""
    account = cloud.create_account("equiv", "aws")
    endpoints = [
        cloud.deploy(account, "eu-central-1a", "ep-{}".format(i), 2048,
                     handler=SleepHandler(15.0))
        for i in range(50)
    ]
    lines = []
    for i, endpoint in enumerate(endpoints):
        result, bill = cloud.poll(endpoint, 1000)
        lines.append("poll {} {} {} {} {!r} {!r} {!r} {:.6f} {}".format(
            i, result.served, result.failed, result.unique_fis,
            sorted(result.new_fi_counts.items()),
            sorted(result.reused_fi_counts.items()),
            sorted(result.request_cpu_counts.items()),
            result.timestamp, bill.total))
        cloud.clock.advance(2.5)

    service = cloud.deploy(account, "eu-central-1a", "svc", 2048,
                           handler=SleepHandler(0.4))
    for i in range(400):
        try:
            inv = cloud.invoke(service, force_new=(i % 7 == 3))
        except SaturationError:
            lines.append("invoke {} SATURATED".format(i))
            cloud.clock.advance(30.0)
            continue
        lines.append("invoke {} {} {} {} {:.9f} {:.9f} {}".format(
            i, inv.cpu_key, inv.instance_id, inv.reused, inv.runtime_s,
            inv.latency_s, inv.bill.total))
        if i % 11 == 5:
            cloud.hold(service, inv, 3.0)
        cloud.clock.advance(1.7 if i % 5 else 80.0)
    return lines


def _drift_and_background_transcript(cloud):
    """Multi-hour polls across two zones with drift rebalances and
    background-tenant churn (external count/expiry mutation)."""
    account = cloud.create_account("equiv2", "aws")
    zone_ids = ["us-west-1a", "eu-central-1a"]
    for zone_id in zone_ids:
        cloud.zone(zone_id).attach_background(BackgroundLoad(zone_id,
                                                             seed=13))
    endpoints = {
        zone_id: [cloud.deploy(account, zone_id,
                               "ep-{}-{}".format(zone_id, i), 2048,
                               handler=SleepHandler(10.0))
                  for i in range(12)]
        for zone_id in zone_ids
    }
    lines = []
    for round_i in range(40):
        for zone_id in zone_ids:
            endpoint = endpoints[zone_id][round_i % 12]
            result, bill = cloud.poll(endpoint, 800)
            lines.append("{} {} {} {} {} {!r} {!r} {:.6f} {}".format(
                zone_id, round_i, result.served, result.failed,
                result.unique_fis, sorted(result.new_fi_counts.items()),
                sorted(result.request_cpu_counts.items()),
                result.timestamp, bill.total))
        cloud.clock.advance(7 * MINUTES if round_i % 3 else 31 * MINUTES)
    for zone_id in zone_ids:
        zone = cloud.zone(zone_id)
        lines.append("final {} occ={} free={} cap={}".format(
            zone_id, zone.occupied(), zone.free_slots(), zone.capacity))
    return lines


@pytest.mark.parametrize("seed,campaign", [
    (191, _saturation_and_routing_transcript),
    (77, _drift_and_background_transcript),
], ids=["saturation-routing", "drift-background"])
def test_seeded_campaign_matches_naive_spec(seed, campaign):
    stock = campaign(build_sky(seed=seed, aws_only=True))
    naive = campaign(naivify(build_sky(seed=seed, aws_only=True)))
    assert stock == naive


def test_fi_index_stays_bounded_under_force_new_storm():
    """Regression: force_new retry storms never rebuild the warm lookup
    list, so the per-deployment FI index used to grow without bound.  The
    expiry-heap release callback now prunes it."""
    cloud = build_sky(seed=23, aws_only=True)
    account = cloud.create_account("storm", "aws")
    service = cloud.deploy(account, "eu-central-1a", "storm-svc", 512,
                           handler=SleepHandler(0.2))
    zone = cloud.zone("eu-central-1a")
    created = 0
    peak = 0
    for i in range(300):
        try:
            cloud.invoke(service, force_new=True)
            created += 1
        except SaturationError:
            pass
        # Advance past the keep-alive every few requests so earlier FIs
        # expire while the storm continues.
        cloud.clock.advance(2.0 if i % 10 else 400.0)
        if zone._fi_index:
            peak = max(peak, max(len(v) for v in zone._fi_index.values()))
    assert created >= 250
    # Compaction keeps the index proportional to the live population (tens),
    # not the request history (hundreds).
    assert peak < created / 2


# ---------------------------------------------------------------------------
# Property: cached occupancy == ground-truth sweep, under any interleaving
# ---------------------------------------------------------------------------

DEPLOYMENTS = ("fn-a", "fn-b", "fn-c")


class PoolPairMachine(RuleBasedStateMachine):
    """Drive a stock pool and its naive twin through the same operations.

    After every step both pools must agree on occupancy, free slots, and
    per-deployment warm capacity — and the stock pool's O(1) cached counter
    must equal a from-scratch sweep of its own live buckets.
    """

    @initialize()
    def setup(self):
        self.now = 0.0
        self.stock = HostPool("cpu-x", hosts=4, slots_per_host=16)
        self.naive = NaiveHostPool("cpu-x", hosts=4, slots_per_host=16)
        self.pairs = []  # (stock_bucket, naive_bucket) from allocate()

    # -- operations --------------------------------------------------------
    @rule(dep=st.sampled_from(DEPLOYMENTS),
          want=st.integers(min_value=1, max_value=24),
          duration=st.floats(min_value=0.1, max_value=10.0),
          keepalive=st.floats(min_value=1.0, max_value=120.0))
    def allocate(self, dep, want, duration, keepalive):
        free = self.stock.free_slots(self.now)
        assert free == self.naive.free_slots(self.now)
        count = min(want, free)
        if count <= 0:
            return
        a = self.stock.allocate(dep, count, self.now, duration, keepalive)
        b = self.naive.allocate(dep, count, self.now, duration, keepalive)
        self.pairs.append((a, b))

    @rule(dep=st.sampled_from(DEPLOYMENTS),
          want=st.integers(min_value=1, max_value=32),
          duration=st.floats(min_value=0.1, max_value=10.0),
          keepalive=st.floats(min_value=1.0, max_value=120.0))
    def claim_warm(self, dep, want, duration, keepalive):
        got_stock = self.stock.claim_warm(dep, want, self.now, duration,
                                          keepalive)
        got_naive = self.naive.claim_warm(dep, want, self.now, duration,
                                          keepalive)
        assert got_stock == got_naive

    @rule(dt=st.floats(min_value=0.0, max_value=200.0))
    def advance(self, dt):
        self.now += dt

    @rule(hosts=st.integers(min_value=0, max_value=8))
    def set_hosts(self, hosts):
        applied_stock = self.stock.set_hosts(hosts, self.now)
        applied_naive = self.naive.set_hosts(hosts, self.now)
        assert applied_stock == applied_naive

    @precondition(lambda self: self.pairs)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6),
          shrink=st.integers(min_value=1, max_value=8))
    def shrink_count(self, pick, shrink):
        # The background process re-targets held buckets by mutating
        # ``count`` directly; the stock pool must absorb the delta through
        # the property hook.
        a, b = self.pairs[pick % len(self.pairs)]
        take = min(shrink, a.count - 1)
        if a._released or take <= 0:
            return
        a.count -= take
        b.count -= take

    @precondition(lambda self: self.pairs)
    @rule(pick=st.integers(min_value=0, max_value=10 ** 6),
          offset=st.floats(min_value=-50.0, max_value=200.0))
    def move_expiry(self, pick, offset):
        # Force-expire (offset <= 0: the background release path) or extend
        # (the keep-alive refresh path) a bucket out from under the pool;
        # the stock pool must lazily or eagerly re-key its heap entry.
        a, b = self.pairs[pick % len(self.pairs)]
        a.expire_at = self.now + offset
        b.expire_at = self.now + offset

    # -- invariants --------------------------------------------------------
    @invariant()
    def occupancy_agrees(self):
        if not hasattr(self, "stock"):
            return
        assert self.stock.occupied(self.now) == self.naive.occupied(self.now)
        assert (self.stock.free_slots(self.now)
                == self.naive.free_slots(self.now))

    @invariant()
    def cached_counter_is_exact(self):
        if not hasattr(self, "stock"):
            return
        self.stock.expire(self.now)
        ground_truth = sum(bucket.count for bucket in self.stock._buckets
                           if not bucket._released)
        assert self.stock._occupied == ground_truth

    @invariant()
    def warm_index_agrees(self):
        if not hasattr(self, "stock"):
            return
        for dep in DEPLOYMENTS:
            assert (self.stock.idle_warm(dep, self.now)
                    == self.naive.idle_warm(dep, self.now))


PoolPairMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
TestPoolPairMachine = PoolPairMachine.TestCase
