"""Memory-dependent performance and the memory advisor."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.cloudsim.handlers import (
    ModeledWorkloadHandler,
    ScaledWorkloadHandler,
)
from repro.core import CharacterizationStore
from repro.core.memory_advisor import MemoryAdvisor
from repro.sampling import CharacterizationBuilder
from repro.workloads import workload_by_name
from repro.workloads.memory import (
    memory_speed_factor,
    saturation_memory_mb,
)
from repro.workloads.registry import memory_aware_resolver
from tests.helpers import make_cloud


class TestMemorySpeedFactor(object):
    def test_reference_is_one(self):
        assert memory_speed_factor(2048, vcpus=1) == pytest.approx(1.0)

    def test_less_memory_is_slower(self):
        assert memory_speed_factor(512, vcpus=1) > 1.0
        assert memory_speed_factor(512, vcpus=1) > memory_speed_factor(
            1024, vcpus=1)

    def test_beyond_saturation_no_further_speedup(self):
        at_sat = memory_speed_factor(saturation_memory_mb(1), vcpus=1)
        beyond = memory_speed_factor(10240, vcpus=1)
        assert beyond == pytest.approx(at_sat)

    def test_two_vcpu_workload_gains_past_2gb(self):
        # A 2-vCPU workload is still CPU-starved at the 2 GB reference:
        # 4 GB genuinely helps.
        assert memory_speed_factor(4096, vcpus=2) < 1.0

    def test_memory_pressure_blowup(self):
        starved = memory_speed_factor(128, vcpus=1)
        comfortable = memory_speed_factor(512, vcpus=1)
        assert starved > comfortable * 2

    def test_monotone_down_the_ladder(self):
        ladder = (128, 256, 512, 1024, 2048, 4096)
        factors = [memory_speed_factor(m, vcpus=1) for m in ladder]
        assert factors == sorted(factors, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            memory_speed_factor(0, vcpus=1)
        with pytest.raises(ConfigurationError):
            memory_speed_factor(1024, vcpus=0)
        with pytest.raises(ConfigurationError):
            memory_speed_factor(1024, vcpus=1, parallel_fraction=1.0)


class TestScaledWorkloadHandler(object):
    def test_scales_durations(self):
        inner = ModeledWorkloadHandler("wl", 10.0, {"c": 1.0},
                                       noise_sigma=0.0)
        scaled = ScaledWorkloadHandler(inner, 2.0)
        assert scaled.mean_duration_on("c") == pytest.approx(20.0)
        assert scaled.duration_on("c", None) == pytest.approx(20.0)
        assert scaled.name == "wl"

    def test_scale_validated(self):
        inner = ModeledWorkloadHandler("wl", 10.0, {"c": 1.0})
        with pytest.raises(ConfigurationError):
            ScaledWorkloadHandler(inner, 0.0)


class TestMemoryAwareResolver(object):
    def test_low_memory_rung_runs_slower(self):
        workload = workload_by_name("sha1_hash")
        payload = workload.payload()
        low = memory_aware_resolver(256)(payload)
        reference = memory_aware_resolver(2048)(payload)
        assert (low.mean_duration_on("xeon-2.5")
                > reference.mean_duration_on("xeon-2.5"))

    def test_reference_rung_unwrapped(self):
        workload = workload_by_name("sha1_hash")
        model = memory_aware_resolver(2048)(workload.payload())
        assert not isinstance(model, ScaledWorkloadHandler)


class TestMemoryAdvisor(object):
    @pytest.fixture
    def advisor(self):
        cloud = make_cloud(seed=151)
        store = CharacterizationStore()
        builder = CharacterizationBuilder("test-1a")
        builder.add_poll({"xeon-2.5": 60, "xeon-2.9": 40}, cost=Money(0),
                         timestamp=0.0)
        store.put(builder.snapshot())
        return MemoryAdvisor(cloud, store)

    def test_recommendation_spans_the_ladder(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a")
        assert rec.ladder() == [128, 256, 512, 1024, 2048, 4096, 6144,
                                8192, 10240]

    def test_fastest_is_at_or_beyond_saturation(self, advisor):
        workload = workload_by_name("sha1_hash")  # 1 vCPU, sat ~1.8 GB
        rec = advisor.recommend(workload, "test-1a")
        assert rec.fastest >= 2048

    def test_cheapest_is_a_small_rung(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a")
        assert rec.cheapest <= 512

    def test_two_vcpu_workload_wants_more_memory(self, advisor):
        rec = advisor.recommend(workload_by_name("zipper"), "test-1a")
        assert rec.fastest >= 4096

    def test_balanced_between_extremes(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a")
        assert rec.cheapest <= rec.balanced <= rec.fastest

    def test_pick_objective(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a")
        assert rec.pick("cheapest") == rec.cheapest
        with pytest.raises(ConfigurationError):
            rec.pick("fanciest")

    def test_rows_export(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a",
                                ladder=(512, 2048))
        rows = rec.to_rows()
        assert len(rows) == 2
        assert rows[0]["memory_mb"] == 512

    def test_runtime_predictions_decrease_with_memory(self, advisor):
        rec = advisor.recommend(workload_by_name("sha1_hash"), "test-1a")
        runtimes = [rec.runtime_at(m) for m in rec.ladder()]
        assert runtimes == sorted(runtimes, reverse=True)
