"""Cross-provider cost ranking and failover routing."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    SaturationError,
)
from repro.common.units import Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    RegionalPolicy,
    SmartRouter,
    ZoneRanker,
)
from repro.core.policies import CheapestCostPolicy
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import drain_zone, make_cloud


def put_profile(store, zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    store.put(builder.snapshot())


@pytest.fixture
def multi_provider_sky():
    """An AWS region plus an IBM region in one cloud."""
    from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
    from repro.cloudsim.host import HostPool
    from repro.cloudsim.network import GeoPoint
    from repro.cloudsim.provider import provider_by_name
    from repro.cloudsim.region import Region

    cloud = make_cloud(seed=121)  # AWS region test-1 with zones a/b
    ibm = provider_by_name("ibm")
    region = Region("us-south", ibm, GeoPoint(32.8, -96.8))
    region.add_zone(AvailabilityZone(
        "us-south",
        [HostPool("cascadelake-2.5", 10, ibm.slots_per_host)],
        cloud.clock, keepalive=ibm.keepalive,
        scaling=ScalingPolicy(max_surge_slots=64), rng=121))
    cloud.add_region(region)
    return cloud


class TestExpectedCost(object):
    def test_folds_in_provider_rates(self, multi_provider_sky):
        cloud = multi_provider_sky
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        put_profile(store, "us-south", {"cascadelake-2.5": 10})
        ranker = ZoneRanker(store, cloud=cloud)
        factors = workload_by_name("sha1_hash").cpu_factors()
        aws_cost = ranker.expected_cost("test-1a", factors, 2.5, 2048)
        ibm_cost = ranker.expected_cost("us-south", factors, 2.5, 2048)
        # IBM's effective GB-s rate is ~25 % higher than AWS x86.
        assert ibm_cost > aws_cost

    def test_requires_cloud(self):
        store = CharacterizationStore()
        put_profile(store, "z", {"xeon-2.5": 1})
        with pytest.raises(ConfigurationError):
            ZoneRanker(store).expected_cost("z", {"xeon-2.5": 1.0}, 1.0,
                                            1024)

    def test_rank_by_cost_skips_unprofiled(self, multi_provider_sky):
        cloud = multi_provider_sky
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        ranker = ZoneRanker(store, cloud=cloud)
        factors = workload_by_name("sha1_hash").cpu_factors()
        ranked = ranker.rank_by_cost(["test-1a", "us-south"], factors,
                                     2.5, 2048)
        assert ranked == ["test-1a"]


class TestCheapestCostPolicy(object):
    def test_prefers_cheaper_provider(self, multi_provider_sky):
        cloud = multi_provider_sky
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        put_profile(store, "us-south", {"cascadelake-2.5": 10})
        mesh = SkyMesh(cloud)
        aws_account = cloud.create_account("aws-acct", "aws")
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        mesh.register(cloud.deploy(aws_account, "test-1a", "dynamic",
                                   2048, handler=handler))
        router = SmartRouter(cloud, mesh, store, CheapestCostPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "us-south"])
        assert router.decide().zone_id == "test-1a"

    def test_runtime_edge_can_beat_rate_edge(self, multi_provider_sky):
        # When the pricier provider's zone is far faster, cost ranking can
        # still prefer it — the whole point of comparing dollars.
        cloud = multi_provider_sky
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.9": 10})  # slow AWS mix
        put_profile(store, "us-south", {"cascadelake-2.5": 10})
        ranker = ZoneRanker(store, cloud=cloud)
        factors = dict(workload_by_name("sha1_hash").cpu_factors())
        factors["xeon-2.9"] = 2.0  # pathological slowdown
        ranked = ranker.rank_by_cost(["test-1a", "us-south"], factors,
                                     2.5, 2048)
        assert ranked[0] == "us-south"

    def test_no_candidates_raises(self, multi_provider_sky):
        cloud = multi_provider_sky
        mesh = SkyMesh(cloud)
        router = SmartRouter(cloud, mesh, CharacterizationStore(),
                             CheapestCostPolicy(),
                             workload_by_name("sha1_hash"), ["test-1a"])
        with pytest.raises(ConfigurationError):
            router.decide()


class TestFailover(object):
    @pytest.fixture
    def failover_rig(self):
        cloud = make_cloud(seed=131)
        account = cloud.create_account("rig", "aws")
        mesh = SkyMesh(cloud)
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        for zone in ("test-1a", "test-1b"):
            mesh.register(cloud.deploy(account, zone, "dynamic", 2048,
                                       handler=handler))
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        put_profile(store, "test-1b", {"xeon-3.0": 10})
        return cloud, mesh, store

    def test_fails_over_to_second_zone(self, failover_rig):
        cloud, mesh, store = failover_rig
        drain_zone(cloud.zone("test-1b"), duration=600.0)  # best zone dead
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        request = router.route_with_failover()
        assert request.zone_id == "test-1a"

    def test_no_failover_needed_uses_best_zone(self, failover_rig):
        cloud, mesh, store = failover_rig
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        assert router.route_with_failover().zone_id == "test-1b"

    def test_all_zones_saturated_raises(self, failover_rig):
        cloud, mesh, store = failover_rig
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        drain_zone(cloud.zone("test-1b"), duration=600.0)
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        with pytest.raises(SaturationError):
            router.route_with_failover()

    def test_candidates_restored_after_failover(self, failover_rig):
        cloud, mesh, store = failover_rig
        drain_zone(cloud.zone("test-1b"), duration=600.0)
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        router.route_with_failover()
        assert router.candidate_zones == ["test-1a", "test-1b"]

    def test_fixed_zone_policy_cannot_fail_over(self, failover_rig):
        # A baseline policy re-decides the same dead zone; after dropping
        # it the policy still insists, so the error surfaces.
        cloud, mesh, store = failover_rig
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        router = SmartRouter(cloud, mesh, store,
                             BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        with pytest.raises(SaturationError):
            router.route_with_failover()
