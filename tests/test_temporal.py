"""Daily and hourly sampling series (EX-4 machinery)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sampling import DailyCampaignSeries, HourlySeries
from repro.skymesh import SkyMesh
from tests.helpers import make_cloud


@pytest.fixture
def setup():
    cloud = make_cloud(seed=21)
    account = cloud.create_account("sampler", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                               count=20)
    return cloud, endpoints


class TestDailySeries(object):
    def test_one_result_per_day(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=3,
                                     n_requests=150)
        results = series.run()
        assert len(results) == 3
        for result in results:
            assert result.zone_id == "test-1a"

    def test_cadence_advances_clock(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=2,
                                     cadence_hours=22.0, n_requests=150)
        series.run()
        assert cloud.clock.now >= 22 * 3600

    def test_capacity_recovers_between_days(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=2,
                                     n_requests=150)
        results = series.run()
        # Day 2 should observe a comparable number of FIs, not leftovers.
        assert results[1].total_fis > results[0].total_fis * 0.5

    def test_polls_for_accuracy_per_day(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=2,
                                     n_requests=150)
        series.run()
        polls = series.polls_for_accuracy(90.0)
        assert len(polls) == 2
        assert all(p is None or p >= 1 for p in polls)

    def test_mean_polls_for_accuracy(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=2,
                                     n_requests=150)
        series.run()
        mean = series.mean_polls_for_accuracy(85.0)
        assert mean is None or mean >= 1

    def test_decay_curve_without_drift_is_flat(self, setup):
        # The helper cloud has no drift processes: day-N profiles should
        # match day 1 almost exactly.
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=3,
                                     n_requests=150)
        series.run()
        for day, ape in series.decay_curve():
            assert ape < 8.0, day
        assert series.is_stable(ape_threshold=8.0)

    def test_requires_run_before_decay(self, setup):
        cloud, endpoints = setup
        series = DailyCampaignSeries(cloud, endpoints, days=2)
        with pytest.raises(ConfigurationError):
            series.decay_curve()

    def test_day_count_validated(self, setup):
        cloud, endpoints = setup
        with pytest.raises(ConfigurationError):
            DailyCampaignSeries(cloud, endpoints, days=0)


class TestHourlySeries(object):
    def test_one_characterization_per_hour(self, setup):
        cloud, endpoints = setup
        series = HourlySeries(cloud, endpoints, hours=4, polls_per_hour=2,
                              n_requests=100)
        profiles = series.run()
        assert len(profiles) == 4

    def test_variation_curve(self, setup):
        cloud, endpoints = setup
        series = HourlySeries(cloud, endpoints, hours=4, polls_per_hour=2,
                              n_requests=100)
        series.run()
        curve = series.variation_curve()
        assert [hour for hour, _ in curve] == [1, 2, 3]

    def test_hours_within_threshold(self, setup):
        cloud, endpoints = setup
        series = HourlySeries(cloud, endpoints, hours=4, polls_per_hour=2,
                              n_requests=100)
        series.run()
        assert 0 <= series.hours_within(10.0) <= 3

    def test_needs_at_least_two_hours(self, setup):
        cloud, endpoints = setup
        with pytest.raises(ConfigurationError):
            HourlySeries(cloud, endpoints, hours=1)

    def test_requires_run_before_curve(self, setup):
        cloud, endpoints = setup
        series = HourlySeries(cloud, endpoints, hours=3)
        with pytest.raises(ConfigurationError):
            series.variation_curve()
