"""Cross-process telemetry shipping: capture, payloads, merge, engine.

The shipping layer's contract has two halves.  Capture: worker-side
buffers are bounded, drain to plain picklable payloads, and activate
ambiently so task code needs no API changes.  Merge: replaying payloads
on the coordinator regenerates the same events/metrics/spans a local run
would have produced — under ``worker``/``chunk`` labels, with no double
counting, and without perturbing sweep results by a single byte.
"""

import pickle

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import CampaignTask, CloudSpec, SweepEngine
from repro.engine.tasks import run_task
from repro.obs import Observability
from repro.obs.ship import (
    PAYLOAD_VERSION,
    WALL_MS_BUCKETS,
    TelemetryCapture,
    TelemetryMerge,
    current_capture,
)


def _tiny_task(seed=0, zone="us-west-1a"):
    return CampaignTask(CloudSpec.for_zones([zone], seed=seed), zone,
                        endpoints=3, n_requests=150, max_polls=2)


def _task_grid(n):
    zones = ("us-west-1a", "us-west-1b")
    return [_tiny_task(seed=index, zone=zones[index % 2])
            for index in range(n)]


def _dumps(results):
    return [pickle.dumps(result) for result in results]


# -- worker-side capture -------------------------------------------------------

class TestTelemetryCapture(object):
    def test_buffers_events_and_resets_on_drain(self):
        capture = TelemetryCapture(worker_id="w0")
        capture.bus.emit("demo.one", 0.5, a=1)
        capture.bus.emit("demo.two", 0.7, b="x")
        payload = capture.drain(cell=3)
        assert payload["v"] == PAYLOAD_VERSION
        assert payload["worker"] == "w0"
        assert payload["cell"] == 3
        assert payload["events"] == [("demo.one", 0.5, {"a": 1}),
                                     ("demo.two", 0.7, {"b": "x"})]
        # Drain is snapshot-and-reset: the capture is empty and reusable.
        assert capture.drain()["events"] == []

    def test_overflow_counts_drops_instead_of_growing(self):
        capture = TelemetryCapture(worker_id="w0", max_events=2)
        for index in range(5):
            capture.bus.emit("demo", float(index))
        payload = capture.drain()
        assert len(payload["events"]) == 2
        assert payload["dropped_events"] == 3
        # The bound applies per drain window, not once per capture.
        capture.bus.emit("demo", 9.0)
        follow_up = capture.drain()
        assert len(follow_up["events"]) == 1
        assert follow_up["dropped_events"] == 0

    def test_max_events_validated(self):
        with pytest.raises(ConfigurationError):
            TelemetryCapture(max_events=0)

    def test_cell_metrics_and_span(self):
        capture = TelemetryCapture(worker_id="w0")
        capture.begin_cell(0, _tiny_task())
        capture.end_cell(True, 10.0)
        capture.begin_cell(1)
        capture.end_cell(False, 20.0)
        payload = capture.drain()
        by_name = {name: state for name, _, _, state
                   in payload["metrics"]}
        assert by_name["sweep_worker_cells_total"] == 2
        assert by_name["sweep_worker_cell_failures_total"] == 1
        histogram = by_name["sweep_worker_cell_wall_ms"]
        assert histogram["count"] == 2
        assert histogram["sum"] == 30.0
        assert tuple(histogram["buckets"]) == WALL_MS_BUCKETS
        # Both cell spans shipped complete, tagged with the verdict.
        assert len(payload["traces"]) == 2
        roots = [spans[0] for spans in payload["traces"]]
        assert [root["name"] for root in roots] == ["cell", "cell"]
        assert roots[0]["tags"]["task"] == "CampaignTask"
        assert roots[0]["tags"]["ok"] is True
        assert roots[1]["tags"]["ok"] is False
        assert all(root["end"] is not None for root in roots)

    def test_payload_pickles_cleanly(self):
        capture = TelemetryCapture(worker_id="w0")
        capture.bus.emit("demo", 0.1, zone="z")
        capture.begin_cell(0)
        capture.end_cell(True, 12.5)
        payload = capture.drain(cell=0)
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_ambient_activation_hooks_cloudspec_build(self):
        capture = TelemetryCapture(worker_id="w0")
        assert current_capture() is None
        with capture:
            assert current_capture() is capture
            run_task(_tiny_task())
        assert current_capture() is None
        payload = capture.drain()
        names = {name for name, _, _ in payload["events"]}
        # The task built its own private cloud, yet its events landed in
        # the ambient capture with zero parameter threading.
        assert "host.allocate" in names
        assert "sampling.poll" in names

    def test_no_bridge_on_the_capture_registry(self):
        # Bridged metrics must NOT ship: the coordinator regenerates them
        # from the replayed events, so shipping them too would double
        # count.  The capture registry only ever holds directly-written
        # series.
        capture = TelemetryCapture(worker_id="w0")
        capture.bus.emit("az.placement", 0.1, zone="z1", requested=4,
                         served=4, failed=0, occupancy=0.5)
        payload = capture.drain()
        shipped = {name for name, _, _, _ in payload["metrics"]}
        assert "placements_total" not in shipped


# -- coordinator-side merge ----------------------------------------------------

class TestTelemetryMerge(object):
    def test_unrecognized_payload_rejected(self):
        merge = TelemetryMerge(Observability())
        with pytest.raises(ConfigurationError):
            merge.merge({"v": 99})
        with pytest.raises(ConfigurationError):
            merge.merge("not a payload")

    def test_events_replay_with_worker_and_chunk_fields(self):
        obs = Observability()
        merge = TelemetryMerge(obs)
        capture = TelemetryCapture(worker_id="w7")
        capture.bus.emit("demo.metric", 0.2, value=1)
        merge.merge(capture.drain(), chunk=4)
        event = obs.recorder.events("demo.metric")[0]
        assert event.fields["worker"] == "w7"
        assert event.fields["chunk"] == 4
        assert event.fields["value"] == 1
        assert obs.recorder.count("sweep.telemetry") == 1
        assert merge.events_merged == 1

    def test_metric_deltas_fold_under_worker_label(self):
        obs = Observability()
        merge = TelemetryMerge(obs)
        capture = TelemetryCapture(worker_id="w7")
        for index in range(2):
            capture.begin_cell(index)
            capture.end_cell(True, 10.0 * (index + 1))
            merge.merge(capture.drain(cell=index))
        counter = obs.registry.counter("sweep_worker_cells_total",
                                       worker="w7")
        assert counter.value == 2
        histogram = obs.registry.histogram(
            "sweep_worker_cell_wall_ms", buckets=WALL_MS_BUCKETS,
            worker="w7")
        assert histogram.count == 2
        assert histogram.sum == 30.0

    def test_bridged_metrics_regenerate_exactly_once(self):
        obs = Observability()
        merge = TelemetryMerge(obs)
        capture = TelemetryCapture(worker_id="w7")
        capture.bus.emit("az.placement", 0.1, zone="z1", requested=4,
                         served=4, failed=0, occupancy=0.5)
        merge.merge(capture.drain())
        # One worker event → exactly one bridged increment at home.
        assert obs.registry.counter("placements_total",
                                    zone="z1").value == 1

    def test_spans_graft_under_chunk_and_root(self):
        obs = Observability()
        root = obs.tracer.start_trace("sweep", 0.0, cells=2)
        merge = TelemetryMerge(obs, clock=lambda: 1.5, root_span=root)
        capture = TelemetryCapture(worker_id="w7")
        capture.begin_cell(0)
        capture.end_cell(True, 10.0)
        capture.begin_cell(1)
        capture.end_cell(True, 20.0)
        merge.merge(capture.drain(), chunk=0)
        merge.finish()
        trace = obs.tracer.last_trace()
        assert trace.root.name == "sweep"
        assert not trace.root.is_open
        chunks = trace.children(trace.root.span_id)
        assert [span.name for span in chunks] == ["chunk"]
        assert chunks[0].tags == {"worker": "w7", "chunk": 0}
        cells = trace.children(chunks[0].span_id)
        assert [span.name for span in cells] == ["cell", "cell"]
        assert trace.complete
        # Rebasing preserves durations and keeps children inside the
        # chunk span's window.
        for cell in cells:
            assert cell.start >= chunks[0].start
            assert cell.end <= chunks[0].end

    def test_dropped_events_surface_as_event_and_counter(self):
        obs = Observability()
        merge = TelemetryMerge(obs)
        capture = TelemetryCapture(worker_id="w7", max_events=1)
        capture.bus.emit("demo", 0.1)
        capture.bus.emit("demo", 0.2)
        capture.bus.emit("demo", 0.3)
        merge.merge(capture.drain())
        assert merge.events_dropped == 2
        dropped = obs.recorder.events("sweep.telemetry_dropped")[0]
        assert dropped.fields["dropped"] == 2
        assert obs.registry.counter("sweep_telemetry_dropped_total",
                                    worker="w7").value == 2

    def test_finish_closes_root_without_payloads(self):
        obs = Observability()
        root = obs.tracer.start_trace("sweep", 0.0, cells=0)
        TelemetryMerge(obs, clock=lambda: 2.0, root_span=root).finish()
        assert not root.is_open
        assert root.end == 2.0


# -- engine integration: telemetry never perturbs results ---------------------

class TestEngineTelemetry(object):
    def test_serial_telemetry_byte_identical(self):
        reference = _dumps(SweepEngine(workers=1).run(_task_grid(4)))
        obs = Observability()
        engine = SweepEngine(workers=1, obs=obs, telemetry=True)
        results = engine.run(_task_grid(4))
        assert _dumps(results) == reference
        assert obs.recorder.count("sweep.telemetry") == 4
        assert obs.registry.counter("sweep_worker_cells_total",
                                    worker="serial").value == 4
        trace = obs.tracer.last_trace()
        assert trace.root.name == "sweep"
        assert trace.complete
        names = sorted(span.name for span in trace.spans)
        assert names.count("cell") == 4
        assert names.count("chunk") == 4

    def test_pool_telemetry_byte_identical_per_element(self):
        reference = _dumps(SweepEngine(workers=1).run(_task_grid(4)))
        obs = Observability()
        engine = SweepEngine(workers=2, chunk_size=1, obs=obs,
                             telemetry=True)
        results = engine.run(_task_grid(4))
        assert engine.last_mode in ("pool", "serial")
        assert _dumps(results) == reference
        assert obs.recorder.count("sweep.telemetry") == 4
        # Worker-labeled series exist for the pool's child processes.
        workers = {labels["worker"] for labels in
                   obs.registry.labels_of("sweep_worker_cells_total")}
        assert workers
        assert all(worker.startswith("pid-") for worker in workers)

    def test_telemetry_without_obs_is_inert(self):
        reference = _dumps(SweepEngine(workers=1).run(_task_grid(2)))
        engine = SweepEngine(workers=1, telemetry=True)
        assert _dumps(engine.run(_task_grid(2))) == reference
