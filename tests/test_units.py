"""Units and money."""

import pytest

from repro.common.units import (
    DAYS,
    GB,
    HOURS,
    MINUTES,
    Money,
    gb_seconds,
    mb_to_gb,
)


class TestConversions(object):
    def test_mb_to_gb(self):
        assert mb_to_gb(1024) == 1.0
        assert mb_to_gb(2048) == 2.0
        assert mb_to_gb(512) == 0.5

    def test_gb_seconds(self):
        assert gb_seconds(1024, 1.0) == 1.0
        assert gb_seconds(2048, 0.5) == 1.0
        assert gb_seconds(10240, 2.0) == 20.0

    def test_time_constants(self):
        assert MINUTES == 60
        assert HOURS == 60 * MINUTES
        assert DAYS == 24 * HOURS

    def test_gb_constant_is_mb(self):
        assert GB == 1024


class TestMoney(object):
    def test_addition(self):
        assert Money(0.1) + Money(0.2) == Money(0.3)

    def test_radd_supports_sum(self):
        total = sum([Money(0.01), Money(0.02)], Money(0))
        assert total == Money(0.03)

    def test_subtraction(self):
        assert Money(1.0) - Money(0.25) == Money(0.75)

    def test_multiplication(self):
        assert Money(0.5) * 4 == Money(2.0)
        assert 4 * Money(0.5) == Money(2.0)

    def test_division_by_scalar(self):
        assert Money(1.0) / 4 == Money(0.25)

    def test_division_by_money_gives_ratio(self):
        assert Money(1.0) / Money(0.5) == pytest.approx(2.0)

    def test_negation(self):
        assert -Money(0.5) == Money(-0.5)

    def test_comparisons(self):
        assert Money(0.001) < Money(0.002)
        assert Money(0.002) > Money(0.001)
        assert Money(0.001) <= Money(0.001)
        assert Money(0.001) >= Money(0.001)

    def test_equality_at_micro_dollar_resolution(self):
        assert Money(0.1 + 0.2) == Money(0.3)

    def test_compares_against_floats(self):
        assert Money(0.5) == 0.5
        assert Money(0.5) < 0.6

    def test_float_conversion(self):
        assert float(Money(1.25)) == 1.25

    def test_str_large_amounts(self):
        assert str(Money(1234.5)) == "$1,234.50"

    def test_str_small_amounts_keeps_precision(self):
        assert str(Money(0.000123)) == "$0.000123"

    def test_hashable(self):
        assert hash(Money(0.5)) == hash(Money(0.5))
