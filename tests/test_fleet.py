"""Crash-safe resumable sweeps over an authenticated, elastic fleet.

Covers the chunk journal + resume path (in-process simulated crashes and
a real SIGKILLed subprocess), the HMAC transport handshake (including
the reject-before-pickle guarantee), graceful worker drain, result
spooling across coordinator loss, the hang-not-crash requeue path, the
coordinator close() lifecycle, and the seeded FleetChaos schedule.
"""

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.common.errors import (
    AuthenticationError,
    ConfigurationError,
    SweepError,
    TransportError,
)
from repro.engine import (
    CampaignTask,
    ChunkJournal,
    CloudSpec,
    SweepCoordinator,
    SweepEngine,
    SweepWorker,
    Transport,
    guard_hash_for_tasks,
)
from repro.engine.journal import CHUNKS_FILE
from repro.engine.protocol import (
    PROTOCOL_VERSION,
    client_auth,
    server_auth,
)
from repro.faults import CoordinatorCrash, FleetChaos, FleetEvent


def _tiny_task(seed=0, zone="us-west-1a"):
    return CampaignTask(CloudSpec.for_zones([zone], seed=seed), zone,
                        endpoints=3, n_requests=150, max_polls=2)


def _task_grid(n):
    return [_tiny_task(seed=seed) for seed in range(n)]


def _dumps(results):
    return [pickle.dumps(result) for result in results]


def _serial_reference(n):
    return _dumps(SweepEngine(workers=1).run(_task_grid(n)))


# ---------------------------------------------------------------------------
# chunk journal unit behavior
# ---------------------------------------------------------------------------

class TestChunkJournal:
    RECORDS = {0: [(0, True, "r0", 1.0, 42), (1, True, "r1", 2.0, 42)],
               1: [(2, True, "r2", 1.5, 43)]}

    def _write(self, directory, upto=2):
        journal = ChunkJournal(str(directory))
        journal.begin("guard-a", cells=3, chunk_size=2, chunks=2)
        for chunk_id in range(upto):
            indexes = [r[0] for r in self.RECORDS[chunk_id]]
            journal.append(chunk_id, indexes, self.RECORDS[chunk_id],
                           worker="w")
        journal.close()
        return journal

    def test_round_trip(self, tmp_path):
        self._write(tmp_path)
        loaded = ChunkJournal(str(tmp_path)).load(guard="guard-a",
                                                  cells=3)
        assert len(loaded) == 2
        assert loaded.replayed[0] == ([0, 1], self.RECORDS[0])
        assert loaded.replayed[1] == ([2], self.RECORDS[1])

    def test_guard_mismatch_refused(self, tmp_path):
        self._write(tmp_path)
        with pytest.raises(ConfigurationError, match="does not match"):
            ChunkJournal(str(tmp_path)).load(guard="guard-b")

    def test_cell_count_mismatch_refused(self, tmp_path):
        self._write(tmp_path)
        with pytest.raises(ConfigurationError, match="cells"):
            ChunkJournal(str(tmp_path)).load(guard="guard-a", cells=99)

    def test_truncated_tail_tolerated(self, tmp_path):
        self._write(tmp_path)
        path = os.path.join(str(tmp_path), CHUNKS_FILE)
        with open(path) as handle:
            lines = handle.read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + "\n" + lines[2][:37])
        loaded = ChunkJournal(str(tmp_path)).load(guard="guard-a")
        assert sorted(loaded.replayed) == [0]  # chunk 1 simply reruns

    def test_corrupt_payload_stops_replay(self, tmp_path):
        self._write(tmp_path)
        path = os.path.join(str(tmp_path), CHUNKS_FILE)
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines[1] = lines[1].replace('"crc32": ', '"crc32": 1')
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        loaded = ChunkJournal(str(tmp_path)).load(guard="guard-a")
        assert len(loaded) == 0

    def test_append_requires_open_handle(self, tmp_path):
        journal = self._write(tmp_path)
        with pytest.raises(ConfigurationError, match="not open"):
            journal.append(5, [9], [(9, True, "x", 0.0, 1)])

    def test_guard_hash_is_deterministic(self):
        tasks = _task_grid(2)
        assert guard_hash_for_tasks(tasks) == \
            guard_hash_for_tasks(_task_grid(2))
        assert guard_hash_for_tasks(tasks) != \
            guard_hash_for_tasks(_task_grid(3))
        assert guard_hash_for_tasks(tasks).startswith("tasks:")


# ---------------------------------------------------------------------------
# journal + resume through the engine
# ---------------------------------------------------------------------------

class TestResume:
    def test_journaled_serial_run_matches_plain(self, tmp_path):
        n = 4
        journaled = SweepEngine(workers=1,
                                journal=str(tmp_path)).run(_task_grid(n))
        assert _dumps(journaled) == _serial_reference(n)
        loaded = ChunkJournal(str(tmp_path)).load()
        assert len(loaded) == loaded.header["chunks"]

    def test_crash_then_resume_is_byte_identical(self, tmp_path):
        n = 6
        reference = _serial_reference(n)

        calls = []

        def crash_after_two(chunk_id, records):
            calls.append(chunk_id)
            if len(calls) == 2:
                raise CoordinatorCrash(2)

        engine = SweepEngine(workers=1, chunk_size=1,
                             journal=str(tmp_path),
                             chunk_hook=crash_after_two)
        with pytest.raises(CoordinatorCrash):
            engine.run(_task_grid(n))
        assert len(ChunkJournal(str(tmp_path)).load()) == 2

        resumed = SweepEngine(workers=1,
                              resume=str(tmp_path)).run(_task_grid(n))
        assert _dumps(resumed) == reference
        # The journal is now complete and a second resume replays
        # everything without running a single cell.
        ran = []
        again = SweepEngine(workers=1, resume=str(tmp_path),
                            chunk_hook=lambda c, r: ran.append(c)
                            ).run(_task_grid(n))
        assert _dumps(again) == reference
        assert ran == []

    def test_resume_into_pool_backend(self, tmp_path):
        n = 6
        reference = _serial_reference(n)
        calls = []

        def crash_after_three(chunk_id, records):
            calls.append(chunk_id)
            if len(calls) == 3:
                raise CoordinatorCrash(3)

        with pytest.raises(CoordinatorCrash):
            SweepEngine(workers=1, chunk_size=1, journal=str(tmp_path),
                        chunk_hook=crash_after_three).run(_task_grid(n))
        resumed = SweepEngine(workers=2,
                              resume=str(tmp_path)).run(_task_grid(n))
        assert _dumps(resumed) == reference

    def test_resume_respects_grid_hash_guard(self, tmp_path):
        SweepEngine(workers=1, journal=str(tmp_path)).run(
            _task_grid(2), grid_hash="grid-one")
        with pytest.raises(ConfigurationError, match="does not match"):
            SweepEngine(workers=1, resume=str(tmp_path)).run(
                _task_grid(2), grid_hash="grid-two")

    def test_resume_without_journal_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no chunk journal"):
            SweepEngine(workers=1,
                        resume=str(tmp_path / "nope")).run(_task_grid(2))

    def test_infra_failures_are_not_journaled(self, tmp_path):
        # Chunk-failure placeholder records (pid -1 + chunk_failure flag)
        # must be retried on resume, not replayed as gospel.
        engine = SweepEngine(workers=1, chunk_size=1,
                             journal=str(tmp_path))
        tasks = _task_grid(2)
        records = [(0, False, ("TransportError", "lost", True), 0.0, -1)]
        engine._journal = ChunkJournal(str(tmp_path)).begin(
            "g", 2, 1, 2)
        engine._journal_chunk(0, [(0, tasks[0])], records, worker=None)
        engine._journal.close()
        assert len(ChunkJournal(str(tmp_path)).load()) == 0

    def test_replay_emits_resumed_event(self, tmp_path):
        from repro.obs import Observability

        n = 4
        with pytest.raises(CoordinatorCrash):
            SweepEngine(workers=1, chunk_size=1, journal=str(tmp_path),
                        chunk_hook=lambda c, r: (_ for _ in ()).throw(
                            CoordinatorCrash(1))).run(_task_grid(n))
        obs = Observability()
        events = []
        obs.bus.subscribe(lambda e: events.append(e), "sweep.resumed")
        SweepEngine(workers=1, resume=str(tmp_path),
                    obs=obs).run(_task_grid(n))
        assert len(events) == 1
        assert events[0].fields["chunks"] == 1
        assert events[0].fields["cells"] == 1
        cell_events = obs.recorder.events("sweep.cell")
        replayed = [e for e in cell_events
                    if e.fields.get("replayed")]
        assert len(cell_events) == n
        assert len(replayed) == 1


# ---------------------------------------------------------------------------
# authenticated transport
# ---------------------------------------------------------------------------

def _auth_pair(server_token, client_token):
    server_sock, client_sock = socket.socketpair()
    box = {}

    def serve():
        try:
            box["server"] = server_auth(server_sock, server_token,
                                        timeout=5.0)
        except AuthenticationError as error:
            box["server_error"] = error
            server_sock.close()  # unblock the peer immediately

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        box["client"] = client_auth(client_sock, client_token,
                                    timeout=5.0)
    except AuthenticationError as error:
        box["client_error"] = error
    thread.join(timeout=5.0)
    return box, server_sock, client_sock


class TestAuth:
    def test_handshake_round_trip(self):
        box, server_sock, client_sock = _auth_pair("tok", "tok")
        assert box.get("server") == PROTOCOL_VERSION
        assert box.get("client") == PROTOCOL_VERSION
        # The sockets still carry framed pickles afterwards.
        Transport(client_sock).send(("hello", "w", 1))
        assert Transport(server_sock).recv(timeout=5.0) == \
            ("hello", "w", 1)

    def test_wrong_token_rejected(self):
        box, _, _ = _auth_pair("tok", "wrong")
        assert "server_error" in box

    def test_anonymous_peer_rejected_before_any_pickle(self, monkeypatch):
        # A legacy peer sends a framed pickled hello; the token-protected
        # coordinator must drop it without ever calling pickle.loads.
        import repro.engine.protocol as protocol

        loads_calls = []
        real_loads = protocol.pickle.loads

        def spying_loads(*args, **kwargs):
            loads_calls.append(args)
            return real_loads(*args, **kwargs)

        monkeypatch.setattr(protocol.pickle, "loads", spying_loads)
        rejected = []
        coordinator = SweepCoordinator(
            auth_token="tok", heartbeat_s=0.1,
            emit=lambda name, **fields: rejected.append(name)
            if name == "sweep.auth_rejected" else None).start()
        try:
            raw = socket.create_connection(coordinator.address,
                                           timeout=5.0)
            # Speak the anonymous protocol at an authenticated port.
            Transport(raw).send(("hello", "legacy", 123))
            raw.settimeout(5.0)
            # Drain until the coordinator hangs up on us.
            while True:
                try:
                    if raw.recv(4096) == b"":
                        break
                except OSError:
                    break
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not rejected:
                time.sleep(0.02)
            assert rejected == ["sweep.auth_rejected"]
            assert coordinator.workers_seen == 0
            assert loads_calls == []
        finally:
            coordinator.close()

    def test_worker_with_wrong_token_raises(self):
        coordinator = SweepCoordinator(auth_token="right",
                                       heartbeat_s=0.1).start()
        try:
            worker = SweepWorker(*coordinator.address, token="wrong",
                                 heartbeat_s=0.1, max_reconnects=1)
            with pytest.raises(AuthenticationError):
                worker.run()
            assert coordinator.workers_seen == 0
        finally:
            coordinator.close()

    def test_anonymous_worker_fails_fast_not_forever(self):
        # A token-less worker dialing a token-protected coordinator sees
        # the AUTH preamble where a frame header should be.  That is a
        # configuration error, not a flaky link: it must surface as
        # AuthenticationError instead of burning the reconnect budget
        # (or, with the old retry-reset behaviour, looping forever).
        coordinator = SweepCoordinator(auth_token="tok",
                                       heartbeat_s=0.1).start()
        try:
            worker = SweepWorker(*coordinator.address,
                                 worker_id="anon", heartbeat_s=0.1,
                                 max_reconnects=8)
            start = time.monotonic()
            with pytest.raises(AuthenticationError):
                worker.run()
            assert time.monotonic() - start < 10.0
            assert coordinator.workers_seen == 0
        finally:
            coordinator.close()

    def test_end_to_end_authenticated_sweep(self):
        n = 4
        reference = _serial_reference(n)
        results = SweepEngine(workers=2, backend="remote",
                              remote_workers=2, heartbeat_s=0.1,
                              join_timeout_s=30.0,
                              auth_token="s3cret").run(_task_grid(n))
        assert _dumps(results) == reference


# ---------------------------------------------------------------------------
# elastic workers: drain + spool
# ---------------------------------------------------------------------------

class TestElasticity:
    def test_graceful_drain_leaves_without_requeue(self):
        from repro.engine.executor import _run_chunk

        n = 6
        chunks = [[(i, _tiny_task(seed=i))] for i in range(n)]
        events = []
        coordinator = SweepCoordinator(
            heartbeat_s=0.1, join_timeout_s=30.0,
            emit=lambda name, **fields: events.append((name, fields)))
        coordinator.start()
        drain = threading.Event()

        def drain_after_first(chunk):
            # Finish the chunk in hand, then ask to leave — the SIGTERM
            # drain path, minus the signal.
            records = _run_chunk(chunk)
            drain.set()
            return records

        records = []
        consumer = threading.Thread(
            target=lambda: records.extend(coordinator.run(chunks)),
            daemon=True)
        consumer.start()
        stayer = SweepWorker(*coordinator.address, worker_id="stay",
                             heartbeat_s=0.1)
        leaver = SweepWorker(*coordinator.address, worker_id="leave",
                             heartbeat_s=0.1,
                             run_chunk=drain_after_first)
        stay_thread = threading.Thread(target=stayer.run, daemon=True)
        leave_thread = threading.Thread(
            target=lambda: leaver.run(drain=drain), daemon=True)
        stay_thread.start()
        leave_thread.start()
        consumer.join(timeout=60.0)
        coordinator.close()
        leave_thread.join(timeout=10.0)
        assert not consumer.is_alive()
        assert not leave_thread.is_alive()
        assert sorted(r[0] for r in records) == list(range(n))
        names = [name for name, _ in events]
        assert "sweep.worker_left" in names
        assert "sweep.chunk_requeued" not in names

    def test_spooled_result_replays_after_reconnect(self, tmp_path):
        # First connection: the transport dies on the result send, so
        # the worker spools the finished chunk.  Second connection is
        # healthy and must replay the spool before serving new work.
        spool_dir = str(tmp_path / "spool")
        chunk = [(0, _tiny_task())]
        coordinator = SweepCoordinator(heartbeat_s=0.2,
                                       join_timeout_s=30.0,
                                       max_requeues=1)
        coordinator.start()
        from repro.engine.protocol import connect as real_connect
        dial_count = [0]

        class ResultDropper(object):
            def __init__(self, inner):
                self._inner = inner

            def send(self, message):
                if isinstance(message, tuple) \
                        and message[0] == "result":
                    self._inner.close()
                    raise TransportError("injected loss on result send")
                self._inner.send(message)

            def recv(self, timeout=None):
                return self._inner.recv(timeout=timeout)

            def close(self):
                self._inner.close()

            @property
            def closed(self):
                return self._inner.closed

        def factory(host, port):
            dial_count[0] += 1
            transport = real_connect(host, port)
            if dial_count[0] == 1:
                return ResultDropper(transport)
            return transport

        worker = SweepWorker(*coordinator.address, worker_id="spooler",
                             heartbeat_s=0.2, spool=spool_dir,
                             transport_factory=factory)
        records = []
        consumer = threading.Thread(
            target=lambda: records.extend(coordinator.run([chunk])),
            daemon=True)
        consumer.start()
        worker_thread = threading.Thread(target=worker.run, daemon=True)
        worker_thread.start()
        consumer.join(timeout=60.0)
        coordinator.close()
        assert not consumer.is_alive()
        assert [r[0] for r in records] == [0]
        assert all(ok for _, ok, _, _, _ in records)
        # The spool file was consumed on replay.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and os.listdir(spool_dir):
            time.sleep(0.02)
        assert os.listdir(spool_dir) == []

    def test_spool_write_and_replay_roundtrip(self, tmp_path):
        worker = SweepWorker("127.0.0.1", 1, spool=str(tmp_path))
        records = [(3, True, "payload", 1.0, 99)]
        worker._spool_result(7, records)
        assert worker._spooled_chunks() == [7]
        sent = []

        class FakeTransport(object):
            def send(self, message):
                sent.append(message)

        worker._replay_spool(FakeTransport())
        assert sent == [("result", 7, records)]
        assert worker._spooled_chunks() == []


# ---------------------------------------------------------------------------
# hang (not crash): deadline requeue, exactly once
# ---------------------------------------------------------------------------

class TestHangPath:
    def test_stalled_worker_requeues_once_and_output_is_identical(self):
        from repro.engine.executor import _run_chunk

        n = 3
        reference = _serial_reference(n)
        chunks = [[(i, task)] for i, task in enumerate(_task_grid(n))]
        events = []
        coordinator = SweepCoordinator(
            heartbeat_s=0.1, chunk_deadline_s=0.6, join_timeout_s=30.0,
            max_requeues=1,
            emit=lambda name, **fields: events.append((name, fields)))
        coordinator.start()
        stalled = threading.Event()

        def stalling_run_chunk(chunk):
            if not stalled.is_set():
                stalled.set()
                # Accept the first chunk, then hang well past the
                # deadline while heartbeats keep flowing: a live-but-
                # stuck worker, not a dead one.  After the coordinator
                # cuts the connection the worker reconnects and behaves.
                time.sleep(2.0)
            return _run_chunk(chunk)

        # A single worker keeps the schedule deterministic: it stalls on
        # chunk 0, the deadline requeues it, and the same worker serves
        # everything after its reconnect.
        hanger = SweepWorker(*coordinator.address, worker_id="hanger",
                             heartbeat_s=0.1,
                             run_chunk=stalling_run_chunk)
        records = []
        consumer = threading.Thread(
            target=lambda: records.extend(coordinator.run(chunks)),
            daemon=True)
        consumer.start()
        threading.Thread(target=hanger.run, daemon=True).start()
        consumer.join(timeout=60.0)
        coordinator.close()
        assert not consumer.is_alive()
        merged = [None] * n
        for index, ok, payload, _, _ in records:
            assert ok
            merged[index] = payload
        assert _dumps(merged) == reference
        requeues = [f for name, f in events
                    if name == "sweep.chunk_requeued"]
        assert len(requeues) == 1
        assert requeues[0]["chunk"] == 0


# ---------------------------------------------------------------------------
# coordinator lifecycle
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_close_joins_accept_thread(self):
        coordinator = SweepCoordinator(heartbeat_s=0.1).start()
        accept_thread = coordinator._accept_thread
        coordinator.close()
        assert not accept_thread.is_alive()
        assert coordinator._accept_thread is None

    def test_finished_handlers_are_pruned(self):
        coordinator = SweepCoordinator(heartbeat_s=0.1).start()
        try:
            for _ in range(5):
                raw = socket.create_connection(coordinator.address,
                                               timeout=5.0)
                transport = Transport(raw)
                transport.send(("hello", "hit-and-run", 1))
                transport.close()
                time.sleep(0.05)
            # One more connect triggers the prune of the dead five.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                raw = socket.create_connection(coordinator.address,
                                               timeout=5.0)
                raw.close()
                time.sleep(0.1)
                if len(coordinator._handlers) <= 3:
                    break
            assert len(coordinator._handlers) <= 3
        finally:
            coordinator.close()


# ---------------------------------------------------------------------------
# fleet chaos schedule
# ---------------------------------------------------------------------------

class TestFleetChaos:
    def test_seeded_schedule_is_deterministic(self):
        one = FleetChaos.seeded(7, chunks=10, workers=3).plan()
        two = FleetChaos.seeded(7, chunks=10, workers=3).plan()
        other = FleetChaos.seeded(8, chunks=10, workers=3).plan()
        assert one == two
        assert one != other
        for event in one:
            assert 1 <= event["at_chunk"] <= 10
            assert event["target"].startswith("worker-")

    def test_chunk_hook_fires_events_in_order(self):
        fired = []
        chaos = FleetChaos(
            [FleetEvent(2, "kill_worker", target="worker-0"),
             FleetEvent(3, "term_worker", target="worker-1")],
            on_event=lambda event: fired.append(event.kind))
        for chunk_id in range(4):
            chaos.chunk_hook(chunk_id, [])
        assert fired == ["kill_worker", "term_worker"]
        assert not chaos.pending()

    def test_coordinator_crash_raises_through_hook(self):
        chaos = FleetChaos([FleetEvent(1, "coordinator_crash")])
        with pytest.raises(CoordinatorCrash):
            chaos.chunk_hook(0, [])

    def test_unregistered_target_is_skipped(self):
        chaos = FleetChaos([FleetEvent(1, "kill_worker",
                                       target="worker-9")])
        chaos.chunk_hook(0, [])  # must not raise
        assert chaos.events[0].fired

    def test_chaos_crash_plus_resume_is_byte_identical(self, tmp_path):
        n = 6
        reference = _serial_reference(n)
        chaos = FleetChaos([FleetEvent(2, "coordinator_crash")])
        with pytest.raises(CoordinatorCrash):
            SweepEngine(workers=1, chunk_size=1, journal=str(tmp_path),
                        chunk_hook=chaos.chunk_hook).run(_task_grid(n))
        assert len(ChunkJournal(str(tmp_path)).load()) == 2
        resumed = SweepEngine(workers=1,
                              resume=str(tmp_path)).run(_task_grid(n))
        assert _dumps(resumed) == reference


# ---------------------------------------------------------------------------
# the real thing: SIGKILL a recorded subprocess sweep, then --resume
# ---------------------------------------------------------------------------

class TestKillNineResume:
    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__))) + os.sep + "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        run_dir = str(tmp_path / "run")
        base = [sys.executable, "-m", "repro", "sweep", "campaign",
                "--zones", "us-west-1a,us-west-1b", "--seeds", "0,1,2",
                "--polls", "2", "--endpoints", "3", "--requests", "150"]
        reference = str(tmp_path / "reference.json")
        subprocess.run(base + ["--workers", "1", "--json", reference],
                       env=env, check=True, capture_output=True,
                       timeout=300)

        victim = subprocess.Popen(
            base + ["--workers", "1", "--chunk", "1", "--record",
                    run_dir, "--json", str(tmp_path / "victim.json")],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        journal_path = os.path.join(run_dir, CHUNKS_FILE)
        deadline = time.monotonic() + 240.0
        journaled = 0
        try:
            # Wait until at least one chunk is journaled, then kill -9.
            while time.monotonic() < deadline:
                if os.path.exists(journal_path):
                    with open(journal_path) as handle:
                        journaled = sum(1 for line in handle
                                        if '"kind": "chunk"' in line)
                    if journaled >= 1:
                        break
                if victim.poll() is not None:
                    break
                time.sleep(0.02)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)
        finally:
            if victim.poll() is None:
                victim.kill()
        if journaled == 0 or journaled >= 6:
            pytest.skip("scheduling never produced a partial journal "
                        "({} of 6 chunks)".format(journaled))

        resumed_json = str(tmp_path / "resumed.json")
        subprocess.run(
            base + ["--resume", run_dir, "--json", resumed_json],
            env=env, check=True, capture_output=True, timeout=300)
        with open(reference, "rb") as ref, open(resumed_json,
                                                "rb") as res:
            assert ref.read() == res.read()


# ---------------------------------------------------------------------------
# manifest interrupted guard
# ---------------------------------------------------------------------------

class TestInterruptedGuard:
    def test_guard_stamps_interrupted(self, tmp_path):
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.begin(str(tmp_path), "sweep-test",
                                     registry=None)
        manifest.install_guard()
        manifest._guard()
        loaded = RunManifest.load(str(tmp_path))
        assert loaded.data["status"] == "interrupted"
        assert loaded.data["finished_unix"] is not None

    def test_guard_disarmed_by_finalize(self, tmp_path):
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.begin(str(tmp_path), "sweep-test",
                                     registry=None)
        manifest.install_guard()
        manifest.finalize(summary={"ok": True})
        manifest._guard()
        assert RunManifest.load(
            str(tmp_path)).data["status"] == "complete"

    def test_sigint_stamps_interrupted_subprocess(self, tmp_path):
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__))) + os.sep + "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "import signal, sys, time\n"
            "from repro.obs.manifest import RunManifest\n"
            "m = RunManifest.begin({!r}, 'guard-test', registry=None)\n"
            "m.install_guard()\n"
            "sys.stdout.write('armed\\n'); sys.stdout.flush()\n"
            "time.sleep(60)\n".format(str(tmp_path)))
        process = subprocess.Popen([sys.executable, "-c", script],
                                   env=env, stdout=subprocess.PIPE,
                                   text=True)
        try:
            assert process.stdout.readline().strip() == "armed"
            process.send_signal(signal.SIGINT)
            process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
        from repro.obs.manifest import RunManifest
        assert RunManifest.load(
            str(tmp_path)).data["status"] == "interrupted"
