"""The workload suite runner."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import WORKLOAD_NAMES
from repro.workloads.suite import WorkloadSuite


class TestWorkloadSuite(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSuite(scale=0)
        with pytest.raises(ConfigurationError):
            WorkloadSuite(repetitions=0)

    def test_subset_run(self):
        suite = WorkloadSuite(scale=0.05, repetitions=2)
        report = suite.run(names=["sha1_hash", "json_flattener"])
        assert len(report) == 2
        row = report.row("sha1_hash")
        assert row.runs == 2
        assert row.mean_seconds > 0
        assert row.stdev_seconds >= 0
        assert row.sample_summary

    def test_full_suite(self):
        report = WorkloadSuite(scale=0.05, repetitions=1).run()
        assert len(report) == len(WORKLOAD_NAMES)
        assert report.total_seconds() > 0

    def test_unknown_row(self):
        report = WorkloadSuite(scale=0.05, repetitions=1).run(
            names=["sha1_hash"])
        with pytest.raises(ConfigurationError):
            report.row("zipper")

    def test_csv_rows(self):
        report = WorkloadSuite(scale=0.05, repetitions=1).run(
            names=["sha1_hash"])
        rows = report.to_rows()
        assert rows[0]["workload"] == "sha1_hash"
        assert set(rows[0]) == {"workload", "vcpus", "runs",
                                "mean_seconds", "stdev_seconds"}

    def test_different_seeds_per_repetition(self):
        # Repetitions use different seeds, so stdev reflects genuine
        # input variation, not just timer noise.
        suite = WorkloadSuite(scale=0.05, repetitions=3, seed=5)
        report = suite.run(names=["graph_mst"])
        assert report.row("graph_mst").runs == 3
