"""Stability classification and adaptive sampling cadence."""

import pytest

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import DAYS, HOURS, Money
from repro.sampling import CharacterizationBuilder
from repro.sampling.stability import (
    STABLE,
    UNKNOWN,
    VOLATILE,
    StabilityClassifier,
    ZoneStabilityTracker,
)


def profile(zone, counts, timestamp):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=timestamp)
    return builder.snapshot()


def steady_history(zone="z", days=4):
    return [profile(zone, {"a": 50, "b": 50}, day * DAYS)
            for day in range(days)]


def drifting_history(zone="z", days=4):
    history = []
    for day in range(days):
        share = 50 + day * 15
        history.append(profile(zone, {"a": share, "b": 100 - share + 1},
                               day * DAYS))
    return history


class TestClassifier(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StabilityClassifier(volatile_threshold=0)
        with pytest.raises(ConfigurationError):
            StabilityClassifier(min_observations=1)

    def test_drift_rate_of_steady_history_is_zero(self):
        rate = StabilityClassifier().drift_rate(steady_history())
        assert rate == pytest.approx(0.0)

    def test_drift_rate_positive_for_drifting_history(self):
        rate = StabilityClassifier().drift_rate(drifting_history())
        assert rate > 10.0

    def test_drift_rate_needs_two_profiles(self):
        with pytest.raises(CharacterizationError):
            StabilityClassifier().drift_rate(steady_history(days=1))

    def test_drift_rate_needs_time_separation(self):
        history = [profile("z", {"a": 1}, 5.0),
                   profile("z", {"a": 1}, 5.0)]
        with pytest.raises(CharacterizationError):
            StabilityClassifier().drift_rate(history)

    def test_classify(self):
        classifier = StabilityClassifier(volatile_threshold=8.0)
        assert classifier.classify(steady_history()) == STABLE
        assert classifier.classify(drifting_history()) == VOLATILE
        assert classifier.classify(steady_history(days=1)) == UNKNOWN

    def test_recommended_interval(self):
        classifier = StabilityClassifier()
        assert classifier.recommended_interval(
            steady_history()) == 7 * DAYS
        assert classifier.recommended_interval(
            drifting_history()) == 22 * HOURS


class TestTracker(object):
    def test_observe_builds_history(self):
        tracker = ZoneStabilityTracker()
        for item in steady_history("z-1"):
            tracker.observe(item)
        assert tracker.classify("z-1") == STABLE
        assert len(tracker.history("z-1")) == 4

    def test_history_limit(self):
        tracker = ZoneStabilityTracker(history_limit=3)
        for item in steady_history("z-1", days=10):
            tracker.observe(item)
        assert len(tracker.history("z-1")) == 3

    def test_unknown_zone(self):
        tracker = ZoneStabilityTracker()
        assert tracker.classify("ghost") == UNKNOWN
        assert tracker.needs_refresh("ghost", now=0.0)

    def test_refresh_cadence_stable_vs_volatile(self):
        tracker = ZoneStabilityTracker()
        for item in steady_history("calm"):
            tracker.observe(item)
        for item in drifting_history("wild"):
            tracker.observe(item)
        just_after = 3 * DAYS + 1 * DAYS
        assert not tracker.needs_refresh("calm", now=just_after)
        assert tracker.needs_refresh("wild", now=just_after)

    def test_zones_listing(self):
        tracker = ZoneStabilityTracker()
        tracker.observe(profile("b", {"a": 1}, 0.0))
        tracker.observe(profile("a", {"a": 1}, 0.0))
        assert tracker.zones() == ["a", "b"]
