"""SAAF-style profiling: inspector and reports."""

import pytest

from repro.cloudsim.handlers import SleepHandler
from repro.saaf import (
    Inspector,
    aggregate_cpu_counts,
    report_from_invocation,
    reports_from_placement,
)


@pytest.fixture
def invocation(cloud, aws_account):
    deployment = cloud.deploy(aws_account, "test-1a", "fn", 2048,
                              handler=SleepHandler(0.25))
    return cloud.invoke(deployment)


class TestInspector(object):
    def test_inspect_cpu(self, invocation):
        report = Inspector(invocation).inspect_cpu().finish()
        assert report["cpuModel"] == invocation.cpu_key
        assert "Intel" in report["cpuType"]
        assert report["cpuMhz"] in (2500.0, 2900.0)

    def test_inspect_container(self, invocation):
        report = Inspector(invocation).inspect_container().finish()
        assert report["containerID"] == invocation.instance_id
        assert report["newcontainer"] == 1

    def test_inspect_platform(self, invocation):
        report = Inspector(invocation).inspect_platform().finish()
        assert report["functionRegion"] == "test-1a"

    def test_finish_includes_runtime_ms(self, invocation):
        report = Inspector(invocation).finish()
        assert report["runtime"] == pytest.approx(251.0)

    def test_custom_attribute(self, invocation):
        report = Inspector(invocation).add_attribute("batch", 7).finish()
        assert report["batch"] == 7

    def test_warm_container_flag(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn2", 2048,
                                  handler=SleepHandler(0.25))
        cloud.invoke(deployment)
        cloud.clock.advance(1.0)
        warm = cloud.invoke(deployment)
        report = Inspector(warm).inspect_container().finish()
        assert report["newcontainer"] == 0


class TestReports(object):
    def test_report_from_invocation(self, invocation):
        report = report_from_invocation(invocation)
        assert report.cpu_key == invocation.cpu_key
        assert report.is_cold
        assert report.zone == "test-1a"
        assert "cpuVendor" in report

    def test_reports_from_placement(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn3", 2048,
                                  handler=SleepHandler(0.25))
        result, _ = cloud.poll(deployment, 50)
        reports = reports_from_placement(result)
        assert len(reports) == result.served
        counts = aggregate_cpu_counts(reports)
        assert counts == result.request_cpu_counts

    def test_reports_from_placement_capped(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn4", 2048,
                                  handler=SleepHandler(0.25))
        result, _ = cloud.poll(deployment, 50)
        reports = reports_from_placement(result, max_reports=10)
        assert len(reports) == 10

    def test_aggregate_from_dicts(self):
        counts = aggregate_cpu_counts([
            {"cpuModel": "a"}, {"cpuModel": "a"}, {"cpuModel": "b"},
            {"other": 1},
        ])
        assert counts == {"a": 2, "b": 1}
