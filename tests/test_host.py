"""Host pools: slot accounting, keep-alive expiry, warm reuse."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.host import HostPool


@pytest.fixture
def pool():
    return HostPool("xeon-2.5", hosts=4, slots_per_host=16)


class TestCapacity(object):
    def test_capacity(self, pool):
        assert pool.capacity == 64

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            HostPool("x", hosts=-1, slots_per_host=16)
        with pytest.raises(ConfigurationError):
            HostPool("x", hosts=1, slots_per_host=0)
        with pytest.raises(ConfigurationError):
            HostPool("x", hosts=1, slots_per_host=16, affinity=0)

    def test_empty_pool_has_all_slots_free(self, pool):
        assert pool.free_slots(now=0.0) == 64
        assert pool.occupied(now=0.0) == 0


class TestAllocation(object):
    def test_allocate_occupies_slots(self, pool):
        pool.allocate("fn", 10, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.occupied(now=0.0) == 10
        assert pool.free_slots(now=0.0) == 54

    def test_bucket_lifecycle_times(self, pool):
        bucket = pool.allocate("fn", 5, now=10.0, duration=2.0,
                               keepalive=300.0)
        assert bucket.busy_until == 12.0
        assert bucket.expire_at == 312.0

    def test_over_allocation_raises(self, pool):
        with pytest.raises(ConfigurationError):
            pool.allocate("fn", 65, now=0.0, duration=1.0, keepalive=300.0)

    def test_zero_allocation_raises(self, pool):
        with pytest.raises(ConfigurationError):
            pool.allocate("fn", 0, now=0.0, duration=1.0, keepalive=300.0)

    def test_slots_released_after_keepalive(self, pool):
        pool.allocate("fn", 10, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.occupied(now=300.0) == 10
        assert pool.occupied(now=301.1) == 0

    def test_allocate_instance(self, pool):
        fi = pool.allocate_instance("fi-1", "host-1", "fn", now=0.0,
                                    duration=1.0, keepalive=300.0)
        assert fi.count == 1
        assert fi.instance_id == "fi-1"
        assert pool.occupied(now=0.0) == 1


class TestWarmReuse(object):
    def test_idle_warm_counts(self, pool):
        pool.allocate("fn", 8, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.idle_warm("fn", now=0.5) == 0  # still busy
        assert pool.idle_warm("fn", now=2.0) == 8  # warm-idle

    def test_idle_warm_scoped_to_deployment(self, pool):
        pool.allocate("fn-a", 8, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.idle_warm("fn-b", now=2.0) == 0

    def test_claim_warm_full_bucket(self, pool):
        pool.allocate("fn", 8, now=0.0, duration=1.0, keepalive=300.0)
        claimed = pool.claim_warm("fn", 8, now=2.0, duration=1.0,
                                  keepalive=300.0)
        assert claimed == 8
        assert pool.idle_warm("fn", now=2.5) == 0  # busy again

    def test_claim_warm_partial_bucket_splits(self, pool):
        pool.allocate("fn", 8, now=0.0, duration=1.0, keepalive=300.0)
        claimed = pool.claim_warm("fn", 3, now=2.0, duration=1.0,
                                  keepalive=300.0)
        assert claimed == 3
        assert pool.idle_warm("fn", now=2.0) == 5
        assert pool.occupied(now=2.0) == 8  # total unchanged

    def test_claim_refreshes_keepalive(self, pool):
        pool.allocate("fn", 4, now=0.0, duration=1.0, keepalive=300.0)
        pool.claim_warm("fn", 4, now=250.0, duration=1.0, keepalive=300.0)
        # Originally would expire at 301; the claim pushed it to 551.
        assert pool.occupied(now=400.0) == 4

    def test_claim_more_than_available(self, pool):
        pool.allocate("fn", 4, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.claim_warm("fn", 10, now=2.0, duration=1.0,
                               keepalive=300.0) == 4

    def test_claim_expired_returns_zero(self, pool):
        pool.allocate("fn", 4, now=0.0, duration=1.0, keepalive=300.0)
        assert pool.claim_warm("fn", 4, now=302.0, duration=1.0,
                               keepalive=300.0) == 0


class TestResizing(object):
    def test_set_hosts_grows(self, pool):
        assert pool.set_hosts(8, now=0.0) == 8
        assert pool.capacity == 128

    def test_set_hosts_shrinks(self, pool):
        assert pool.set_hosts(1, now=0.0) == 1
        assert pool.capacity == 16

    def test_shrink_floored_at_occupancy(self, pool):
        pool.allocate("fn", 40, now=0.0, duration=1.0, keepalive=300.0)
        # 40 occupied slots need ceil(40/16) = 3 hosts.
        assert pool.set_hosts(0, now=0.0) == 3

    def test_negative_hosts_rejected(self, pool):
        with pytest.raises(ConfigurationError):
            pool.set_hosts(-1, now=0.0)

    def test_add_hosts(self, pool):
        pool.add_hosts(2)
        assert pool.hosts == 6
        with pytest.raises(ConfigurationError):
            pool.add_hosts(-1)
