"""The run flight recorder: manifests, artifacts, round trips."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import Grid
from repro.obs import Observability
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    RunRegistry,
)


def _facade():
    obs = Observability()
    obs.bus.emit("demo.event", 0.1, zone="z1")
    obs.bus.emit("demo.event", 0.2, zone="z2")
    obs.registry.counter("demo_total", kind="x").inc(4)
    root = obs.tracer.start_trace("run", 0.0)
    obs.tracer.start_span("step", root, 0.1).finish(0.4)
    root.finish(0.5)
    return obs


class TestRunManifest(object):
    def test_begin_writes_a_running_manifest(self, tmp_path):
        registry = RunRegistry()
        manifest = RunManifest.begin(
            str(tmp_path / "run"), "sweep-campaign", seed=7,
            config={"zones": "us-west-1a"}, grid_hash="abc",
            registry=registry)
        on_disk = json.load(open(manifest.path("manifest.json")))
        assert on_disk["version"] == MANIFEST_VERSION
        assert on_disk["kind"] == "sweep-campaign"
        assert on_disk["seed"] == 7
        assert on_disk["status"] == "running"
        assert on_disk["grid_hash"] == "abc"
        assert on_disk["config"] == {"zones": "us-west-1a"}
        assert on_disk["finished_unix"] is None
        assert len(registry) == 1

    def test_finalize_and_load_round_trip(self, tmp_path):
        obs = _facade()
        manifest = RunManifest.begin(str(tmp_path / "run"), "sweep",
                                     seed=3, registry=None)
        manifest.update(grid_hash="feed")
        manifest.finalize(obs=obs, summary={"cells": 4})

        loaded = RunManifest.load(str(tmp_path / "run"))
        assert loaded.data["status"] == "complete"
        assert loaded.data["grid_hash"] == "feed"
        assert loaded.data["summary"] == {"cells": 4}
        assert loaded.data["finished_unix"] >= loaded.data["started_unix"]
        assert loaded.data["artifacts"] == {"events.jsonl": 2,
                                            "metrics.prom": 1,
                                            "trace.json": 2}

        events = loaded.events()
        assert [event["event"] for event in events] == ["demo.event"] * 2
        assert events[0]["zone"] == "z1"
        metrics = loaded.metrics()
        assert metrics[("demo_total", ("kind", "x"))] == 4.0
        traces = loaded.traces()
        assert len(traces) == 1
        assert [span["name"] for span in traces[0]] == ["run", "step"]

    def test_failed_status(self, tmp_path):
        manifest = RunManifest.begin(str(tmp_path / "run"), "sweep",
                                     registry=None)
        manifest.finalize(status="failed")
        loaded = RunManifest.load(str(tmp_path / "run"))
        assert loaded.data["status"] == "failed"
        # Metadata-only finalize: the artifact readers degrade to empty.
        assert loaded.events() == []
        assert loaded.metrics() == {}
        assert loaded.traces() == []

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunManifest.load(str(tmp_path / "nope"))

    def test_load_corrupt_manifest_raises(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text("{not json")
        with pytest.raises(ConfigurationError):
            RunManifest.load(str(run_dir))

    def test_describe_rows_are_json_safe(self, tmp_path):
        registry = RunRegistry()
        RunManifest.begin(str(tmp_path / "a"), "sweep", seed=1,
                          registry=registry)
        RunManifest.begin(str(tmp_path / "b"), "chaos", seed=2,
                          registry=registry)
        rows = registry.rows()
        assert [row["kind"] for row in rows] == ["sweep", "chaos"]
        json.dumps(rows)  # must not raise

    def test_directory_is_created_recursively(self, tmp_path):
        nested = str(tmp_path / "deep" / "run")
        RunManifest.begin(nested, "sweep", registry=None)
        assert os.path.exists(os.path.join(nested, "manifest.json"))


class TestGridHash(object):
    def test_stable_across_instances(self):
        axes = [("zone", ["a", "b"]), ("seed", [0, 1])]
        assert Grid(axes, root_seed=7).content_hash() == \
            Grid(axes, root_seed=7).content_hash()

    def test_sensitive_to_identity(self):
        base = Grid([("zone", ["a", "b"])], root_seed=7).content_hash()
        assert Grid([("zone", ["a", "b"])],
                    root_seed=8).content_hash() != base
        assert Grid([("zone", ["a", "c"])],
                    root_seed=7).content_hash() != base
        assert Grid([("zone", ["a", "b"])], root_seed=7,
                    namespace="other").content_hash() != base

    def test_short_hex_digest(self):
        digest = Grid([("zone", ["a"])], root_seed=0).content_hash()
        assert len(digest) == 16
        int(digest, 16)  # must be hex
