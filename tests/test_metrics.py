"""Savings metrics."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.metrics import (
    cost_savings_pct,
    cumulative_savings_pct,
    daily_savings_pct,
    max_daily_savings_pct,
    mean_std,
    summarize_savings,
)


class TestCostSavings(object):
    def test_basic(self):
        assert cost_savings_pct(100.0, 80.0) == pytest.approx(20.0)

    def test_negative_when_strategy_costs_more(self):
        assert cost_savings_pct(100.0, 120.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            cost_savings_pct(0.0, 10.0)

    def test_accepts_money(self):
        from repro.common.units import Money
        assert cost_savings_pct(Money(1.0), Money(0.9)) == pytest.approx(
            10.0)


class TestSeries(object):
    def test_daily_savings(self):
        savings = daily_savings_pct([10, 10], [9, 8])
        assert savings == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            daily_savings_pct([10], [9, 8])

    def test_cumulative(self):
        assert cumulative_savings_pct([10, 10], [9, 9]) == pytest.approx(
            10.0)

    def test_cumulative_differs_from_mean_daily(self):
        # Cumulative weights expensive days more heavily.
        baseline = [100, 1]
        strategy = [80, 1]
        cumulative = cumulative_savings_pct(baseline, strategy)
        per_day = daily_savings_pct(baseline, strategy)
        assert cumulative > sum(per_day) / 2

    def test_max_daily(self):
        assert max_daily_savings_pct([10, 10], [9, 5]) == pytest.approx(
            50.0)


class TestSummary(object):
    def test_summarize(self):
        daily = {
            "baseline": [10.0, 10.0],
            "retry": [9.0, 8.0],
        }
        summary = summarize_savings(daily)
        assert set(summary) == {"retry"}
        assert summary["retry"]["cumulative_pct"] == pytest.approx(15.0)
        assert summary["retry"]["max_daily_pct"] == pytest.approx(20.0)
        assert summary["retry"]["mean_daily_pct"] == pytest.approx(15.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_savings({"retry": [1.0]})


class TestMeanStd(object):
    def test_values(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0
        assert std == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_std([])
