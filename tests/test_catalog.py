"""The 41-region global catalog and its paper-mandated constraints."""

import pytest

from repro.common.errors import UnknownZoneError
from repro.cloudsim.catalog import (
    AWS_REGION_SPECS,
    DO_REGION_SPECS,
    EX3_ZONES,
    EX4_ZONES,
    IBM_REGION_SPECS,
    catalog_region_names,
    zone_spec,
)


class TestCatalogShape(object):
    def test_41_regions_total(self):
        assert len(catalog_region_names()) == 41

    def test_provider_split(self):
        assert len(catalog_region_names("aws")) == 33
        assert len(catalog_region_names("ibm")) == 4
        assert len(catalog_region_names("do")) == 4

    def test_region_names_unique(self):
        names = catalog_region_names()
        assert len(names) == len(set(names))

    def test_ex3_zones_exist(self):
        # The eleven progressive-sampling AZs of EX-3.
        assert len(EX3_ZONES) == 11
        for zone_id in EX3_ZONES:
            assert zone_spec(zone_id) is not None

    def test_ex4_zones_subset_of_ex3(self):
        assert len(EX4_ZONES) == 5
        assert set(EX4_ZONES) <= set(EX3_ZONES)

    def test_unknown_zone_spec(self):
        with pytest.raises(UnknownZoneError):
            zone_spec("mars-central-1a")


class TestPaperConstraints(object):
    def test_every_aws_zone_has_the_25ghz_xeon(self):
        # EX-2 observation (3): every region had the 2.5 GHz processor.
        for name, (_, _, zones) in AWS_REGION_SPECS.items():
            for spec in zones.values():
                assert "xeon-2.5" in spec.mix, name

    def test_only_af_south_lacks_the_30ghz_xeon(self):
        # EX-2 observation (4): all regions but af-south-1 host the 3.0 GHz
        # part (region-level: in at least one of their zones).
        missing = []
        for name, (_, _, zones) in AWS_REGION_SPECS.items():
            if not any("xeon-3.0" in spec.mix for spec in zones.values()):
                missing.append(name)
        assert missing == ["af-south-1"]

    def test_epyc_most_prevalent_in_il_central_1(self):
        # EX-2 observation (2).
        def epyc_share(region_name):
            _, _, zones = AWS_REGION_SPECS[region_name]
            return max(spec.mix.get("amd-epyc", 0.0)
                       for spec in zones.values())

        il_share = epyc_share("il-central-1")
        for name in AWS_REGION_SPECS:
            assert epyc_share(name) <= il_share

    def test_us_west_2_dominated_by_30ghz(self):
        # EX-2: "regions like us-west-2 ... the 3.0 GHz processor was most
        # prevalent."
        spec = zone_spec("us-west-2a")
        assert max(spec.mix, key=spec.mix.get) == "xeon-3.0"

    def test_us_east_2a_single_cpu(self):
        # EX-3: us-east-2a consistently returned 0 % error — all requests
        # on the 2.5 GHz Xeon exclusively.
        assert zone_spec("us-east-2a").mix == {"xeon-2.5": 1.0}

    def test_eu_north_much_smaller_than_eu_central(self):
        # EX-3: eu-north-1a fails after ~5k calls; eu-central-1a sustains
        # ten times that.
        ratio = (zone_spec("eu-central-1a").slots
                 / zone_spec("eu-north-1a").slots)
        assert 8 <= ratio <= 12

    def test_temporal_classes(self):
        # EX-4: stable vs volatile zones.
        for zone_id in ("sa-east-1a", "eu-north-1a"):
            assert zone_spec(zone_id).drift == "stable"
        for zone_id in ("ca-central-1a", "us-west-1a", "us-west-1b"):
            assert zone_spec(zone_id).drift == "volatile"

    def test_mixes_sum_to_one(self):
        for name, (_, _, zones) in AWS_REGION_SPECS.items():
            for suffix, spec in zones.items():
                assert sum(spec.mix.values()) == pytest.approx(1.0), (
                    name + suffix)

    def test_ibm_and_do_near_homogeneous(self):
        # EX-2: no exploitable heterogeneity outside AWS.
        for specs in (IBM_REGION_SPECS, DO_REGION_SPECS):
            for name, (_, _, spec) in specs.items():
                assert max(spec.mix.values()) >= 0.85, name


class TestBuiltCatalog(object):
    def test_full_build(self, catalog_cloud_readonly):
        assert len(catalog_cloud_readonly.regions) == 41

    def test_zone_index_spans_providers(self, catalog_cloud_readonly):
        cloud = catalog_cloud_readonly
        assert cloud.zone("us-east-2a").zone_id == "us-east-2a"
        assert cloud.zone("us-south").zone_id == "us-south"
        assert cloud.zone("nyc1").zone_id == "nyc1"

    def test_aws_only_build(self):
        from repro.cloudsim import build_global_catalog
        cloud = build_global_catalog(seed=0, aws_only=True)
        assert len(cloud.regions) == 33

    def test_zone_capacity_matches_spec_scale(self, catalog_cloud_readonly):
        zone = catalog_cloud_readonly.zone("eu-north-1a")
        spec = zone_spec("eu-north-1a")
        assert abs(zone.capacity - spec.slots) <= spec.slots * 0.3

    def test_subset_install(self):
        from repro.cloudsim.cloud import Cloud
        from repro.cloudsim.catalog import install_catalog
        cloud = Cloud(seed=0)
        install_catalog(cloud, regions={"us-west-1", "nyc1"})
        assert sorted(cloud.regions) == ["nyc1", "us-west-1"]

    def test_mesh_scale_matches_paper(self, catalog_cloud_readonly):
        # §3.3: the full AWS ladder (9 memory x 2 arch) across every zone
        # plus per-zone sampling sets exceeds 1,600 deployments.  Count the
        # deployable slots rather than deploying (read-only fixture).
        zones = catalog_cloud_readonly.zone_ids(provider="aws")
        ladder_deployments = len(zones) * 9 * 2
        sampling_deployments = 100 * len(EX3_ZONES)
        assert ladder_deployments + sampling_deployments > 1600
