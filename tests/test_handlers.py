"""Simulator handlers: sleep, modeled workloads, callables."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.handlers import (
    CallableHandler,
    ModeledWorkloadHandler,
    SleepHandler,
)


class TestSleepHandler(object):
    def test_duration_is_sleep_plus_overhead(self):
        handler = SleepHandler(0.25, overhead_s=1e-3)
        assert handler.duration_on("xeon-2.5", None) == pytest.approx(0.251)

    def test_cpu_independent(self):
        handler = SleepHandler(0.25)
        assert (handler.duration_on("xeon-2.5", None)
                == handler.duration_on("amd-epyc", None))

    def test_rejects_non_positive_sleep(self):
        with pytest.raises(ConfigurationError):
            SleepHandler(0)

    def test_respond(self):
        assert SleepHandler(0.1).respond("xeon-2.5")["cpu"] == "xeon-2.5"


class TestModeledWorkloadHandler(object):
    @pytest.fixture
    def handler(self):
        return ModeledWorkloadHandler(
            "wl", 10.0, {"fast": 0.9, "slow": 1.3}, noise_sigma=0.0)

    def test_mean_duration_uses_factor(self, handler):
        assert handler.mean_duration_on("fast") == pytest.approx(9.0)
        assert handler.mean_duration_on("slow") == pytest.approx(13.0)

    def test_duration_without_noise_equals_mean(self, handler):
        assert handler.duration_on(
            "fast", np.random.default_rng(0)) == pytest.approx(9.0)

    def test_noise_perturbs_duration(self):
        handler = ModeledWorkloadHandler("wl", 10.0, {"c": 1.0},
                                         noise_sigma=0.1)
        rng = np.random.default_rng(0)
        draws = {handler.duration_on("c", rng) for _ in range(5)}
        assert len(draws) == 5

    def test_noise_is_multiplicative_lognormal(self):
        handler = ModeledWorkloadHandler("wl", 10.0, {"c": 1.0},
                                         noise_sigma=0.05)
        rng = np.random.default_rng(1)
        draws = [handler.duration_on("c", rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.02)
        assert all(d > 0 for d in draws)

    def test_unknown_cpu_raises(self, handler):
        with pytest.raises(ConfigurationError):
            handler.duration_on("mystery", None)

    def test_default_factor_fallback(self):
        handler = ModeledWorkloadHandler("wl", 10.0, {"a": 1.0},
                                         noise_sigma=0.0,
                                         default_factor=2.0)
        assert handler.mean_duration_on("other") == pytest.approx(20.0)

    def test_rejects_non_positive_base(self):
        with pytest.raises(ConfigurationError):
            ModeledWorkloadHandler("wl", 0.0, {"a": 1.0})


class TestCallableHandler(object):
    def test_delegates_duration(self):
        handler = CallableHandler(lambda cpu, rng, payload: 3.0)
        assert handler.duration_on("any", None) == 3.0

    def test_respond_default_none(self):
        handler = CallableHandler(lambda cpu, rng, payload: 1.0)
        assert handler.respond("any") is None

    def test_respond_custom(self):
        handler = CallableHandler(lambda cpu, rng, payload: 1.0,
                                  respond_fn=lambda cpu, payload: {"c": cpu})
        assert handler.respond("x")["c"] == "x"
