"""The fault-injection subsystem: determinism, models, and wiring.

The contract under test: fault timelines are a pure function of
``(seed, schedule, per-zone request order)``; models scope to their zones
and windows; the simulator only pays for injection when an injector is
actually installed; and downstream layers (poller, obs) see faults the
way they document.
"""

import pytest

from repro.common.units import Money
from repro.common.errors import (
    ConfigurationError,
    QuotaExceededError,
    SaturationError,
    TransientFaultError,
)
from repro.faults import (
    Brownout,
    ColdStartStorm,
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    NetworkPartition,
    ThrottlingBurst,
    TransientFaults,
    ZoneOutage,
    build_preset,
)
from repro.faults.injector import NULL_INJECTOR
from repro.faults.schedule import PRESET_NAMES
from repro.obs import Observability
from repro.sampling import Poller
from repro.skymesh import SkyMesh
from tests.helpers import make_cloud


def make_rig(schedule=None, seed=7, fault_seed=5):
    """A one-region cloud with a deployment per zone, optionally faulted."""
    cloud = make_cloud(seed=seed)
    account = cloud.create_account("chaos", "aws")
    deployments = {
        zone: cloud.deploy(account, zone, "fn", 2048)
        for zone in ("test-1a", "test-1b")
    }
    injector = None
    if schedule is not None:
        injector = FaultInjector(schedule, seed=fault_seed).install(cloud)
    return cloud, account, deployments, injector


class TestWiring(object):
    def test_clouds_default_to_the_null_injector(self):
        cloud = make_cloud()
        assert cloud.faults is NULL_INJECTOR
        assert not cloud.faults.enabled

    def test_install_enables_and_returns_self(self):
        cloud = make_cloud()
        injector = FaultInjector([TransientFaults(rate=1.0)])
        assert injector.install(cloud) is injector
        assert cloud.faults is injector
        assert cloud.faults.enabled

    def test_plain_list_is_wrapped_into_a_schedule(self):
        injector = FaultInjector([TransientFaults(rate=0.5)])
        assert isinstance(injector.schedule, FaultSchedule)
        assert len(injector.schedule) == 1


class TestModels(object):
    def test_transient_faults_raise_at_rate_one(self):
        cloud, _, deployments, injector = make_rig(
            [TransientFaults(rate=1.0, zones=["test-1a"])])
        for _ in range(3):
            with pytest.raises(TransientFaultError):
                cloud.invoke(deployments["test-1a"])
        assert len(injector.timeline) == 3
        assert injector.fault_counts() == {("transient", "test-1a"): 3}

    def test_faults_respect_zone_scoping(self):
        cloud, _, deployments, _ = make_rig(
            [TransientFaults(rate=1.0, zones=["test-1a"])])
        # The other zone is untouched.
        invocation = cloud.invoke(deployments["test-1b"])
        assert invocation.latency_s > 0

    def test_faults_respect_their_window(self):
        cloud, _, deployments, _ = make_rig(
            [ThrottlingBurst(rate=1.0, zones=["test-1a"],
                             start=100.0, end=200.0)])
        cloud.invoke(deployments["test-1a"])  # t=0: before the window
        cloud.clock.advance_to(150.0)
        with pytest.raises(QuotaExceededError):
            cloud.invoke(deployments["test-1a"])
        cloud.clock.advance_to(250.0)
        cloud.invoke(deployments["test-1a"])  # after the window

    def test_zone_outage_fails_every_invocation(self):
        cloud, _, deployments, _ = make_rig(
            [ZoneOutage(zones=["test-1a"])])
        for _ in range(5):
            with pytest.raises(SaturationError):
                cloud.invoke(deployments["test-1a"])

    def test_latency_spike_adds_exactly_extra_s(self):
        # Two identically-seeded clouds; the spike must be the only
        # difference between their observed latencies.
        clean, _, clean_deps, _ = make_rig()
        faulty, _, faulty_deps, _ = make_rig(
            [LatencySpike(extra_s=0.5, zones=["test-1a"])])
        base = clean.invoke(clean_deps["test-1a"])
        spiked = faulty.invoke(faulty_deps["test-1a"])
        assert spiked.latency_s == pytest.approx(base.latency_s + 0.5)

    def test_cold_start_storm_forces_and_inflates_cold_starts(self):
        cloud, _, deployments, _ = make_rig(
            [ColdStartStorm(multiplier=4.0, zones=["test-1a"])])
        provider_cold = deployments["test-1a"].provider.cold_start_s
        first = cloud.invoke(deployments["test-1a"])
        # Immediately after, a warm FI exists — the storm must bypass it.
        second = cloud.invoke(deployments["test-1a"])
        assert not second.reused
        assert first.cold_start_s == pytest.approx(4.0 * provider_cold)
        assert second.cold_start_s == pytest.approx(4.0 * provider_cold)

    def test_partition_blocks_batched_placement(self):
        cloud, _, deployments, _ = make_rig(
            [NetworkPartition(zones=["test-1a"])])
        with pytest.raises(TransientFaultError):
            cloud.place_batch(deployments["test-1a"], 10, 0.25)

    def test_brownout_collapses_placement_capacity(self):
        cloud, _, _, _ = make_rig(
            [Brownout(failure_rate=0.0, capacity_factor=0.25,
                      zones=["test-1a"])])
        intact = make_rig()[0]
        zone, intact_zone = cloud.zone("test-1a"), intact.zone("test-1a")
        result = zone.place_batch("fill", 2000, duration=60.0, window=0.0)
        baseline = intact_zone.place_batch("fill", 2000, duration=60.0,
                                           window=0.0)
        assert 0 < result.served < baseline.served

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            TransientFaults(rate=1.5)
        with pytest.raises(ConfigurationError):
            Brownout(failure_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ColdStartStorm(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            LatencySpike(extra_s=-1.0)
        with pytest.raises(ConfigurationError):
            TransientFaults(start=10.0, end=10.0)


class TestDeterminism(object):
    SCHEDULE = [TransientFaults(rate=0.3, zones=["test-1a"]),
                ThrottlingBurst(rate=0.2, zones=["test-1a"],
                                start=10.0, end=40.0)]

    def drive(self, requests=60):
        cloud, _, deployments, injector = make_rig(self.SCHEDULE)
        observed = []
        for _ in range(requests):
            try:
                invocation = cloud.invoke(deployments["test-1a"])
            except Exception as error:
                observed.append(type(error).__name__)
            else:
                observed.append(round(invocation.latency_s, 9))
            cloud.clock.advance(1.0)
        timeline = [(f.kind, f.zone_id, f.timestamp, f.reason)
                    for f in injector.timeline]
        return observed, timeline

    def test_identical_seed_and_schedule_replay_identically(self):
        first_run, first_timeline = self.drive()
        second_run, second_timeline = self.drive()
        assert first_timeline == second_timeline
        assert first_run == second_run
        assert first_timeline  # the run actually injected something

    def test_different_injector_seed_diverges(self):
        _, timeline = self.drive()
        cloud, _, deployments, injector = make_rig(self.SCHEDULE,
                                                   fault_seed=99)
        for _ in range(60):
            try:
                cloud.invoke(deployments["test-1a"])
            except Exception:
                pass
            cloud.clock.advance(1.0)
        other = [(f.kind, f.zone_id, f.timestamp, f.reason)
                 for f in injector.timeline]
        assert other != timeline

    def test_per_zone_streams_are_independent(self):
        """Traffic in one zone must not perturb another zone's faults."""
        _, quiet_timeline = self.drive()
        cloud, _, deployments, injector = make_rig(self.SCHEDULE)
        for i in range(60):
            if i % 2 == 0:  # interleave unrelated test-1b traffic
                cloud.invoke(deployments["test-1b"])
            try:
                cloud.invoke(deployments["test-1a"])
            except Exception:
                pass
            cloud.clock.advance(1.0)
        noisy_timeline = [(f.kind, f.zone_id, f.timestamp, f.reason)
                          for f in injector.timeline]
        assert noisy_timeline == quiet_timeline


class TestPresets(object):
    def test_every_named_preset_builds(self):
        for name in PRESET_NAMES:
            schedule = build_preset(name, ["test-1a", "test-1b"])
            assert len(schedule) >= 1

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(ConfigurationError):
            build_preset("meteor-strike", ["test-1a"])

    def test_preset_targets_the_first_zone(self):
        schedule = build_preset("outage", ["test-1a", "test-1b"])
        for model in schedule:
            assert model.applies("test-1a", model.start)
            assert not model.applies("test-1b", model.start)


class TestDownstream(object):
    def test_poller_survives_persistent_partition(self):
        cloud, account, _, _ = make_rig(
            [NetworkPartition(zones=["test-1a"])])
        mesh = SkyMesh(cloud)
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=3)
        poller = Poller(cloud, endpoints, n_requests=50)
        observation = poller.poll()
        # The poll is recorded as all-failed, not raised.
        assert observation.served == 0
        assert observation.failed == 50
        assert observation.failure_rate == 1.0
        assert observation.cost == Money(0)

    def test_poller_retries_through_a_brief_partition(self):
        cloud, account, _, injector = make_rig(
            [NetworkPartition(zones=["test-1a"])])
        mesh = SkyMesh(cloud)
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=3)
        # Each attempt consults the schedule afresh; both first retries
        # hit the partition, so two injected faults land on the timeline
        # before the synthetic failure is recorded.
        poller = Poller(cloud, endpoints, n_requests=20,
                        transient_retries=1)
        poller.poll()
        assert len(injector.timeline) == 2

    def test_fault_events_reach_the_metrics_registry(self):
        cloud = make_cloud(seed=7)
        obs = Observability()
        obs.install(cloud)
        account = cloud.create_account("chaos", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 2048)
        FaultInjector([TransientFaults(rate=1.0, zones=["test-1a"])],
                      seed=5).install(cloud)
        for _ in range(4):
            with pytest.raises(TransientFaultError):
                cloud.invoke(deployment)
        counter = obs.registry.get("faults_injected_total",
                                   zone="test-1a", kind="transient")
        assert counter is not None
        assert counter.value == 4.0
        assert len(obs.recorder.events("fault.injected")) == 4
