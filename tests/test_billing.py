"""Billing models."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.cloudsim.billing import (
    AWS_LAMBDA_BILLING,
    BillingModel,
    DIGITAL_OCEAN_BILLING,
    IBM_CODE_ENGINE_BILLING,
    InvocationBill,
)


class TestBilledDuration(object):
    def test_rounds_up_to_granularity(self):
        assert AWS_LAMBDA_BILLING.billed_duration(0.0011) == pytest.approx(
            0.002)

    def test_exact_multiple_unchanged(self):
        assert AWS_LAMBDA_BILLING.billed_duration(0.250) == pytest.approx(
            0.250)

    def test_minimum_billed_duration(self):
        model = BillingModel({"x86_64": 1e-5}, min_billed_duration=0.1)
        assert model.billed_duration(0.01) == pytest.approx(0.1)


class TestBill(object):
    def test_aws_one_gb_second(self):
        bill = AWS_LAMBDA_BILLING.bill(1024, 1.0, "x86_64")
        assert bill.compute == Money(1.66667e-5)
        assert bill.request == Money(2e-7)
        assert bill.total == Money(1.66667e-5 + 2e-7)

    def test_arm_is_cheaper(self):
        x86 = AWS_LAMBDA_BILLING.bill(1024, 1.0, "x86_64")
        arm = AWS_LAMBDA_BILLING.bill(1024, 1.0, "arm64")
        assert arm.total < x86.total

    def test_batch_of_requests(self):
        one = AWS_LAMBDA_BILLING.bill(2048, 0.25, requests=1)
        thousand = AWS_LAMBDA_BILLING.bill(2048, 0.25, requests=1000)
        assert thousand.total == one.total * 1000

    def test_paper_poll_cost_under_two_cents(self):
        # EX-1/Figure 3: a 1,000-request poll at 2 GB and 0.25 s sleep
        # costs "less than two cents".
        bill = AWS_LAMBDA_BILLING.bill(2048, 0.251, requests=1000)
        assert bill.total < Money(0.02)

    def test_unknown_arch_raises(self):
        with pytest.raises(ConfigurationError):
            DIGITAL_OCEAN_BILLING.bill(512, 1.0, "arm64")

    def test_negative_requests_raises(self):
        with pytest.raises(ConfigurationError):
            AWS_LAMBDA_BILLING.bill(512, 1.0, requests=-1)

    def test_provider_rates_differ(self):
        aws = AWS_LAMBDA_BILLING.bill(1024, 1.0).total
        ibm = IBM_CODE_ENGINE_BILLING.bill(1024, 1.0).total
        do = DIGITAL_OCEAN_BILLING.bill(1024, 1.0).total
        assert len({float(aws), float(ibm), float(do)}) == 3


class TestInvocationBill(object):
    def test_addition(self):
        a = AWS_LAMBDA_BILLING.bill(1024, 1.0)
        b = AWS_LAMBDA_BILLING.bill(1024, 2.0)
        total = a + b
        assert total.requests == 2
        assert total.total == a.total + b.total

    def test_zero(self):
        zero = InvocationBill.zero()
        assert zero.total == Money(0)
        assert zero.requests == 0


class TestBillingProperties(object):
    @given(st.floats(min_value=1e-3, max_value=900),
           st.floats(min_value=1e-3, max_value=900))
    def test_monotonic_in_duration(self, d1, d2):
        low, high = sorted([d1, d2])
        assert (AWS_LAMBDA_BILLING.bill(1024, low).total
                <= AWS_LAMBDA_BILLING.bill(1024, high).total)

    @given(st.integers(min_value=128, max_value=10240))
    def test_monotonic_in_memory(self, memory):
        assert (AWS_LAMBDA_BILLING.bill(memory, 1.0).total
                <= AWS_LAMBDA_BILLING.bill(memory + 64, 1.0).total)

    @given(st.floats(min_value=1e-4, max_value=100))
    def test_billed_duration_never_less_than_raw(self, duration):
        assert (AWS_LAMBDA_BILLING.billed_duration(duration)
                >= duration - 1e-9)
