"""CPU characterizations and the builder."""

import pytest

from repro.common.errors import CharacterizationError
from repro.common.units import Money
from repro.sampling import CharacterizationBuilder, CPUCharacterization
from repro.common.distributions import CategoricalDistribution


def build(zone="z-1", counts=None, **kwargs):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts or {"a": 60, "b": 40}, cost=Money(0.01),
                     timestamp=kwargs.get("timestamp", 100.0))
    return builder.snapshot()


class TestBuilder(object):
    def test_accumulates_polls(self):
        builder = CharacterizationBuilder("z-1")
        builder.add_poll({"a": 10}, cost=Money(0.01), timestamp=1.0)
        builder.add_poll({"a": 5, "b": 5}, cost=Money(0.01), timestamp=2.0)
        snapshot = builder.snapshot()
        assert snapshot.samples == 20
        assert snapshot.polls == 2
        assert snapshot.share("a") == pytest.approx(0.75)
        assert snapshot.cost == Money(0.02)

    def test_passive_observations(self):
        builder = CharacterizationBuilder("z-1")
        for _ in range(3):
            builder.add_observation("a", timestamp=5.0)
        builder.add_observation("b", timestamp=6.0)
        snapshot = builder.snapshot()
        assert snapshot.samples == 4
        assert snapshot.polls == 0
        assert snapshot.share("a") == 0.75

    def test_empty_snapshot_raises(self):
        with pytest.raises(CharacterizationError):
            CharacterizationBuilder("z-1").snapshot()

    def test_created_at_is_last_observation(self):
        builder = CharacterizationBuilder("z-1")
        builder.add_poll({"a": 1}, timestamp=10.0)
        builder.add_poll({"a": 1}, timestamp=20.0)
        assert builder.snapshot().created_at == 20.0

    def test_snapshot_is_frozen(self):
        builder = CharacterizationBuilder("z-1")
        builder.add_poll({"a": 1}, timestamp=1.0)
        first = builder.snapshot()
        builder.add_poll({"b": 1}, timestamp=2.0)
        assert first.cpu_keys() == ["a"]


class TestCharacterization(object):
    def test_empty_distribution_rejected(self):
        with pytest.raises(CharacterizationError):
            CPUCharacterization("z", CategoricalDistribution({}), 0, 0,
                                Money(0), 0.0)

    def test_dominant_cpu(self):
        assert build().dominant_cpu() == "a"

    def test_age(self):
        profile = build(timestamp=100.0)
        assert profile.age_at(160.0) == 60.0
        assert profile.age_at(50.0) == 0.0

    def test_ape_to_characterization(self):
        left = build(counts={"a": 60, "b": 40})
        right = build(counts={"a": 50, "b": 50})
        assert left.ape_to(right) == pytest.approx(20.0)

    def test_ape_to_raw_distribution(self):
        left = build(counts={"a": 60, "b": 40})
        dist = CategoricalDistribution({"a": 6, "b": 4})
        assert left.ape_to(dist) == pytest.approx(0.0)

    def test_accuracy_complement(self):
        left = build(counts={"a": 60, "b": 40})
        right = build(counts={"a": 50, "b": 50})
        assert left.accuracy_to(right) == pytest.approx(80.0)

    def test_shares_and_keys(self):
        profile = build(counts={"a": 3, "b": 1})
        assert profile.cpu_keys() == ["a", "b"]
        assert profile.shares()["b"] == 0.25
