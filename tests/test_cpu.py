"""The CPU catalog."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.cpu import (
    AWS_X86_CPUS,
    CPU_CATALOG,
    cpu_by_key,
    cpu_by_model_name,
    fastest_cpu,
    slowest_cpus,
)


class TestCatalog(object):
    def test_paper_cpus_present(self):
        # EX-2: four Lambda CPUs, two IBM Cascade Lakes, two DO Xeons.
        for key in ("xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc",
                    "cascadelake-2.4", "cascadelake-2.5",
                    "do-xeon-2.6", "do-xeon-2.7"):
            assert key in CPU_CATALOG

    def test_lookup_by_key(self):
        cpu = cpu_by_key("xeon-2.5")
        assert cpu.clock_ghz == 2.5
        assert cpu.vendor == "Intel"

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigurationError):
            cpu_by_key("pentium-66mhz")

    def test_lookup_by_model_name(self):
        cpu = cpu_by_model_name("AMD EPYC")
        assert cpu.key == "amd-epyc"

    def test_unknown_model_name_raises(self):
        with pytest.raises(ConfigurationError):
            cpu_by_model_name("Transmeta Crusoe")

    def test_model_names_unique(self):
        names = [cpu.model_name for cpu in CPU_CATALOG.values()]
        assert len(names) == len(set(names))

    def test_equality_and_hash(self):
        assert cpu_by_key("xeon-2.5") == cpu_by_key("xeon-2.5")
        assert len({cpu_by_key("xeon-2.5"), cpu_by_key("xeon-2.5")}) == 1


class TestSpeedHierarchy(object):
    def test_paper_hierarchy(self):
        # 3.0 GHz fastest; EPYC slowest; 2.9 GHz slower than 2.5 baseline.
        speeds = {key: cpu_by_key(key).base_speed for key in AWS_X86_CPUS}
        assert speeds["xeon-3.0"] > speeds["xeon-2.5"]
        assert speeds["xeon-2.9"] < speeds["xeon-2.5"]
        assert speeds["amd-epyc"] == min(speeds.values())

    def test_fastest_cpu(self):
        assert fastest_cpu(AWS_X86_CPUS) == "xeon-3.0"

    def test_fastest_with_custom_speed(self):
        assert fastest_cpu(["a", "b"],
                           speed_of={"a": 2, "b": 5}.get) == "b"

    def test_fastest_of_empty_raises(self):
        with pytest.raises(ConfigurationError):
            fastest_cpu([])

    def test_slowest_cpus(self):
        slowest = slowest_cpus(AWS_X86_CPUS, 2)
        assert slowest == ["amd-epyc", "xeon-2.9"]

    def test_slowest_order_is_slowest_first(self):
        assert slowest_cpus(AWS_X86_CPUS, 4)[0] == "amd-epyc"
