"""Shared construction helpers for the test suite."""

from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
from repro.cloudsim.cloud import Cloud
from repro.cloudsim.host import HostPool
from repro.cloudsim.network import GeoPoint
from repro.cloudsim.provider import provider_by_name
from repro.cloudsim.region import Region
from repro.simclock import SimClock


def make_zone(zone_id="test-1a", clock=None, pools=None, seed=0,
              keepalive=300.0, scaling=None):
    """A small standalone zone: 2 CPU pools, 1,024 slots total."""
    clock = clock or SimClock()
    if pools is None:
        pools = [
            HostPool("xeon-2.5", hosts=12, slots_per_host=64),
            HostPool("xeon-3.0", hosts=4, slots_per_host=64),
        ]
    scaling = scaling or ScalingPolicy(max_surge_slots=128)
    return AvailabilityZone(zone_id, pools, clock, keepalive=keepalive,
                            scaling=scaling, rng=seed)


def make_cloud(seed=0, zones=None, region_name="test-1", provider="aws",
               geo=(47.6, -122.3)):
    """A one-region cloud with deterministic (drift-free) zones.

    ``zones`` maps zone_id -> list of HostPool (defaults: two zones with
    contrasting CPU mixes, handy for routing tests).
    """
    cloud = Cloud(seed=seed)
    provider_config = provider_by_name(provider)
    region = Region(region_name, provider_config, GeoPoint(*geo))
    if zones is None:
        zones = {
            region_name + "a": [
                HostPool("xeon-2.5", hosts=10, slots_per_host=64),
                HostPool("xeon-2.9", hosts=6, slots_per_host=64),
            ],
            region_name + "b": [
                HostPool("xeon-2.5", hosts=6, slots_per_host=64),
                HostPool("xeon-3.0", hosts=10, slots_per_host=64),
            ],
        }
    for zone_id, pools in sorted(zones.items()):
        region.add_zone(AvailabilityZone(
            zone_id, pools, cloud.clock,
            keepalive=provider_config.keepalive,
            scaling=ScalingPolicy(max_surge_slots=128), rng=seed))
    cloud.add_region(region)
    return cloud


def drain_zone(zone, deployment="filler", fraction=1.0, duration=1.0):
    """Fill ``fraction`` of a zone's free capacity with busy FIs."""
    target = int(zone.free_slots() * fraction)
    if target <= 0:
        return 0
    result = zone.place_batch(deployment, target, duration=duration,
                              window=0.0)
    return result.unique_fis
