"""The in-FI dynamic-function runtime: real exec with caching."""

import pytest

from repro.common.errors import PayloadError
from repro.dynfunc import DynamicFunctionRuntime, build_payload

ADDER = """
def handler(event, context):
    return event["a"] + event["b"]
"""

FILE_READER = """
def handler(event, context):
    return sorted(__dynamic_files__)
"""

CONTEXT_ECHO = """
def handler(event, context):
    return context
"""


@pytest.fixture
def runtime():
    return DynamicFunctionRuntime()


class TestExecution(object):
    def test_executes_entry_point(self, runtime):
        payload = build_payload(ADDER, args={"a": 2, "b": 3})
        result = runtime.handle(payload)
        assert result.value == 5

    def test_passes_context(self, runtime):
        payload = build_payload(CONTEXT_ECHO)
        result = runtime.handle(payload, context={"request_id": "r-1"})
        assert result.value == {"request_id": "r-1"}

    def test_files_exposed_to_handler(self, runtime):
        payload = build_payload(FILE_READER, files={"a.txt": b"x",
                                                    "b.txt": b"y"})
        result = runtime.handle(payload)
        assert result.value == ["a.txt", "b.txt"]

    def test_handles_wire_dict(self, runtime):
        payload = build_payload(ADDER, args={"a": 1, "b": 1}).to_dict()
        assert runtime.handle(payload).value == 2

    def test_missing_entry_raises(self, runtime):
        payload = build_payload("x = 1", args=None)
        with pytest.raises(PayloadError):
            runtime.handle(payload)

    def test_broken_source_raises(self, runtime):
        payload = build_payload("def handler(:\n  pass")
        with pytest.raises(PayloadError):
            runtime.handle(payload)

    def test_custom_entry_point(self, runtime):
        source = "def my_main(event, context):\n    return 'ok'\n"
        payload = build_payload(source, entry="my_main")
        assert runtime.handle(payload).value == "ok"


class TestCaching(object):
    def test_second_request_hits_cache(self, runtime):
        payload = build_payload(ADDER, args={"a": 1, "b": 1})
        first = runtime.handle(payload)
        second = runtime.handle(payload)
        assert not first.cached
        assert second.cached

    def test_different_payloads_cached_separately(self, runtime):
        first = build_payload(ADDER, args={"a": 1, "b": 1})
        second = build_payload(ADDER + "# v2", args={"a": 1, "b": 1})
        runtime.handle(first)
        result = runtime.handle(second)
        assert not result.cached
        assert runtime.cached_payloads == 2

    def test_cache_eviction_under_pressure(self):
        runtime = DynamicFunctionRuntime(ephemeral_limit_bytes=200)
        for version in range(5):
            payload = build_payload(ADDER + "# v{}\n".format(version) * 10,
                                    args={"a": 1, "b": 1})
            runtime.handle(payload)
        assert runtime.cached_payloads < 5

    def test_execution_times_measured(self, runtime):
        payload = build_payload(ADDER, args={"a": 1, "b": 1})
        result = runtime.handle(payload)
        assert result.decode_seconds >= 0
        assert result.execute_seconds >= 0
