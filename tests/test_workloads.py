"""The twelve Table-1 workloads: real execution and runtime profiles."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import (
    WORKLOAD_NAMES,
    all_workloads,
    workload_by_name,
)
from repro.workloads.profiles import (
    BASELINE_CPU,
    cpu_factor,
    factors_for,
    normalized_performance_table,
    profiled_workload_names,
)


class TestRegistry(object):
    def test_twelve_workloads(self):
        assert len(WORKLOAD_NAMES) == 12

    def test_table1_names(self):
        expected = {
            "graph_mst", "graph_bfs", "pagerank", "disk_writer",
            "disk_write_and_process", "zipper", "thumbnailer", "sha1_hash",
            "json_flattener", "math_service", "matrix_multiply",
            "logistic_regression",
        }
        assert set(WORKLOAD_NAMES) == expected

    def test_lookup(self):
        assert workload_by_name("zipper").name == "zipper"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            workload_by_name("bitcoin_miner")

    def test_table1_vcpus(self):
        # Table 1's parallelism column.
        assert workload_by_name("zipper").vcpus == 2
        assert workload_by_name("pagerank").vcpus == pytest.approx(1.2)
        assert workload_by_name("logistic_regression").vcpus == 2
        assert workload_by_name("sha1_hash").vcpus == 1

    def test_every_workload_has_description(self):
        for workload in all_workloads():
            assert workload.description


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestExecution(object):
    def test_runs_end_to_end(self, name):
        workload = workload_by_name(name)
        summary = workload.execute(np.random.default_rng(0), scale=0.1)
        assert isinstance(summary, dict)
        assert summary

    def test_deterministic_given_seed(self, name):
        if name in ("logistic_regression", "zipper"):
            pytest.skip("genuinely multi-threaded: output order can vary")
        workload = workload_by_name(name)
        first = workload.execute(np.random.default_rng(7), scale=0.1)
        second = workload.execute(np.random.default_rng(7), scale=0.1)
        assert first == second

    def test_payload_runs_in_dynamic_runtime(self, name):
        from repro.dynfunc import DynamicFunctionRuntime
        workload = workload_by_name(name)
        runtime = DynamicFunctionRuntime()
        result = runtime.handle(
            workload.payload(args={"seed": 3, "scale": 0.05}))
        assert result.value["workload"] == name
        assert result.value["summary"]


class TestWorkloadOutputs(object):
    def test_mst_weight_not_more_than_graph(self):
        workload = workload_by_name("graph_mst")
        graph = workload.generate_input(np.random.default_rng(0), scale=0.2)
        mst = workload.run(graph)
        assert mst.number_of_edges() == graph.number_of_nodes() - 1

    def test_bfs_visits_connected_graph_fully(self):
        workload = workload_by_name("graph_bfs")
        graph = workload.generate_input(np.random.default_rng(0), scale=0.2)
        depths = workload.run(graph)
        assert len(depths) == graph.number_of_nodes()

    def test_pagerank_sums_to_one(self):
        workload = workload_by_name("pagerank")
        ranks = workload.run(
            workload.generate_input(np.random.default_rng(0), scale=0.2))
        assert float(ranks.sum()) == pytest.approx(1.0)

    def test_sha1_is_valid_hex(self):
        workload = workload_by_name("sha1_hash")
        digest = workload.run(
            workload.generate_input(np.random.default_rng(0), scale=0.05))
        assert len(digest) == 40
        int(digest, 16)

    def test_json_flattener_pairs_are_scalars(self):
        workload = workload_by_name("json_flattener")
        flat = workload.run(
            workload.generate_input(np.random.default_rng(0), scale=0.4))
        assert flat
        for value in flat.values():
            assert not isinstance(value, (dict, list))

    def test_thumbnailer_shapes(self):
        workload = workload_by_name("thumbnailer")
        thumbs = workload.run(
            workload.generate_input(np.random.default_rng(0), scale=0.2))
        shapes = {f: t.shape for f, t in thumbs.items()}
        assert shapes[2][0] == 2 * shapes[4][0]

    def test_zipper_compresses_tiled_content(self):
        workload = workload_by_name("zipper")
        files = workload.generate_input(np.random.default_rng(0), scale=0.2)
        archives = workload.run(files)
        total_in = sum(len(v) for v in files.values())
        total_out = sum(len(a) for a in archives)
        assert total_out < total_in  # tiled halves compress well

    def test_logistic_regression_learns(self):
        workload = workload_by_name("logistic_regression")
        output = workload.run(
            workload.generate_input(np.random.default_rng(0), scale=0.5))
        assert output["accuracy"] > 0.7


class TestProfiles(object):
    def test_all_twelve_profiled(self):
        assert set(profiled_workload_names()) == set(WORKLOAD_NAMES)

    def test_baseline_factor_is_one(self):
        for name in WORKLOAD_NAMES:
            assert cpu_factor(name, BASELINE_CPU) == 1.0

    def test_30ghz_faster_for_all_workloads(self):
        # Figure 9: the 3.0 GHz Xeon consistently delivers the fastest
        # runtimes (5-15 % improvement).
        for name in WORKLOAD_NAMES:
            factor = cpu_factor(name, "xeon-3.0")
            assert 0.85 <= factor <= 0.97, name

    def test_29ghz_slower_than_baseline(self):
        for name in WORKLOAD_NAMES:
            assert cpu_factor(name, "xeon-2.9") > 1.0, name

    def test_epyc_slowest_for_compute_bound(self):
        # Figure 9: EPYC up to 50 % slower for logistic_regression and
        # math_service.
        assert cpu_factor("logistic_regression", "amd-epyc") == pytest.approx(
            1.5, abs=0.05)
        assert cpu_factor("math_service", "amd-epyc") >= 1.4

    def test_disk_writer_epyc_exception(self):
        # Figure 9: "the AMD EPYC processor slightly outperformed the
        # baseline for disk_writer."
        assert cpu_factor("disk_writer", "amd-epyc") < 1.0

    def test_io_bound_deviators_less_sensitive(self):
        # disk_write_and_process and sha1_hash deviate from the trend.
        for name in ("disk_write_and_process", "sha1_hash"):
            assert cpu_factor(name, "amd-epyc") < 1.1, name

    def test_factors_cover_whole_catalog(self):
        from repro.cloudsim.cpu import CPU_CATALOG
        factors = factors_for("zipper")
        assert set(CPU_CATALOG) <= set(factors)

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigurationError):
            factors_for("quantum_annealer")

    def test_normalized_table_shape(self):
        table = normalized_performance_table()
        assert len(table) == 12
        for row in table.values():
            assert set(row) == {"xeon-2.5", "xeon-2.9", "xeon-3.0",
                                "amd-epyc"}

    def test_runtime_model_reflects_profile(self):
        workload = workload_by_name("matrix_multiply")
        model = workload.runtime_model()
        assert model.mean_duration_on("xeon-3.0") < model.mean_duration_on(
            "xeon-2.5")
