"""Failure injection: how the stack behaves when things go wrong.

These tests drive the sampling and routing layers into the failure modes a
real deployment hits — saturated zones, throttled accounts, stale or
missing characterizations, exhausted retry budgets — and check that each
layer degrades the way it documents.
"""

import pytest

from repro.common.errors import (
    CharacterizationError,
    ConfigurationError,
    SaturationError,
)
from repro.common.units import DAYS, Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RegionalPolicy,
    RetryEngine,
    RetryPolicy,
    SmartRouter,
    WorkloadRunner,
)
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder, SamplingCampaign
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import drain_zone, make_cloud


def put_profile(store, zone, counts, timestamp=0.0):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=timestamp)
    store.put(builder.snapshot())


@pytest.fixture
def rig():
    cloud = make_cloud(seed=101)
    account = cloud.create_account("rig", "aws")
    mesh = SkyMesh(cloud)
    for zone in ("test-1a", "test-1b"):
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    return cloud, account, mesh


class TestSaturatedZones(object):
    def test_router_surfaces_saturation(self, rig):
        cloud, account, mesh = rig
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        router = SmartRouter(cloud, mesh, store, BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"), ["test-1a"])
        with pytest.raises(SaturationError):
            router.route()

    def test_batched_burst_raises_on_dead_zone(self, rig):
        cloud, account, mesh = rig
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        runner = WorkloadRunner(cloud)
        with pytest.raises(Exception):
            runner.profile_workload(mesh.endpoint("test-1a", 2048),
                                    workload_by_name("sha1_hash"), 100)

    def test_campaign_handles_immediately_saturated_zone(self, rig):
        cloud, account, mesh = rig
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=5)
        result = SamplingCampaign(cloud, endpoints, n_requests=100).run()
        assert result.saturated
        assert result.polls_run == 1
        # Nothing was observed, so there is no ground truth to build.
        with pytest.raises(CharacterizationError):
            result.ground_truth()

    def test_retry_engine_saturation_mid_retry(self, rig):
        cloud, account, mesh = rig
        zone = cloud.zone("test-1a")
        drain_zone(zone, fraction=0.995, duration=600.0)
        engine = RetryEngine(cloud)
        deployment = mesh.endpoint("test-1a", 2048)
        policy = RetryPolicy(["xeon-2.5", "xeon-2.9"], max_retries=50)
        # Each retry forces a new FI; the zone runs out before the budget
        # does.  The engine surfaces the platform error as a structured
        # failed outcome — attempts and hold cost are not lost in a raise.
        failed = None
        for _ in range(30):
            outcome = engine.invoke(deployment, policy,
                                    payload=workload_by_name(
                                        "sha1_hash").payload())
            if outcome.failed:
                failed = outcome
                break
        assert failed is not None
        assert not failed.executed
        assert failed.final is None
        assert failed.cpu_key is None
        assert isinstance(failed.error, SaturationError)
        assert failed.error.reason == "no_capacity"


class TestThrottling(object):
    def test_oversized_poll_is_clipped_not_crashed(self, rig):
        cloud, account, mesh = rig
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=1)
        result, _ = cloud.poll(endpoints[0], n_requests=5000)
        assert result.requested == account.concurrency_quota
        assert account.throttled_requests == 4000


class TestStaleAndMissingProfiles(object):
    def test_regional_policy_without_any_profiles(self, rig):
        cloud, account, mesh = rig
        store = CharacterizationStore()
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        with pytest.raises(CharacterizationError):
            router.route()

    def test_hybrid_policy_without_any_profiles(self, rig):
        cloud, account, mesh = rig
        router = SmartRouter(cloud, mesh, CharacterizationStore(),
                             HybridPolicy(), workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        with pytest.raises(ConfigurationError):
            router.route()

    def test_stale_profiles_drop_out_of_the_view(self, rig):
        cloud, account, mesh = rig
        store = CharacterizationStore(staleness_limit=1 * DAYS)
        put_profile(store, "test-1a", {"xeon-2.5": 10}, timestamp=0.0)
        put_profile(store, "test-1b", {"xeon-3.0": 10},
                    timestamp=2 * DAYS)
        cloud.clock.advance_to(2.5 * DAYS)
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("sha1_hash"),
                             ["test-1a", "test-1b"])
        # Only the fresh zone remains routable.
        assert router.route().zone_id == "test-1b"

    def test_partial_profiles_restrict_regional_choice(self, rig):
        cloud, account, mesh = rig
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("matrix_multiply"),
                             ["test-1a", "test-1b"])
        # test-1b would win on hardware but has no profile: the router
        # must not route blind.
        assert router.route().zone_id == "test-1a"


class TestRetryBudgetExhaustion(object):
    def test_impossible_ban_still_completes_work(self, rig):
        cloud, account, mesh = rig
        engine = RetryEngine(cloud)
        deployment = mesh.endpoint("test-1b", 2048)
        policy = RetryPolicy(["xeon-2.5", "xeon-3.0"], max_retries=2)
        outcome = engine.invoke(
            deployment, policy,
            payload=workload_by_name("sha1_hash").payload())
        assert outcome.executed
        assert outcome.retries == 2
        assert outcome.final.runtime_s > 1.0

    def test_zero_retry_budget_means_single_attempt(self, rig):
        cloud, account, mesh = rig
        engine = RetryEngine(cloud)
        deployment = mesh.endpoint("test-1b", 2048)
        policy = RetryPolicy(["xeon-2.5"], max_retries=0)
        outcome = engine.invoke(
            deployment, policy,
            payload=workload_by_name("sha1_hash").payload())
        assert outcome.retries == 0
        assert outcome.executed
