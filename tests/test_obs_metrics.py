"""The metrics registry: counters, gauges, histogram quantiles."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile,
)


class TestQuantile(object):
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(7)
        values = sorted(rng.normal(10.0, 3.0, size=501).tolist())
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert quantile(values, q) == pytest.approx(
                float(np.quantile(values, q)), rel=1e-12)

    def test_single_value(self):
        assert quantile([3.0], 0.95) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)


class TestCounterGauge(object):
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == 7.0


class TestHistogram(object):
    def test_quantiles_exact_vs_numpy_within_reservoir(self):
        """While count <= reservoir_size, quantiles are exact."""
        rng = np.random.default_rng(42)
        values = rng.lognormal(0.0, 0.5, size=800).tolist()
        histogram = Histogram(reservoir_size=1024)
        for value in values:
            histogram.observe(value)
        for q, attr in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            assert getattr(histogram, attr) == pytest.approx(
                float(np.quantile(values, q)), rel=1e-12)

    def test_quantiles_approximate_beyond_reservoir(self):
        rng = np.random.default_rng(3)
        values = rng.normal(100.0, 10.0, size=20000).tolist()
        histogram = Histogram(reservoir_size=1024)
        for value in values:
            histogram.observe(value)
        assert histogram.count == 20000
        # Reservoir sampling keeps the estimate near ground truth.
        assert histogram.p50 == pytest.approx(
            float(np.quantile(values, 0.5)), rel=0.02)
        assert histogram.p95 == pytest.approx(
            float(np.quantile(values, 0.95)), rel=0.02)

    def test_count_sum_mean_min_max(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        buckets = histogram.cumulative_buckets()
        assert buckets == [(0.1, 1), (1.0, 2), (10.0, 3), ("+Inf", 4)]

    def test_boundary_value_counts_as_le(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.cumulative_buckets()[0] == (1.0, 1)

    def test_empty_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram().quantile(0.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(2.0, 1.0))

    def test_deterministic_reservoir(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0.0, 1.0, size=5000).tolist()
        first, second = Histogram(reservoir_size=64), \
            Histogram(reservoir_size=64)
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.p95 == second.p95


class TestMetricsRegistry(object):
    def test_children_keyed_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("requests", zone="a").inc()
        registry.counter("requests", zone="a").inc()
        registry.counter("requests", zone="b").inc()
        assert registry.get("requests", zone="a").value == 2.0
        assert registry.get("requests", zone="b").value == 1.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", zone="a", cpu="c").inc()
        assert registry.get("x", cpu="c", zone="a").value == 1.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", zone="a")
        with pytest.raises(ConfigurationError):
            registry.gauge("x", zone="a")

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("nope", zone="a") is None
        assert len(registry) == 0

    def test_collect_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b_total", zone="z").inc()
        registry.gauge("a_gauge").set(5)
        registry.histogram("lat", zone="z").observe(1.0)
        collected = [(name, kind, labels)
                     for name, kind, labels, _ in registry.collect()]
        assert collected == [
            ("a_gauge", "gauge", {}),
            ("b_total", "counter", {"zone": "z"}),
            ("lat", "histogram", {"zone": "z"}),
        ]

    def test_labels_of(self):
        registry = MetricsRegistry()
        registry.counter("x", zone="a").inc()
        registry.counter("x", zone="b").inc()
        assert registry.labels_of("x") == [{"zone": "a"}, {"zone": "b"}]

    def test_unknown_kind_lookup_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().kind("missing")
