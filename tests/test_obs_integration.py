"""Observability wired through the stack: cloudsim, sampling, routing."""

import pytest

from repro.common.errors import SaturationError
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    SkyController,
    SmartRouter,
)
from repro.core.telemetry import RoutingTelemetry
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.obs import NULL_BUS, Observability
from repro.sampling import CharacterizationBuilder, SamplingCampaign
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import drain_zone, make_cloud


def make_routed_rig(obs=None, policy=None, zone="test-1a", seed=77):
    cloud = make_cloud(seed=seed)
    if obs is not None:
        obs.install(cloud)
    account = cloud.create_account("obs", "aws")
    mesh = SkyMesh(cloud)
    mesh.register(cloud.deploy(
        account, zone, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    builder = CharacterizationBuilder(zone)
    builder.add_poll({"xeon-2.5": 10, "xeon-2.9": 6})
    store.put(builder.snapshot())
    router = SmartRouter(cloud, mesh, store,
                         policy or BaselinePolicy(zone),
                         workload_by_name("sha1_hash"), [zone], obs=obs)
    return cloud, account, mesh, router


class TestCloudsimHooks(object):
    def test_invoke_emits_and_bridges_to_metrics(self):
        obs = Observability()
        cloud, _, _, router = make_routed_rig(obs)
        for _ in range(10):
            router.route()
        assert obs.recorder.count("cloud.invoke") == 10
        assert obs.recorder.count("host.allocate") >= 1
        invoked = sum(
            obs.registry.get("invocations_total", **labels).value
            for labels in obs.registry.labels_of("invocations_total"))
        assert invoked == 10
        summary = obs.zone_latency_summary()
        assert summary["test-1a"]["requests"] == 10
        assert summary["test-1a"]["p95_latency_s"] > 0

    def test_placement_and_saturation_events(self):
        obs = Observability()
        cloud = make_cloud(seed=3)
        obs.install(cloud)
        zone = cloud.zone("test-1a")
        drain_zone(zone, fraction=1.0)
        result = zone.place_batch("overflow", 200, duration=1.0, window=0.0)
        assert result.failed > 0
        assert obs.recorder.count("az.placement") >= 2
        assert obs.recorder.count("az.saturation") == 1
        saturation = obs.recorder.events("az.saturation")[0]
        assert saturation.fields["zone"] == "test-1a"
        assert saturation.fields["failed"] == result.failed
        assert obs.registry.get("saturation_events_total",
                                zone="test-1a").value == 1.0

    def test_invoke_one_saturation_emits(self):
        obs = Observability()
        cloud = make_cloud(seed=5)
        obs.install(cloud)
        zone = cloud.zone("test-1a")
        drain_zone(zone, fraction=1.0)
        with pytest.raises(SaturationError):
            zone.invoke_one("nobody", lambda cpu: 1.0)
        events = obs.recorder.events("az.saturation")
        assert events and events[-1].fields["kind"] == "invoke"

    def test_slot_expiry_emits_churn(self):
        obs = Observability()
        cloud = make_cloud(seed=9)
        obs.install(cloud)
        zone = cloud.zone("test-1a")
        zone.place_batch("dep", 50, duration=1.0, window=0.0)
        cloud.clock.advance(3600.0)
        assert zone.occupied() == 0
        expired = obs.recorder.events("host.expire")
        assert sum(event.fields["released"] for event in expired) == 50

    def test_zones_added_after_attach_inherit_bus(self):
        obs = Observability()
        cloud = make_cloud(seed=11)
        obs.install(cloud)
        # Both preexisting zones got the bus.
        for zone_id in ("test-1a", "test-1b"):
            assert cloud.zone(zone_id)._bus is obs.bus


class TestSamplingHooks(object):
    def test_campaign_emits_polls_and_summary(self):
        obs = Observability()
        cloud = make_cloud(seed=21)
        obs.install(cloud)
        account = cloud.create_account("sampler", "aws")
        mesh = SkyMesh(cloud)
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=3)
        campaign = SamplingCampaign(cloud, endpoints, n_requests=200,
                                    max_polls=3)
        result = campaign.run()
        assert obs.recorder.count("sampling.poll") == result.polls_run
        assert obs.recorder.count("sampling.campaign") == 1
        summary = obs.recorder.events("sampling.campaign")[0]
        assert summary.fields["cost_usd"] == pytest.approx(
            float(result.total_cost))
        assert obs.registry.get("polls_total", zone="test-1a").value \
            == result.polls_run


class TestRoutingHooks(object):
    def test_route_produces_complete_multi_span_trace(self):
        obs = Observability()
        cloud, _, _, router = make_routed_rig(obs)
        router.route()
        trace = obs.tracer.last_trace()
        assert trace is not None and trace.complete
        names = [span.name for span in trace.spans]
        assert names[0] == "request"
        assert "decide" in names and "dispatch" in names
        assert "billing" in names
        assert len(trace.spans) >= 4
        # Spans carry sim-clock timestamps, not wall time.
        assert trace.root.start == pytest.approx(cloud.clock.now)

    def test_retry_attempts_traced_and_counted(self):
        obs = Observability()
        cloud, _, _, router = make_routed_rig(
            obs, policy=RetryRoutingPolicy("test-1a", "focus_fastest"),
            seed=101)
        routed = [router.route() for _ in range(25)]
        retries = sum(request.retries for request in routed)
        assert retries > 0  # focus_fastest on a mixed zone must retry
        assert obs.recorder.count("retry.attempt") == retries
        trace_names = [span.name
                       for trace in obs.tracer.traces()
                       for span in trace.spans]
        assert "placement" in trace_names

    def test_telemetry_recorded_via_router(self):
        telemetry = RoutingTelemetry()
        cloud = make_cloud(seed=31)
        account = cloud.create_account("obs", "aws")
        mesh = SkyMesh(cloud)
        mesh.register(cloud.deploy(
            account, "test-1a", "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
        store = CharacterizationStore()
        builder = CharacterizationBuilder("test-1a")
        builder.add_poll({"xeon-2.5": 10})
        store.put(builder.snapshot())
        router = SmartRouter(cloud, mesh, store, BaselinePolicy("test-1a"),
                             workload_by_name("sha1_hash"), ["test-1a"],
                             telemetry=telemetry)
        cloud.clock.advance(123.0)
        router.route()
        assert len(telemetry) == 1
        record = telemetry.records()[0]
        assert record.timestamp == pytest.approx(123.0)
        assert record.workload == "sha1_hash"
        assert record.policy == "baseline"


class TestControllerIntegration(object):
    def test_controller_opt_in_wires_everything(self):
        obs = Observability()
        cloud = make_cloud(seed=55)
        account = cloud.create_account("ctrl", "aws")
        controller = SkyController(
            cloud, account, ["test-1a", "test-1b"], polls_per_refresh=2,
            poll_requests=150, sampling_count=2, obs=obs)
        workload = workload_by_name("sha1_hash")
        for _ in range(5):
            controller.submit(workload)
        assert cloud.bus is obs.bus
        assert obs.recorder.count("controller.refresh") == 2
        assert obs.recorder.count("controller.staleness") >= 1
        assert obs.recorder.count("sampling.poll") >= 2
        # Telemetry rides along with real sim-clock timestamps.
        assert len(controller.telemetry) == 5
        assert all(record.timestamp > 0
                   for record in controller.telemetry.records())
        stats = controller.telemetry.by_zone()
        assert all("p95_latency_s" in bucket for bucket in stats.values())

    def test_refresh_event_carries_cost_and_stability(self):
        obs = Observability()
        cloud = make_cloud(seed=56)
        account = cloud.create_account("ctrl", "aws")
        controller = SkyController(
            cloud, account, ["test-1a"], polls_per_refresh=2,
            poll_requests=150, sampling_count=2, obs=obs)
        controller.refresh_due_zones(force=True)
        event = obs.recorder.events("controller.refresh")[-1]
        assert event.fields["zone"] == "test-1a"
        assert event.fields["cost_usd"] > 0
        assert event.fields["stability"] in ("stable", "volatile",
                                             "unknown")


class TestDisabledNoOp(object):
    def test_default_cloud_has_null_bus_and_records_nothing(self):
        cloud, _, _, router = make_routed_rig(obs=None)
        assert cloud.bus is NULL_BUS
        for _ in range(5):
            router.route()
        # No bus, no telemetry, no tracer: route() behaves as before.
        assert router.telemetry is None
        assert router.obs is None

    def test_paused_observability_collects_nothing(self):
        obs = Observability()
        obs.disable()
        cloud, _, _, router = make_routed_rig(obs)
        campaign_zone = cloud.zone("test-1a")
        router.route()
        campaign_zone.place_batch("dep", 10, duration=1.0, window=0.0)
        assert len(obs.recorder) == 0
        assert len(obs.registry) == 0
        assert len(obs.tracer) == 0
        obs.enable()
        router.route()
        assert obs.recorder.count("cloud.invoke") == 1
        assert len(obs.tracer) == 1

    def test_results_identical_with_and_without_obs(self):
        """Observability must never perturb the simulation itself."""
        plain_cloud, _, _, plain_router = make_routed_rig(obs=None,
                                                          seed=303)
        obs = Observability()
        obs_cloud, _, _, obs_router = make_routed_rig(obs, seed=303)
        plain = [plain_router.route() for _ in range(20)]
        observed = [obs_router.route() for _ in range(20)]
        assert [r.cpu_key for r in plain] == [r.cpu_key for r in observed]
        assert [float(r.cost) for r in plain] == \
            [float(r.cost) for r in observed]
