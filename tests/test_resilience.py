"""Resilience primitives and the hardened routing path.

Covers the circuit-breaker state table (closed → open → half-open, probe
budgets, the mutating/non-mutating gate split), full-jitter backoff,
hedge gating, the ZoneHealthTracker, and ``route_resilient`` /
``route_with_failover`` behaviour under each error reason.
"""

import pytest

from repro.common.errors import (
    ConfigurationError,
    InvocationError,
    QuotaExceededError,
    SaturationError,
    TransientFaultError,
)
from repro.common.units import Money
from repro.core import (
    CharacterizationStore,
    CircuitBreaker,
    ExponentialBackoff,
    HedgePolicy,
    RegionalPolicy,
    ResilienceConfig,
    SmartRouter,
    ZoneHealthTracker,
)
from repro.core.resilience import BreakerOpenError
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.obs import EventBus
from repro.obs.hooks import EventRecorder
from repro.sampling import CharacterizationBuilder
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import drain_zone, make_cloud


class TestCircuitBreaker(object):
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(0.0)
        assert breaker.would_allow(0.0)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.transitions == [(3.0, "closed", "open")]

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        breaker.record_failure(4.0)
        breaker.record_failure(5.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_refuses_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(10.0)
        assert not breaker.would_allow(29.9)
        assert breaker.would_allow(30.0)
        # would_allow must not have transitioned anything.
        assert breaker.state == CircuitBreaker.OPEN

    def test_cooldown_expiry_half_opens_with_probe_budget(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0,
                                 probe_budget=2, probe_successes=2)
        breaker.record_failure(0.0)
        assert breaker.allow(31.0)  # first probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow(32.0)  # second probe
        assert not breaker.allow(33.0)  # budget exhausted

    def test_would_allow_never_consumes_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0,
                                 probe_budget=2)
        breaker.record_failure(0.0)
        breaker.allow(31.0)  # half-open, one probe consumed
        for _ in range(5):
            assert breaker.would_allow(32.0)
        assert breaker.allow(32.0)  # the second probe is still there
        assert not breaker.allow(33.0)

    def test_probe_successes_close_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0,
                                 probe_budget=2, probe_successes=2)
        breaker.record_failure(0.0)
        breaker.allow(31.0)
        breaker.record_success(31.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow(32.0)
        breaker.record_success(32.5)
        assert breaker.state == CircuitBreaker.CLOSED
        assert [(old, new) for _, old, new in breaker.transitions] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0)
        breaker.record_failure(0.0)
        breaker.allow(31.0)
        breaker.record_failure(31.5)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.would_allow(40.0)  # cooldown restarted at 31.5
        assert breaker.would_allow(61.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(probe_budget=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(probe_budget=2, probe_successes=3)


class TestExponentialBackoff(object):
    def test_ceiling_grows_then_caps(self):
        backoff = ExponentialBackoff(base_s=0.1, cap_s=1.0, multiplier=2.0)
        assert backoff.ceiling(0) == pytest.approx(0.1)
        assert backoff.ceiling(2) == pytest.approx(0.4)
        assert backoff.ceiling(10) == pytest.approx(1.0)

    def test_delay_is_full_jitter_within_the_ceiling(self):
        backoff = ExponentialBackoff(base_s=0.1, cap_s=1.0, seed=7)
        for attempt in range(8):
            delay = backoff.delay(attempt)
            assert 0.0 <= delay <= backoff.ceiling(attempt)

    def test_delays_are_seed_deterministic(self):
        first = ExponentialBackoff(seed=11)
        second = ExponentialBackoff(seed=11)
        assert [first.delay(i) for i in range(6)] == \
               [second.delay(i) for i in range(6)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(base_s=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(multiplier=0.5)


class TestHedgePolicy(object):
    def test_abstains_without_health_or_samples(self):
        policy = HedgePolicy(min_observations=5)
        assert policy.threshold(None, "z") is None
        health = ZoneHealthTracker()
        for i in range(4):
            health.record_success("z", float(i), latency_s=0.1)
        assert policy.threshold(health, "z") is None

    def test_threshold_is_the_latency_percentile(self):
        policy = HedgePolicy(percentile=0.5, min_observations=5)
        health = ZoneHealthTracker()
        for i in range(9):
            health.record_success("z", float(i), latency_s=float(i + 1))
        assert policy.threshold(health, "z") == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(percentile=1.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(min_observations=0)


class TestZoneHealthTracker(object):
    def test_unknown_zones_are_healthy(self):
        health = ZoneHealthTracker()
        assert health.state("z") == CircuitBreaker.CLOSED
        assert health.would_allow("z", 0.0)
        zones = ["a", "b"]
        assert health.routable_zones(zones, 0.0) is zones

    def test_error_rate_respects_the_window(self):
        health = ZoneHealthTracker(window_s=300.0)
        for t in (0.0, 10.0):
            health.record_failure("z", t)
        for t in (400.0, 410.0):
            health.record_success("z", t)
        assert health.error_rate("z", 420.0) == 0.0  # failures aged out
        assert health.error_rate("z", 300.0) == pytest.approx(0.5)

    def test_tripped_breaker_filters_and_falls_back(self):
        health = ZoneHealthTracker(
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1,
                                                   cooldown_s=30.0))
        health.record_failure("a", 0.0)
        assert health.tripped_breakers == 1
        assert health.routable_zones(["a", "b"], 1.0) == ["b"]
        # Every breaker refusing degrades to the full list, not nowhere.
        health.record_failure("b", 0.0)
        assert health.routable_zones(["a", "b"], 1.0) == ["a", "b"]

    def test_recovery_clears_the_tripped_count(self):
        health = ZoneHealthTracker(
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, cooldown_s=30.0, probe_budget=2,
                probe_successes=1))
        health.record_failure("a", 0.0)
        assert health.tripped_breakers == 1
        assert health.allow("a", 31.0)  # probe admitted
        health.record_success("a", 31.5)
        assert health.tripped_breakers == 0
        assert health.state("a") == CircuitBreaker.CLOSED

    def test_transitions_emit_events_and_are_reported(self):
        bus = EventBus()
        recorder = EventRecorder(bus=bus)
        health = ZoneHealthTracker(
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1),
            bus=bus)
        health.record_failure("z", 5.0)
        events = recorder.events("breaker.transition")
        assert len(events) == 1
        assert events[0].fields == {"zone": "z", "from_state": "closed",
                                    "to": "open"}
        assert health.transitions() == [("z", 5.0, "closed", "open")]
        assert health.snapshot(6.0)["z"]["state"] == "open"


def put_profile(store, zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    store.put(builder.snapshot())


def make_resilient_router(breaker_factory=None, resilience=None):
    """Two-zone rig whose profiles make RegionalPolicy prefer test-1a."""
    cloud = make_cloud(seed=101)
    account = cloud.create_account("rig", "aws")
    mesh = SkyMesh(cloud)
    for zone in ("test-1a", "test-1b"):
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    # The store holds *beliefs*: claim the faster CPU lives in test-1a so
    # the policy prefers it regardless of the actual pools.
    put_profile(store, "test-1a", {"xeon-3.0": 10})
    put_profile(store, "test-1b", {"xeon-2.5": 10})
    health = ZoneHealthTracker(breaker_factory=breaker_factory)
    router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                         workload_by_name("sha1_hash"),
                         ["test-1a", "test-1b"], health=health,
                         resilience=resilience)
    return cloud, router, health


class _FakeRequest(object):
    zone_id = "test-1b"
    latency_s = 0.5
    retries = 0
    cost = Money(0)


class TestRouteResilient(object):
    def test_requires_a_health_tracker(self):
        cloud, router, _ = make_resilient_router()
        router.health = None
        with pytest.raises(ConfigurationError):
            router.route_resilient()

    def test_healthy_path_is_a_single_attempt(self):
        _, router, _ = make_resilient_router()
        outcome = router.route_resilient()
        assert outcome.zone_id == "test-1a"
        assert outcome.attempts == 1
        assert outcome.failovers == 0
        assert not outcome.hedged
        assert outcome.backoff_s == 0.0

    def test_saturation_fails_over_to_the_next_zone(self):
        cloud, router, health = make_resilient_router()
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        outcome = router.route_resilient()
        assert outcome.zone_id == "test-1b"
        assert outcome.attempts == 2
        assert outcome.failovers == 1
        assert health.error_rate("test-1a", cloud.clock.now) == 1.0

    def test_repeated_failures_trip_the_breaker_and_reroute(self):
        cloud, router, health = make_resilient_router(
            breaker_factory=lambda: CircuitBreaker(failure_threshold=3,
                                                   cooldown_s=1e6))
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        for _ in range(3):
            router.route_resilient()
            cloud.clock.advance(30.0)
        assert health.state("test-1a") == CircuitBreaker.OPEN
        # With the breaker open, routing skips test-1a without paying a
        # failed attempt there.
        outcome = router.route_resilient()
        assert outcome.zone_id == "test-1b"
        assert outcome.attempts == 1
        assert outcome.failovers == 0

    def test_open_breakers_drop_out_of_the_routing_view(self):
        cloud, router, health = make_resilient_router(
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1,
                                                   cooldown_s=1e6))
        health.record_failure("test-1a", cloud.clock.now)
        view = router.current_view()
        assert view.candidate_zones == ["test-1b"]
        assert view.zone_error_rate("test-1a") == 1.0
        assert view.zone_error_rate("test-1b") == 0.0

    def test_handler_errors_propagate_without_retry(self, monkeypatch):
        _, router, _ = make_resilient_router()
        calls = []

        def exploding_route(decision=None):
            calls.append(decision)
            raise InvocationError("bug in user code")

        monkeypatch.setattr(router, "route", exploding_route)
        with pytest.raises(InvocationError):
            router.route_resilient()
        assert len(calls) == 1

    def test_transient_errors_accrue_backoff(self, monkeypatch):
        _, router, _ = make_resilient_router()
        attempts = []

        def flaky_route(decision=None):
            attempts.append(decision)
            if len(attempts) < 2:
                raise TransientFaultError()
            return _FakeRequest()

        monkeypatch.setattr(router, "route", flaky_route)
        config = ResilienceConfig(backoff=ExponentialBackoff(seed=3),
                                  failover=False)
        outcome = router.route_resilient(config)
        assert outcome.attempts == 2
        assert outcome.failovers == 0
        assert 0.0 < outcome.backoff_s <= config.backoff.ceiling(0)
        assert outcome.latency_s == pytest.approx(0.5 + outcome.backoff_s)

    def test_attempt_budget_exhaustion_raises_the_last_error(
            self, monkeypatch):
        _, router, _ = make_resilient_router()
        calls = []

        def always_throttled(decision=None):
            calls.append(decision)
            raise QuotaExceededError()

        monkeypatch.setattr(router, "route", always_throttled)
        with pytest.raises(QuotaExceededError):
            router.route_resilient(ResilienceConfig(max_attempts=3))
        assert len(calls) == 3

    def test_hedge_fires_past_the_latency_threshold(self):
        _, router, health = make_resilient_router(
            resilience=ResilienceConfig(hedge=HedgePolicy(
                min_observations=5)))
        # Teach the tracker that test-1a normally answers instantly, so
        # any real invocation (~seconds) looks hedge-worthy.
        for i in range(10):
            health.record_success("test-1a", float(i), latency_s=0.001)
        outcome = router.route_resilient()
        assert outcome.hedged
        assert outcome.hedge_request is not None
        assert outcome.hedge_request.zone_id == "test-1b"
        assert outcome.cost == (outcome.request.cost
                                + outcome.hedge_request.cost)

    def test_breaker_open_everywhere_still_degrades_gracefully(self):
        cloud, router, health = make_resilient_router(
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1,
                                                   cooldown_s=1e6))
        health.record_failure("test-1a", cloud.clock.now)
        health.record_failure("test-1b", cloud.clock.now)
        # Both breakers refuse; the fallback reopens the full set, the
        # mutating gate refuses each zone once, then the loop reopens the
        # set and raises the breaker error after the budget.
        with pytest.raises((BreakerOpenError, InvocationError)):
            router.route_resilient(ResilienceConfig(max_attempts=2))


class TestRouteWithFailover(object):
    def test_fails_over_on_throttling(self, monkeypatch):
        _, router, _ = make_resilient_router()
        served = []

        def throttled_primary(decision=None):
            if decision.zone_id == "test-1a":
                raise QuotaExceededError()
            served.append(decision.zone_id)
            return _FakeRequest()

        monkeypatch.setattr(router, "route", throttled_primary)
        request = router.route_with_failover()
        assert isinstance(request, _FakeRequest)
        assert served == ["test-1b"]
        # The candidate list is restored afterwards.
        assert router.candidate_zones == ["test-1a", "test-1b"]

    def test_handler_errors_do_not_fail_over(self, monkeypatch):
        _, router, _ = make_resilient_router()
        calls = []

        def exploding_route(decision=None):
            calls.append(decision.zone_id)
            raise InvocationError("bug in user code")

        monkeypatch.setattr(router, "route", exploding_route)
        with pytest.raises(InvocationError):
            router.route_with_failover()
        assert calls == ["test-1a"]

    def test_exhausting_all_zones_raises_the_last_error(self):
        cloud, router, _ = make_resilient_router()
        drain_zone(cloud.zone("test-1a"), duration=600.0)
        drain_zone(cloud.zone("test-1b"), duration=600.0)
        with pytest.raises(SaturationError):
            router.route_with_failover()
