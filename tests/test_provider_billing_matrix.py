"""Provider-specific billing and invocation behaviour on IBM and DO.

The headline experiments run on AWS; these tests pin down the behaviour
of the other two providers so the multi-provider paths stay honest.
"""

import pytest

from repro.common.units import Money
from repro.cloudsim import build_global_catalog
from repro.cloudsim.billing import (
    AWS_LAMBDA_BILLING,
    DIGITAL_OCEAN_BILLING,
    IBM_CODE_ENGINE_BILLING,
)
from repro.cloudsim.handlers import SleepHandler


class TestIbmBilling(object):
    def test_coarse_granularity_rounds_up(self):
        # IBM Code Engine bills in 100 ms ticks.
        assert IBM_CODE_ENGINE_BILLING.billed_duration(
            0.101) == pytest.approx(0.2)
        assert IBM_CODE_ENGINE_BILLING.billed_duration(
            0.2) == pytest.approx(0.2)

    def test_effective_rate_includes_vcpu(self):
        # The folded rate must exceed the bare memory rate.
        assert IBM_CODE_ENGINE_BILLING.rate_for("x86_64") > 3.56e-6

    def test_no_per_request_fee(self):
        bill = IBM_CODE_ENGINE_BILLING.bill(1024, 1.0)
        assert bill.request == Money(0)


class TestDoBilling(object):
    def test_no_per_request_fee(self):
        assert DIGITAL_OCEAN_BILLING.bill(512, 1.0).request == Money(0)

    def test_rate_above_aws(self):
        assert (DIGITAL_OCEAN_BILLING.rate_for("x86_64")
                > AWS_LAMBDA_BILLING.rate_for("x86_64"))


class TestNonAwsInvocations(object):
    @pytest.fixture
    def sky(self):
        return build_global_catalog(seed=171)

    def test_ibm_invocation_end_to_end(self, sky):
        account = sky.create_account("ibm-acct", "ibm")
        deployment = sky.deploy(account, "eu-de", "fn", 2048,
                                handler=SleepHandler(0.25))
        invocation = sky.invoke(deployment)
        assert invocation.cpu_key == "cascadelake-2.5"
        # 100 ms granularity: 0.251 s bills as 0.3 s.
        assert float(invocation.bill.compute) == pytest.approx(
            2.0 * 0.3 * IBM_CODE_ENGINE_BILLING.rate_for("x86_64"))

    def test_do_invocation_end_to_end(self, sky):
        account = sky.create_account("do-acct", "do")
        deployment = sky.deploy(account, "nyc1", "fn", 512,
                                handler=SleepHandler(0.25))
        invocation = sky.invoke(deployment)
        assert invocation.cpu_key == "do-xeon-2.7"
        assert invocation.bill.request == Money(0)

    def test_ibm_memory_envelope(self, sky):
        from repro.common.errors import ConfigurationError
        account = sky.create_account("ibm-acct", "ibm")
        with pytest.raises(ConfigurationError):
            sky.deploy(account, "eu-de", "fn", 8192)

    def test_do_quota_small(self, sky):
        account = sky.create_account("do-acct", "do")
        deployment = sky.deploy(account, "nyc1", "fn", 512,
                                handler=SleepHandler(0.25))
        result, _ = sky.poll(deployment, 1000)
        assert result.requested == 120  # DO's concurrency quota
        assert account.throttled_requests == 880

    def test_ibm_cold_start_slower_than_aws(self, sky):
        ibm_account = sky.create_account("ibm-acct", "ibm")
        aws_account = sky.create_account("aws-acct", "aws")
        ibm = sky.invoke(sky.deploy(ibm_account, "eu-de", "fn", 2048,
                                    handler=SleepHandler(0.25)))
        aws = sky.invoke(sky.deploy(aws_account, "us-east-1a", "fn",
                                    2048, handler=SleepHandler(0.25)))
        assert ibm.cold_start_s > aws.cold_start_s

    def test_provider_arrival_windows_differ(self, sky):
        ibm = sky.region_of_zone("eu-de").provider
        aws = sky.region_of_zone("us-east-1a").provider
        assert ibm.arrival_window(2048) > aws.arrival_window(2048)
