"""The shared catalog plan (``repro.cloudsim.shared_catalog``).

``install_catalog`` stays the executable reference; these tests pin the
plan-based build (memoized, shareable across sweep workers) to it —
same regions, same zones, same pool/scaling parameters, same seeded
outcomes — and exercise the shared-memory export/attach round trip.
"""

import pickle

import pytest

from repro.cloudsim import Cloud
from repro.cloudsim.catalog import install_catalog
from repro.cloudsim.shared_catalog import (
    CatalogShare,
    active_plan,
    attach_worker,
    catalog_plan,
    detach_worker,
    install_plan,
)
from repro.engine import CampaignTask, CloudSpec, SweepEngine


def _cloud_signature(cloud):
    """Everything the build decides: regions, zones, pools, policies."""
    signature = {}
    for region_name, region in sorted(cloud.regions.items()):
        zones = {}
        for zone_id, zone in sorted(region.zones.items()):
            pools = tuple(
                (pool.cpu_key, pool.hosts, pool.slots_per_host,
                 pool.affinity)
                for pool in sorted(zone.pools.values(),
                                   key=lambda p: p.cpu_key))
            zones[zone_id] = (pools, zone.keepalive,
                              zone.scaling.pressure_threshold,
                              zone.scaling.slots_per_minute,
                              zone.scaling.max_surge_slots)
        signature[region_name] = (region.provider.name,
                                  (region.geo.lat, region.geo.lon), zones)
    return signature


@pytest.mark.parametrize("filters", [
    {"aws_only": True},
    {"aws_only": False},
    {"aws_only": False, "regions": ("us-west-1", "lon1")},
    {"aws_only": True, "regions": ("us-west-1",)},
])
def test_plan_install_matches_install_catalog(filters):
    reference = install_catalog(Cloud(seed=7), **filters)
    planned = install_plan(Cloud(seed=7), catalog_plan(), **filters)
    assert _cloud_signature(planned) == _cloud_signature(reference)
    assert list(planned.regions) == list(reference.regions)


def test_plan_is_memoized_and_immutable():
    assert catalog_plan() is catalog_plan()
    assert isinstance(catalog_plan(), tuple)
    for entry in catalog_plan():
        assert isinstance(entry["zones"], tuple)


def test_seeded_outcomes_identical_across_construction_paths():
    polls = []
    for install in (
        lambda cloud: install_catalog(cloud, aws_only=True),
        lambda cloud: install_plan(cloud, catalog_plan(), aws_only=True),
    ):
        cloud = install(Cloud(seed=13))
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "us-west-1a", "fn", 1024)
        result = cloud.poll_batch(deployment, 400)
        polls.append(result.aggregate_key())
    assert polls[0] == polls[1]


class TestCatalogShare(object):
    def test_export_attach_round_trip(self):
        share = CatalogShare.export()
        if share is None:
            pytest.skip("no usable shared memory on this platform")
        try:
            detach_worker()
            attach_worker(share.name, share.size)
            # The attached plan is pickle-equal to the local one and is
            # what builds use from now on in this "worker".
            assert pickle.dumps(active_plan()) == \
                pickle.dumps(catalog_plan())
            assert active_plan() is not catalog_plan()
        finally:
            detach_worker()
            share.dispose()
        assert active_plan() is catalog_plan()

    def test_attach_missing_segment_degrades_silently(self):
        detach_worker()
        attach_worker("repro-no-such-segment", 128)
        assert active_plan() is catalog_plan()

    def test_dispose_is_idempotent(self):
        share = CatalogShare.export()
        if share is None:
            pytest.skip("no usable shared memory on this platform")
        share.dispose()
        share.dispose()


class TestCloudSpecBuild(object):
    def test_build_uses_active_plan(self):
        built = CloudSpec(seed=5, aws_only=True).build()
        reference = install_catalog(Cloud(seed=5), aws_only=True)
        assert _cloud_signature(built) == _cloud_signature(reference)

    def test_for_zones_build_matches_reference(self):
        built = CloudSpec.for_zones(["us-west-1a"], seed=2).build()
        reference = install_catalog(Cloud(seed=2), aws_only=True,
                                    regions=("us-west-1",))
        assert _cloud_signature(built) == _cloud_signature(reference)


class TestEngineIntegration(object):
    def test_pool_run_shares_catalog_and_stays_deterministic(self):
        def tasks():
            return [CampaignTask(CloudSpec.for_zones(["us-west-1a"],
                                                     seed=seed),
                                 "us-west-1a", endpoints=3, n_requests=150,
                                 max_polls=2) for seed in range(3)]

        serial = SweepEngine(workers=1).run(tasks())
        engine = SweepEngine(workers=2)
        pooled = engine.run(tasks())
        # The share is created for the pool and disposed by run()'s
        # cleanup — a leaked segment would survive here.
        assert engine._catalog_share is None
        assert [r.ground_truth().shares() for r in pooled] == \
            [r.ground_truth().shares() for r in serial]
