"""Zone similarity and clustering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.sampling import CharacterizationBuilder
from repro.sampling.similarity import SimilarityMatrix


def profile(zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    return builder.snapshot()


@pytest.fixture
def matrix():
    return SimilarityMatrix([
        profile("twin-a", {"x25": 60, "x30": 40}),
        profile("twin-b", {"x25": 58, "x30": 42}),
        profile("loner", {"epyc": 90, "x25": 10}),
    ])


class TestConstruction(object):
    def test_needs_two_zones(self):
        with pytest.raises(ConfigurationError):
            SimilarityMatrix([profile("only", {"a": 1})])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            SimilarityMatrix([profile("z", {"a": 1}),
                              profile("z", {"b": 1})])


class TestDistances(object):
    def test_symmetric(self, matrix):
        assert matrix.distance("twin-a", "loner") == matrix.distance(
            "loner", "twin-a")

    def test_self_distance_zero(self, matrix):
        assert matrix.distance("twin-a", "twin-a") == 0.0

    def test_twins_close_loner_far(self, matrix):
        assert matrix.distance("twin-a", "twin-b") < 0.05
        assert matrix.distance("twin-a", "loner") > 0.5

    def test_known_tvd_value(self, matrix):
        # twin-a vs twin-b: |0.60-0.58| + |0.40-0.42| = 0.04 -> TVD 0.02.
        assert matrix.distance("twin-a", "twin-b") == pytest.approx(0.02)

    def test_most_similar_pair(self, matrix):
        a, b, distance = matrix.most_similar_pair()
        assert {a, b} == {"twin-a", "twin-b"}
        assert distance == pytest.approx(0.02)

    def test_most_distinct_zone(self, matrix):
        assert matrix.most_distinct_zone() == "loner"

    def test_as_array_is_copy(self, matrix):
        array = matrix.as_array()
        array[0, 1] = 99.0
        assert matrix.distance("twin-a", "twin-b") < 1.0


class TestClustering(object):
    def test_twins_cluster_together(self, matrix):
        clusters = matrix.clusters(threshold=0.15)
        assert ["twin-a", "twin-b"] in clusters
        assert ["loner"] in clusters

    def test_tiny_threshold_splits_everything(self, matrix):
        clusters = matrix.clusters(threshold=0.001)
        assert len(clusters) == 3

    def test_huge_threshold_merges_everything(self, matrix):
        clusters = matrix.clusters(threshold=2.0)
        assert len(clusters) == 1

    def test_threshold_validated(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.clusters(threshold=0)

    def test_representatives_cover_clusters(self, matrix):
        representatives = matrix.representative_zones(threshold=0.15)
        assert len(representatives) == 2
        assert "loner" in representatives


class TestOnRealCatalog(object):
    def test_catalog_zones_cluster_sensibly(self):
        from repro import SamplingCampaign, SkyMesh, build_sky
        cloud = build_sky(seed=181, aws_only=True)
        account = cloud.create_account("sim", "aws")
        mesh = SkyMesh(cloud)
        profiles = []
        for index, zone_id in enumerate(
                ("us-east-2a", "af-south-1a", "us-west-1b",
                 "us-west-1a")):
            endpoints = mesh.deploy_sampling_endpoints(
                account, zone_id, count=4,
                memory_base_mb=2048 + index * 8)
            campaign = SamplingCampaign(cloud, endpoints, max_polls=4,
                                        inter_poll_gap=1.0)
            profiles.append(campaign.run().ground_truth())
        matrix = SimilarityMatrix(profiles)
        # The two us-west-1 siblings share a diverse 4-CPU mix; the
        # single-CPU zone sits far from both.
        assert (matrix.distance("us-west-1a", "us-west-1b")
                < matrix.distance("us-east-2a", "us-west-1b"))
