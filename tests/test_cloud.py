"""The cloud facade: accounts, deployments, invoke, poll, hold."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DeploymentError,
    UnknownRegionError,
    UnknownZoneError,
)
from repro.common.units import Money
from repro.cloudsim.handlers import CallableHandler, SleepHandler
from repro.cloudsim.network import GeoPoint


@pytest.fixture
def deployment(cloud, aws_account):
    return cloud.deploy(aws_account, "test-1a", "fn", 2048,
                        handler=SleepHandler(0.25))


class TestTopology(object):
    def test_region_lookup(self, cloud):
        assert cloud.region("test-1").name == "test-1"

    def test_unknown_region(self, cloud):
        with pytest.raises(UnknownRegionError):
            cloud.region("atlantis-1")

    def test_zone_lookup(self, cloud):
        assert cloud.zone("test-1a").zone_id == "test-1a"

    def test_unknown_zone(self, cloud):
        with pytest.raises(UnknownZoneError):
            cloud.zone("test-9z")

    def test_region_of_zone(self, cloud):
        assert cloud.region_of_zone("test-1b").name == "test-1"

    def test_duplicate_region_rejected(self, cloud):
        from repro.cloudsim.region import Region
        from repro.cloudsim.provider import AWS_LAMBDA
        with pytest.raises(ConfigurationError):
            cloud.add_region(Region("test-1", AWS_LAMBDA, GeoPoint(0, 0)))

    def test_zone_ids_filtered_by_provider(self, cloud):
        assert cloud.zone_ids(provider="aws") == ["test-1a", "test-1b"]
        assert cloud.zone_ids(provider="ibm") == []


class TestAccounts(object):
    def test_create(self, cloud):
        account = cloud.create_account("a1", "aws")
        assert account.provider.name == "aws"

    def test_duplicate_rejected(self, cloud):
        cloud.create_account("a1", "aws")
        with pytest.raises(ConfigurationError):
            cloud.create_account("a1", "aws")


class TestDeploy(object):
    def test_deploy(self, deployment):
        assert deployment.zone_id == "test-1a"
        assert deployment.memory_mb == 2048

    def test_account_provider_must_match_zone(self, cloud):
        ibm_account = cloud.create_account("ibm-acct", "ibm")
        with pytest.raises(DeploymentError):
            cloud.deploy(ibm_account, "test-1a", "fn", 2048)

    def test_memory_validated(self, cloud, aws_account):
        with pytest.raises(ConfigurationError):
            cloud.deploy(aws_account, "test-1a", "fn", 32)

    def test_deployment_lookup(self, cloud, deployment):
        assert cloud.deployment(deployment.deployment_id) is deployment

    def test_unknown_deployment(self, cloud):
        with pytest.raises(DeploymentError):
            cloud.deployment("dep-999999")

    def test_default_handler_is_sleep(self, cloud, aws_account):
        deployment = cloud.deploy(aws_account, "test-1a", "fn", 2048)
        assert isinstance(deployment.handler, SleepHandler)


class TestInvoke(object):
    def test_basic_invocation(self, cloud, deployment):
        invocation = cloud.invoke(deployment)
        assert invocation.zone_id == "test-1a"
        assert invocation.runtime_s == pytest.approx(0.251)
        assert invocation.cpu_key in ("xeon-2.5", "xeon-2.9")

    def test_cold_start_on_first_invocation(self, cloud, deployment):
        invocation = cloud.invoke(deployment)
        assert invocation.is_cold
        assert invocation.cold_start_s > 0

    def test_warm_reuse_on_second_invocation(self, cloud, deployment):
        cloud.invoke(deployment)
        cloud.clock.advance(1.0)
        second = cloud.invoke(deployment)
        assert second.reused
        assert second.cold_start_s == 0.0

    def test_force_new(self, cloud, deployment):
        first = cloud.invoke(deployment)
        cloud.clock.advance(1.0)
        second = cloud.invoke(deployment, force_new=True)
        assert second.instance_id != first.instance_id

    def test_billing_recorded_on_account(self, cloud, deployment,
                                         aws_account):
        cloud.invoke(deployment)
        assert aws_account.total_spend() > Money(0)

    def test_client_latency_added(self, cloud, deployment):
        far_client = GeoPoint(-33.9, 151.2)  # Sydney vs a Seattle region
        with_client = cloud.invoke(deployment, client=far_client)
        cloud.clock.advance(400.0)
        without = cloud.invoke(deployment)
        assert with_client.latency_s > without.latency_s + 0.05

    def test_custom_handler_durations(self, cloud, aws_account):
        handler = CallableHandler(lambda cpu, rng, payload: 2.0)
        deployment = cloud.deploy(aws_account, "test-1a", "fn2", 1024,
                                  handler=handler)
        invocation = cloud.invoke(deployment)
        assert invocation.runtime_s == pytest.approx(2.0)

    def test_response_from_handler(self, cloud, deployment):
        invocation = cloud.invoke(deployment)
        assert invocation.response["slept"] == 0.25


class TestHold(object):
    def test_hold_bills_compute_without_request_fee(self, cloud, deployment,
                                                    aws_account):
        invocation = cloud.invoke(deployment)
        before = aws_account.total_spend()
        bill = cloud.hold(deployment, invocation, 0.150)
        assert bill.request == Money(0)
        assert bill.compute > Money(0)
        assert aws_account.total_spend() > before

    def test_hold_recorded_under_retry_category(self, cloud, deployment,
                                                aws_account):
        invocation = cloud.invoke(deployment)
        cloud.hold(deployment, invocation, 0.150)
        assert "retry-hold" in aws_account.spend_breakdown()


class TestPoll(object):
    def test_poll_returns_result_and_bill(self, cloud, deployment):
        result, bill = cloud.poll(deployment, 100)
        assert result.served == 100
        assert bill.requests == 100

    def test_poll_respects_quota(self, cloud, deployment, aws_account):
        result, _ = cloud.poll(deployment, 1500)
        assert result.requested == 1000
        assert aws_account.throttled_requests == 500

    def test_place_batch_without_charge(self, cloud, deployment,
                                        aws_account):
        before = aws_account.total_spend()
        cloud.place_batch(deployment, 50, 0.25, charge=False)
        assert aws_account.total_spend() == before
