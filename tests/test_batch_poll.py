"""The vectorized batch-poll core (``Cloud.poll_batch``).

The load-bearing contract: the vectorized fast path and the looped
executable spec consume the cloud RNG identically and produce
**bit-identical** aggregates — same counts, same integer billing ticks,
same float totals to the last bit (``aggregate_key`` compares ``.hex()``
renderings).  A hypothesis property drives both paths across deployment
shapes, burst sizes, and multi-poll warm/cold mixes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloudsim import BatchPollResult, Cloud
from repro.cloudsim.billing import (
    AWS_LAMBDA_BILLING,
    IBM_CODE_ENGINE_BILLING,
    duration_ticks,
)
from repro.cloudsim.handlers import (
    Handler,
    ModeledWorkloadHandler,
    ScaledWorkloadHandler,
    SleepHandler,
)
from repro.common.distributions import CategoricalDistribution
from repro.common.errors import CharacterizationError
from repro.common.rng import derive_rng
from repro.faults.injector import FaultInjector
from repro.faults.models import ColdStartStorm, LatencySpike
from repro.obs import Observability
from tests.helpers import make_cloud


def _sleeper():
    return SleepHandler(0.25)


def _modeled():
    return ModeledWorkloadHandler("wl", 0.3, {}, noise_sigma=0.05,
                                  default_factor=1.0)


def _scaled():
    return ScaledWorkloadHandler(_modeled(), 1.7)


HANDLERS = {"sleep": _sleeper, "modeled": _modeled, "scaled": _scaled}


def _fault_injector(seed):
    """A storm + spike schedule active over the whole poll window.

    ``jitter_sigma`` > 0 makes the latency spike draw from the injector's
    own per-zone stream, proving fault randomness never leaks into (or
    reorders) the cloud RNG consumed by the two poll paths.
    """
    return FaultInjector([
        ColdStartStorm(multiplier=6.0),
        LatencySpike(extra_s=0.35, jitter_sigma=0.2),
    ], seed=seed)


def _poll_keys(vectorize, seed, handler_key, bursts, advance_s,
               memory_mb=1024, faulted=False):
    """Aggregate keys from a fresh seeded cloud polled ``bursts`` times."""
    cloud = make_cloud(seed=seed)
    if faulted:
        _fault_injector(seed).install(cloud)
    account = cloud.create_account("acct", "aws")
    deployment = cloud.deploy(account, "test-1a", "fn", memory_mb,
                              handler=HANDLERS[handler_key]())
    keys = []
    for n_requests in bursts:
        result = cloud.poll_batch(deployment, n_requests,
                                  vectorize=vectorize)
        keys.append(result.aggregate_key())
        cloud.clock.advance(advance_s)
    return keys


class TestBatchLoopEquivalence(object):
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        handler_key=st.sampled_from(sorted(HANDLERS)),
        bursts=st.lists(st.integers(min_value=1, max_value=700),
                        min_size=1, max_size=4),
        advance_s=st.sampled_from([5.0, 120.0, 400.0]),
    )
    def test_aggregates_bit_identical(self, seed, handler_key, bursts,
                                      advance_s):
        vectorized = _poll_keys(True, seed, handler_key, bursts, advance_s)
        looped = _poll_keys(False, seed, handler_key, bursts, advance_s)
        assert vectorized == looped

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        handler_key=st.sampled_from(sorted(HANDLERS)),
        bursts=st.lists(st.integers(min_value=1, max_value=700),
                        min_size=1, max_size=4),
        advance_s=st.sampled_from([5.0, 120.0, 400.0]),
    )
    def test_aggregates_bit_identical_under_faults(self, seed, handler_key,
                                                   bursts, advance_s):
        # Cold-start storm + jittered latency spike active on every poll:
        # both paths must consult the hooks identically (once per batch)
        # and still agree to the last bit.
        vectorized = _poll_keys(True, seed, handler_key, bursts, advance_s,
                                faulted=True)
        looped = _poll_keys(False, seed, handler_key, bursts, advance_s,
                            faulted=True)
        assert vectorized == looped

    def test_faults_actually_engage_both_paths(self):
        # Two polls 30s apart: without faults the second poll reuses warm
        # FIs; the storm's forces_cold must defeat that in BOTH paths, and
        # the spike must lift latency totals above the clean run's.
        for vectorize in (True, False):
            clean = _poll_keys(vectorize, 42, "modeled", [400, 400], 30.0)
            faulted = _poll_keys(vectorize, 42, "modeled", [400, 400], 30.0,
                                 faulted=True)
            # aggregate_key: (requested, served, failed, cold, ...) with
            # latency_total_s at index 8 as a float hex string.
            for key in faulted:
                assert key[3] == key[1]  # every served request cold-started
            assert clean[1][3] < clean[1][1]  # sanity: clean run mixed
            for clean_key, fault_key in zip(clean, faulted):
                assert float.fromhex(fault_key[8]) > \
                    float.fromhex(clean_key[8])

    def test_warm_cold_mix_stays_identical(self):
        # Two polls 30s apart: the second reuses warm FIs and places new
        # ones, exercising the mixed cold/warm multinomial split.
        vec = _poll_keys(True, 42, "modeled", [400, 600], 30.0)
        loop = _poll_keys(False, 42, "modeled", [400, 600], 30.0)
        assert vec == loop
        # The second poll did mix: some cold starts, fewer than served.
        cold = vec[1][3]
        served = vec[1][1]
        assert 0 < cold < served

    def test_account_ledgers_match(self):
        clouds = []
        for vectorize in (True, False):
            cloud = make_cloud(seed=9)
            account = cloud.create_account("acct", "aws")
            deployment = cloud.deploy(account, "test-1a", "fn", 2048,
                                      handler=_modeled())
            cloud.poll_batch(deployment, 500, vectorize=vectorize)
            clouds.append(account)
        assert float(clouds[0].total_spend()) == \
            float(clouds[1].total_spend())


class TestBatchPollResult(object):
    def test_aggregates_are_consistent(self):
        cloud = make_cloud(seed=3)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=_sleeper())
        result = cloud.poll_batch(deployment, 600)
        assert isinstance(result, BatchPollResult)
        assert result.requested == 600
        assert result.served == sum(result.request_cpu_counts.values())
        assert result.failed == result.requested - result.served
        assert result.cold_starts == sum(result.cold_cpu_counts.values())
        assert result.records is None  # vectorized: no per-request objects
        assert result.bill.requests == result.served
        assert result.mean_runtime_s == pytest.approx(
            result.runtime_total_s / result.served)
        assert result.cpu_distribution().total == result.served

    def test_spec_path_records_back_the_aggregates(self):
        cloud = make_cloud(seed=3)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=_modeled())
        result = cloud.poll_batch(deployment, 300, vectorize=False)
        records = result.records
        assert len(records) == result.served
        assert sum(r.billed_ticks for r in records) == result.billed_ticks
        assert sum(1 for r in records if r.is_cold) == result.cold_starts
        by_cpu = {}
        for record in records:
            by_cpu[record.cpu_key] = by_cpu.get(record.cpu_key, 0) + 1
        assert by_cpu == result.request_cpu_counts
        assert float(np.sum(np.asarray(
            [r.runtime_s for r in records]))) == result.runtime_total_s

    def test_emits_one_event_and_bridges_metrics(self):
        cloud = make_cloud(seed=3)
        obs = Observability().install(cloud)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=_sleeper())
        result = cloud.poll_batch(deployment, 500)
        events = obs.recorder.events("cloud.poll_batch")
        assert len(events) == 1
        assert events[0].fields["served"] == result.served
        zone = deployment.zone_id
        registry = obs.registry
        assert registry.get("poll_batches_total", zone=zone).value == 1
        assert registry.get("poll_batch_served_total",
                            zone=zone).value == result.served
        assert registry.get("poll_batch_cold_starts_total",
                            zone=zone).value == result.cold_starts
        # Second batch reuses the pre-bound handles.
        cloud.poll_batch(deployment, 100)
        assert registry.get("poll_batches_total", zone=zone).value == 2


class TestDurationsOnContract(object):
    """Vectorized overrides vs the base class's sequential spec."""

    @pytest.mark.parametrize("factory", [_sleeper, _modeled, _scaled])
    def test_stream_position_matches_scalar_loop(self, factory):
        handler = factory()
        vec_rng = derive_rng(7, "h")
        loop_rng = derive_rng(7, "h")
        batch = handler.durations_on("xeon-2.5", vec_rng, 50)
        scalars = [handler.duration_on("xeon-2.5", loop_rng)
                   for _ in range(50)]
        assert batch.shape == (50,)
        # Same stream consumption: the *next* draw must agree bit-for-bit.
        assert vec_rng.standard_normal() == loop_rng.standard_normal()
        # Values agree (exactly for deterministic handlers; np.exp vs
        # math.exp may differ in the last ulp for the modeled ones).
        np.testing.assert_allclose(batch, scalars, rtol=1e-12)

    def test_base_class_loop_is_the_spec(self):
        class TwoPoint(Handler):
            def duration_on(self, cpu_key, rng, payload=None):
                return 0.1 if rng.random() < 0.5 else 0.2

        handler = TwoPoint()
        a, b = derive_rng(1, "x"), derive_rng(1, "x")
        batch = handler.durations_on(None, a, 20)
        scalars = [handler.duration_on(None, b) for _ in range(20)]
        assert batch.tolist() == scalars

    def test_zero_count_consumes_nothing(self):
        handler = _modeled()
        rng = derive_rng(2, "z")
        reference = derive_rng(2, "z")
        assert handler.durations_on("cpu", rng, 0).shape == (0,)
        assert rng.standard_normal() == reference.standard_normal()


class TestSampleCounts(object):
    def test_single_category_is_deterministic_and_free(self):
        rng = derive_rng(0, "s")
        reference = derive_rng(0, "s")
        counts = CategoricalDistribution({"only": 3}).sample_counts(rng, 17)
        assert counts == {"only": 17}
        assert rng.standard_normal() == reference.standard_normal()

    def test_multinomial_matches_draw_totals(self):
        dist = CategoricalDistribution({"cold": 2, "warm": 6})
        counts = dist.sample_counts(derive_rng(1, "s"), 1000)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"cold", "warm"}
        # Heavily warm-weighted split should lean warm.
        assert counts["warm"] > counts["cold"]

    def test_empty_and_negative_raise(self):
        with pytest.raises(CharacterizationError):
            CategoricalDistribution({}).sample_counts(derive_rng(0, "s"), 1)
        with pytest.raises(CharacterizationError):
            CategoricalDistribution({"a": 1}).sample_counts(
                derive_rng(0, "s"), -1)


class TestTickBilling(object):
    def test_duration_ticks_scalar_equals_vector(self):
        rng = derive_rng(5, "t")
        durations = rng.uniform(1e-4, 3.0, size=2000)
        for model in (AWS_LAMBDA_BILLING, IBM_CODE_ENGINE_BILLING):
            vector = duration_ticks(durations, model.granularity,
                                    model.min_billed_duration)
            scalars = [int(duration_ticks(d, model.granularity,
                                          model.min_billed_duration))
                       for d in durations]
            assert vector.tolist() == scalars

    def test_ticks_match_billed_duration_quantization(self):
        model = AWS_LAMBDA_BILLING
        for duration in (1e-4, 0.001, 0.0015, 0.25, 0.9999999, 1.0):
            ticks = int(duration_ticks(duration, model.granularity,
                                       model.min_billed_duration))
            assert ticks * model.granularity == pytest.approx(
                model.billed_duration(duration))

    def test_bill_ticks_equals_summed_scalar_bills(self):
        model = AWS_LAMBDA_BILLING
        durations = [0.1, 0.25, 0.0009, 1.7]
        ticks = int(duration_ticks(np.asarray(durations),
                                   model.granularity).sum())
        aggregate = model.bill_ticks(1024, ticks, requests=len(durations))
        singles = [model.bill(1024, d, requests=1) for d in durations]
        total = singles[0]
        for bill in singles[1:]:
            total = total + bill
        assert float(aggregate.total) == pytest.approx(float(total.total))
        assert aggregate.requests == total.requests


class TestFindInstance(object):
    def test_lookup_matches_linear_scan(self):
        cloud = make_cloud(seed=1)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024)
        zone = cloud.zone(deployment.zone_id)
        invocations = [cloud.invoke(deployment) for _ in range(5)]
        for invocation in invocations:
            via_dict = zone.find_instance(invocation.instance_id)
            via_scan = next(
                (fi for fi in zone._fi_index[deployment.deployment_id]
                 if fi.instance_id == invocation.instance_id), None)
            assert via_dict is via_scan is not None

    def test_released_instance_resolves_to_none(self):
        cloud = make_cloud(seed=1)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024)
        zone = cloud.zone(deployment.zone_id)
        invocation = cloud.invoke(deployment)
        assert zone.find_instance(invocation.instance_id) is not None
        # Jump past runtime + keepalive; the next operation expires it.
        cloud.clock.advance(deployment.provider.keepalive + 3600.0)
        cloud.invoke(deployment)
        assert zone.find_instance(invocation.instance_id) is None

    def test_hold_via_find_fi_still_works(self):
        cloud = make_cloud(seed=1)
        account = cloud.create_account("acct", "aws")
        deployment = cloud.deploy(account, "test-1a", "fn", 1024)
        invocation = cloud.invoke(deployment)
        bill = cloud.hold(deployment, invocation, 5.0)
        assert float(bill.total) > 0.0
