"""The command-line interface."""

import io
import json

import pytest

from repro import cli


def run_cli(*argv):
    out = io.StringIO()
    code = cli.main(list(argv), out=out)
    return code, out.getvalue()


class TestCatalog(object):
    def test_lists_41_regions(self):
        code, output = run_cli("catalog")
        assert code == 0
        assert len(output.strip().splitlines()) == 41

    def test_provider_filter(self):
        code, output = run_cli("catalog", "--provider", "ibm")
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 4
        assert "eu-de" in lines


class TestWorkloads(object):
    def test_lists_twelve(self):
        code, output = run_cli("workloads")
        assert code == 0
        assert "zipper" in output
        assert "logistic_regression" in output
        # Header plus twelve rows.
        assert len(output.strip().splitlines()) == 13


class TestWorkloadsRun(object):
    def test_executes_suite(self):
        code, output = run_cli("workloads", "--run", "--scale", "0.05",
                               "--repetitions", "1")
        assert code == 0
        assert "mean (s)" in output
        assert "total wall time" in output
        # Twelve data rows between header and the total line.
        assert len(output.strip().splitlines()) == 14


class TestCharacterize(object):
    def test_prints_shares(self):
        code, output = run_cli("--seed", "3", "characterize",
                               "us-east-2a", "--polls", "2")
        assert code == 0
        assert "xeon-2.5" in output
        assert "100.0%" in output

    def test_json_export(self, tmp_path):
        path = tmp_path / "zone.json"
        code, output = run_cli("characterize", "us-east-2a", "--polls",
                               "2", "--json", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["zone"] == "us-east-2a"
        assert payload["trace"]

    def test_unknown_zone_fails_fast(self):
        with pytest.raises(Exception):
            run_cli("characterize", "atlantis-1a")


class TestProfile(object):
    def test_profile_table(self):
        code, output = run_cli("--seed", "5", "profile", "zipper",
                               "--repetitions", "400")
        assert code == 0
        assert "vs 2.5GHz" in output
        assert "xeon-3.0" in output


class TestAdvise(object):
    def test_prints_ladder_and_recommendation(self):
        code, output = run_cli("--seed", "7", "advise", "sha1_hash",
                               "--zone", "us-east-2a", "--polls", "2")
        assert code == 0
        assert "cheapest" in output
        assert "recommended (balanced)" in output
        # Header + 9 ladder rungs + 2 summary lines + title.
        assert "10240MB" in output

    def test_objective_flag(self):
        code, output = run_cli("--seed", "7", "advise", "sha1_hash",
                               "--zone", "us-east-2a", "--polls", "2",
                               "--objective", "fastest")
        assert code == 0
        assert "recommended (fastest)" in output


class TestStudy(object):
    def test_study_summary_and_exports(self, tmp_path):
        json_path = tmp_path / "study.json"
        csv_path = tmp_path / "study.csv"
        code, output = run_cli(
            "--seed", "5", "study", "zipper", "--days", "2", "--burst",
            "200", "--json", str(json_path), "--csv", str(csv_path))
        assert code == 0
        assert "hybrid_focus_fastest" in output
        payload = json.loads(json_path.read_text())
        assert payload["workload"] == "zipper"
        assert len(payload["daily_costs_usd"]["baseline"]) == 2
        assert "savings_vs_baseline" in payload
        lines = csv_path.read_text().strip().splitlines()
        # header + 4 policies x 2 days
        assert len(lines) == 1 + 4 * 2


class TestObs(object):
    def test_prints_metrics_events_and_trace(self):
        code, output = run_cli("--seed", "11", "obs", "--requests", "25",
                               "--poll-requests", "200")
        assert code == 0
        assert "per-zone" in output
        assert "per-cpu" in output
        assert "p95" in output
        assert "cloudsim events" in output
        assert "placements:" in output
        assert "slot churn:" in output
        assert "invocations: 25" in output
        assert "request" in output and "dispatch" in output
        assert "complete" in output  # the printed trace finished

    def test_exports(self, tmp_path):
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "events.jsonl"
        csv_path = tmp_path / "metrics.csv"
        code, _ = run_cli("--seed", "11", "obs", "--requests", "10",
                          "--poll-requests", "200",
                          "--prom", str(prom), "--jsonl", str(jsonl),
                          "--csv", str(csv_path))
        assert code == 0
        assert "# TYPE invocations_total counter" in prom.read_text()
        first_event = json.loads(
            jsonl.read_text().strip().splitlines()[0])
        assert "event" in first_event and "timestamp" in first_event
        assert csv_path.read_text().startswith("metric,kind,labels")


class TestModuleEntryPoint(object):
    def test_python_dash_m_repro(self):
        import subprocess
        import sys
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "catalog", "--provider",
             "do"], capture_output=True, text=True)
        assert completed.returncode == 0
        assert "nyc1" in completed.stdout

    def test_usage_error_exits_nonzero(self):
        import subprocess
        import sys
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True, text=True)
        assert completed.returncode != 0


class TestSweep(object):
    def _campaign_args(self, *extra):
        return ("--seed", "5", "sweep", "campaign",
                "--zones", "us-west-1a,us-west-1b", "--seeds", "0,1",
                "--polls", "2", "--endpoints", "3",
                "--requests", "150") + extra

    def test_campaign_sweep_table(self):
        code, output = run_cli(*self._campaign_args())
        assert code == 0
        assert "campaign sweep: 4 cells (2 zones x 2 seeds)" in output
        assert output.count("us-west-1a") >= 2

    def test_workers_do_not_change_output(self, tmp_path):
        serial_json = str(tmp_path / "serial.json")
        pooled_json = str(tmp_path / "pooled.json")
        code1, out1 = run_cli(*self._campaign_args(
            "--workers", "1", "--json", serial_json))
        code2, out2 = run_cli(*self._campaign_args(
            "--workers", "2", "--json", pooled_json))
        assert code1 == code2 == 0
        # Identical table (the trailing "wrote <path>" line differs only
        # by the path we chose).
        strip = lambda text: [line for line in text.splitlines()  # noqa: E731
                              if not line.startswith("wrote ")]
        assert strip(out1) == strip(out2)
        with open(serial_json) as f1, open(pooled_json) as f2:
            assert f1.read() == f2.read()

    def test_progressive_sweep(self):
        code, output = run_cli("--seed", "2", "sweep", "progressive",
                               "--zones", "us-west-1a", "--seeds", "0",
                               "--endpoints", "4", "--requests", "150",
                               "--budgets", "1,2")
        assert code == 0
        assert "ape@1" in output

    def test_study_sweep(self):
        code, output = run_cli("--seed", "4", "sweep", "study",
                               "--zones", "us-west-1a,us-west-1b",
                               "--workloads", "sha1_hash", "--seeds", "0",
                               "--days", "1", "--burst", "50")
        assert code == 0
        assert "sha1_hash" in output

    def test_json_payload_shape(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        code, _ = run_cli(*self._campaign_args("--json", path))
        assert code == 0
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "campaign"
        assert payload["root_seed"] == 5
        assert len(payload["cells"]) == 4
        assert all("cell_seed" in cell for cell in payload["cells"])

    def test_remote_backend_matches_serial(self, tmp_path):
        serial_json = str(tmp_path / "serial.json")
        remote_json = str(tmp_path / "remote.json")
        code1, _ = run_cli(*self._campaign_args(
            "--workers", "1", "--json", serial_json))
        code2, _ = run_cli(*self._campaign_args(
            "--workers", "2", "--backend", "remote",
            "--json", remote_json))
        assert code1 == code2 == 0
        with open(serial_json) as f1, open(remote_json) as f2:
            assert f1.read() == f2.read()


class TestTemporalSweep(object):
    def _args(self, mode, *extra):
        return ("--seed", "9", "sweep", "temporal",
                "--zones", "us-west-1a", "--seeds", "0",
                "--temporal-mode", mode, "--periods", "2",
                "--polls", "2", "--endpoints", "3",
                "--requests", "100") + extra

    def test_hourly_table(self):
        code, output = run_cli(*self._args("hourly"))
        assert code == 0
        assert ("temporal sweep (hourly): 1 cells (1 zones x 1 seeds), "
                "2 periods") in output
        assert "dominant cpu" in output
        assert "[us-west-1a seed=0]" in output

    def test_daily_table_and_json(self, tmp_path):
        path = str(tmp_path / "temporal.json")
        code, output = run_cli(*self._args("daily", "--json", path))
        assert code == 0
        assert "cost ($)" in output
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "temporal"
        cell = payload["cells"][0]
        assert cell["mode"] == "daily"
        assert len(cell["series"]) == 2

    def test_workers_do_not_change_temporal_output(self, tmp_path):
        serial_json = str(tmp_path / "serial.json")
        pooled_json = str(tmp_path / "pooled.json")
        code1, _ = run_cli(*self._args("daily", "--workers", "1",
                                       "--json", serial_json))
        code2, _ = run_cli(*self._args("daily", "--workers", "2",
                                       "--json", pooled_json))
        assert code1 == code2 == 0
        with open(serial_json) as f1, open(pooled_json) as f2:
            assert f1.read() == f2.read()


class TestSweepWorkerCommand(object):
    def test_unreachable_coordinator_fails_cleanly(self):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        code, output = run_cli("sweep-worker", "--connect",
                               "127.0.0.1:{}".format(port),
                               "--max-reconnects", "0")
        assert code == 1
        assert "could not join coordinator" in output

    def test_malformed_address_rejected(self):
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            run_cli("sweep-worker", "--connect", "nonsense")


class TestMultiZoneCharacterize(object):
    def test_comma_separated_zones(self):
        code, output = run_cli("--seed", "3", "characterize",
                               "us-east-2a,us-west-1a", "--polls", "2",
                               "--workers", "2")
        assert code == 0
        assert "us-east-2a" in output
        assert "us-west-1a" in output


class TestMultiWorkloadStudy(object):
    def test_comma_separated_workloads(self):
        code, output = run_cli("--seed", "6", "study",
                               "sha1_hash,zipper", "--days", "1",
                               "--burst", "50", "--workers", "2")
        assert code == 0
        assert "sha1_hash" in output
        assert "zipper" in output


class TestTelemetryAndRecorder(object):
    def _campaign_args(self, *extra):
        return ("--seed", "5", "sweep", "campaign",
                "--zones", "us-west-1a,us-west-1b", "--seeds", "0,1",
                "--polls", "2", "--endpoints", "3",
                "--requests", "150") + extra

    def test_telemetry_and_record_do_not_change_output(self, tmp_path):
        serial_json = str(tmp_path / "serial.json")
        shipped_json = str(tmp_path / "shipped.json")
        record_dir = str(tmp_path / "run")
        code1, _ = run_cli(*self._campaign_args(
            "--workers", "1", "--json", serial_json))
        code2, output = run_cli(*self._campaign_args(
            "--workers", "2", "--telemetry", "--record", record_dir,
            "--json", shipped_json))
        assert code1 == code2 == 0
        assert "recorded {}".format(record_dir) in output
        with open(serial_json) as f1, open(shipped_json) as f2:
            assert f1.read() == f2.read()

    def test_record_artifacts_round_trip(self, tmp_path):
        from repro.obs.manifest import RunManifest
        record_dir = str(tmp_path / "run")
        code, _ = run_cli(*self._campaign_args(
            "--workers", "2", "--telemetry", "--record", record_dir))
        assert code == 0
        manifest = RunManifest.load(record_dir)
        assert manifest.data["status"] == "complete"
        assert manifest.data["kind"] == "sweep-campaign"
        assert manifest.data["seed"] == 5
        assert manifest.data["grid_hash"]
        assert manifest.data["summary"] == {"kind": "campaign",
                                            "cells": 4}
        events = {event["event"] for event in manifest.events()}
        assert "sweep.start" in events
        assert "sweep.cell" in events
        assert "sweep.telemetry" in events
        metrics = manifest.metrics()
        assert metrics[("sweep_cells_total",)] == 4.0
        traces = manifest.traces()
        roots = [spans[0]["name"] for spans in traces if spans]
        assert "sweep" in roots

    def test_sweep_serve_flag_announces_endpoint(self):
        code, output = run_cli(*self._campaign_args("--serve", "0"))
        assert code == 0
        assert "obs: serving http://127.0.0.1:" in output

    def test_record_on_failure_is_marked_failed(self, tmp_path):
        from repro.obs.manifest import RunManifest
        record_dir = str(tmp_path / "run")
        with pytest.raises(Exception):
            run_cli("--seed", "5", "sweep", "campaign",
                    "--zones", "no-such-zone", "--seeds", "0",
                    "--record", record_dir)
        manifest = RunManifest.load(record_dir)
        assert manifest.data["status"] == "failed"

    def test_characterize_record(self, tmp_path):
        from repro.obs.manifest import RunManifest
        record_dir = str(tmp_path / "run")
        code, output = run_cli("--seed", "3", "characterize",
                               "us-east-2a", "--polls", "2",
                               "--record", record_dir)
        assert code == 0
        assert "recorded" in output
        manifest = RunManifest.load(record_dir)
        assert manifest.data["kind"] == "characterize"
        assert manifest.data["status"] == "complete"
        # The single-zone path installs the facade on the cloud, so the
        # recorded event log holds the campaign's cloudsim activity.
        assert manifest.events()


class TestObsModes(object):
    def test_demo_record(self, tmp_path):
        from repro.obs.manifest import RunManifest
        record_dir = str(tmp_path / "run")
        code, output = run_cli("--seed", "7", "obs", "--requests", "10",
                               "--polls", "2", "--record", record_dir)
        assert code == 0
        assert "recorded {}".format(record_dir) in output
        manifest = RunManifest.load(record_dir)
        assert manifest.data["kind"] == "obs-demo"
        assert manifest.data["status"] == "complete"
        assert manifest.events()
        assert manifest.traces()

    def test_serve_runs_rounds_and_exits(self):
        code, output = run_cli("--seed", "7", "obs", "serve",
                               "--port", "0", "--rounds", "2",
                               "--interval", "0", "--requests", "5",
                               "--polls", "2")
        assert code == 0
        assert "obs: serving http://127.0.0.1:" in output
        assert "round 1/2" in output
        assert "round 2/2" in output

    def test_tail_renders_live_endpoint(self):
        from repro.obs import Observability, ObsServer
        obs = Observability()
        obs.registry.counter("sweep_cells_total").inc(3)
        with ObsServer(obs, port=0) as server:
            address = "{}:{}".format(*server.address)
            code, output = run_cli("obs", "tail", "--connect", address,
                                   "--rounds", "1")
        assert code == 0
        assert "cells: 3 done" in output

    def test_tail_requires_connect(self):
        code, output = run_cli("obs", "tail")
        assert code == 2
        assert "--connect" in output

    def test_tail_unreachable_endpoint_fails_cleanly(self):
        code, output = run_cli("obs", "tail", "--connect",
                               "127.0.0.1:9", "--rounds", "1")
        assert code == 1
        assert "scrape" in output
