"""Temporal drift processes."""

import pytest

from repro.common.distributions import (
    CategoricalDistribution,
    absolute_percentage_error,
)
from repro.common.errors import ConfigurationError
from repro.common.units import DAYS, HOURS
from repro.cloudsim.drift import DriftProcess, DriftProfile
from tests.helpers import make_zone


def base_shares():
    return CategoricalDistribution.from_shares(
        {"xeon-2.5": 0.4, "xeon-3.0": 0.3, "xeon-2.9": 0.3})


def ape_between(shares_a, shares_b):
    return absolute_percentage_error(
        CategoricalDistribution.from_shares(shares_a),
        CategoricalDistribution.from_shares(shares_b))


class TestDriftProfile(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftProfile(daily_sigma=-1)
        with pytest.raises(ConfigurationError):
            DriftProfile(excursion_prob=2.0)

    def test_presets_exist(self):
        assert DriftProfile.stable().daily_sigma < (
            DriftProfile.volatile().daily_sigma)
        assert DriftProfile.frozen().daily_sigma == 0.0


class TestDriftProcess(object):
    def make(self, profile, seed=0):
        return DriftProcess("z", base_shares(), base_hosts=100,
                            profile=profile, seed=seed)

    def test_day_zero_matches_base(self):
        process = self.make(DriftProfile.frozen())
        shares, hosts = process.target_for(0, 0)
        assert ape_between(shares, base_shares().shares()) < 1e-6
        assert hosts == 100

    def test_frozen_never_moves(self):
        process = self.make(DriftProfile.frozen())
        shares, hosts = process.target_for(13, 7)
        assert ape_between(shares, base_shares().shares()) < 1e-6
        assert hosts == 100

    def test_deterministic_across_instances(self):
        a = self.make(DriftProfile.volatile(), seed=5)
        b = self.make(DriftProfile.volatile(), seed=5)
        assert a.target_for(7, 3) == b.target_for(7, 3)

    def test_query_order_does_not_matter(self):
        a = self.make(DriftProfile.volatile(), seed=5)
        late_first = a.target_for(10, 0)
        b = self.make(DriftProfile.volatile(), seed=5)
        for day in range(10):
            b.target_for(day, 0)
        assert b.target_for(10, 0) == late_first

    def test_volatile_moves_far_within_two_days(self):
        # EX-4/Figure 7: volatile zones reach 20-50 % APE by day two.
        apes = []
        for seed in range(8):
            process = self.make(DriftProfile.volatile(), seed=seed)
            day0, _ = process.target_for(0, 0)
            day2, _ = process.target_for(2, 0)
            apes.append(ape_between(day0, day2))
        assert max(apes) > 20.0
        assert sum(apes) / len(apes) > 10.0

    def test_stable_stays_close_for_two_weeks(self):
        # EX-4/Figure 7: stable zones hold <= ~10 % APE for two weeks.
        for seed in range(5):
            process = self.make(DriftProfile.stable(), seed=seed)
            day0, _ = process.target_for(0, 0)
            day13, _ = process.target_for(13, 0)
            assert ape_between(day0, day13) < 15.0

    def test_capacity_walk_bounded(self):
        process = self.make(DriftProfile.volatile(), seed=3)
        for day in range(14):
            _, hosts = process.target_for(day, 0)
            assert 40 <= hosts <= 250

    def test_shares_always_normalized(self):
        process = self.make(DriftProfile.volatile(), seed=9)
        for day in range(14):
            shares, _ = process.target_for(day, day % 24)
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_hardware_event_can_introduce_cpu(self):
        profile = DriftProfile(daily_sigma=0.1, hardware_event_rate=1.0,
                               candidate_cpus=("amd-epyc",))
        process = self.make(profile, seed=1)
        shares, _ = process.target_for(5, 0)
        assert "amd-epyc" in shares


class TestZoneDriftHook(object):
    def test_apply_if_due_rebalances_on_hour_change(self):
        zone = make_zone()
        process = DriftProcess(zone.zone_id, zone.cpu_slot_shares(),
                               base_hosts=16,
                               profile=DriftProfile.volatile(), seed=2)
        zone.attach_drift(process)
        before = zone.cpu_slot_shares().shares()
        zone.clock.advance(3 * DAYS)
        zone.place_batch("fn", 10, duration=0.25, window=0.2)
        after = zone.cpu_slot_shares().shares()
        assert ape_between(before, after) > 1.0

    def test_no_rebalance_within_same_hour(self):
        zone = make_zone()
        process = DriftProcess(zone.zone_id, zone.cpu_slot_shares(),
                               base_hosts=16,
                               profile=DriftProfile.volatile(), seed=2)
        zone.attach_drift(process)
        assert not process.apply_if_due(zone, zone.clock.now)

    def test_rebalance_fires_each_hour(self):
        zone = make_zone()
        process = DriftProcess(zone.zone_id, zone.cpu_slot_shares(),
                               base_hosts=16,
                               profile=DriftProfile.stable(), seed=2)
        zone.attach_drift(process)
        zone.clock.advance(1 * HOURS + 1)
        assert process.apply_if_due(zone, zone.clock.now)
