"""The deterministic parallel experiment engine.

The headline contract is verified here: for a mixed grid of campaign,
progressive, and routing-study cells, ``workers=4`` produces output
byte-identical to the serial reference executor.
"""

import json
import pickle

import pytest

from repro import reporting
from repro.common.errors import (
    ConfigurationError,
    SweepError,
    SweepFailure,
)
from repro.engine import (
    CampaignTask,
    CloudSpec,
    Grid,
    ProgressiveTask,
    StudyTask,
    SweepEngine,
    SweepProgress,
    SweepTask,
    TemporalTask,
    run_sweep,
)
from repro.obs import Observability


# -- CloudSpec ----------------------------------------------------------------

class TestCloudSpec(object):
    def test_build_restricted_regions(self):
        spec = CloudSpec.for_zones(["us-west-1a", "eu-north-1a"], seed=3)
        cloud = spec.build()
        assert sorted(cloud.regions) == ["eu-north-1", "us-west-1"]
        assert cloud.seed == 3

    def test_for_zones_infers_provider(self):
        assert CloudSpec.for_zones(["us-west-1a"]).aws_only
        assert not CloudSpec.for_zones(["us-west-1a", "lon1"]).aws_only

    def test_with_seed_is_a_fresh_value(self):
        spec = CloudSpec.for_zones(["us-west-1a"], seed=1)
        other = spec.with_seed(9)
        assert other.seed == 9 and spec.seed == 1
        assert other.regions == spec.regions

    def test_value_semantics_and_dict_round_trip(self):
        spec = CloudSpec(seed=5, aws_only=False, regions=("us-west-1",))
        assert spec == CloudSpec.from_dict(spec.to_dict())
        assert spec != spec.with_seed(6)
        assert len({spec, CloudSpec.from_dict(spec.to_dict())}) == 1

    def test_build_with_account_matches_zone_provider(self):
        cloud, account = CloudSpec.for_zones(["lon1"]).build_with_account(
            "lon1")
        assert account.provider.name == "do"
        assert "lon1" in cloud.regions

    def test_for_zones_needs_zones(self):
        with pytest.raises(ConfigurationError):
            CloudSpec.for_zones([])


# -- Grid ---------------------------------------------------------------------

class TestGrid(object):
    def test_row_major_enumeration(self):
        grid = Grid([("zone", ["a", "b"]), ("seed", [0, 1, 2])])
        cells = list(grid.cells())
        assert len(grid) == 6 == len(cells)
        assert [c.index for c in cells] == list(range(6))
        assert cells[0].key == (("zone", "a"), ("seed", 0))
        assert cells[3].key == (("zone", "b"), ("seed", 0))

    def test_random_access_matches_iteration(self):
        grid = Grid([("zone", ["a", "b", "c"]), ("seed", [0, 1]),
                     ("policy", ["x", "y"])], root_seed=7)
        for cell in grid.cells():
            assert grid.cell(cell.index) == cell
        with pytest.raises(ConfigurationError):
            grid.cell(len(grid))

    def test_seed_depends_on_key_not_order(self):
        forward = Grid([("zone", ["a", "b"]), ("seed", [0, 1])],
                       root_seed=42)
        seeds = {cell.key: cell.seed for cell in forward.cells()}
        # The same key yields the same seed regardless of where it falls
        # in the enumeration (axis values reordered).
        shuffled = Grid([("zone", ["b", "a"]), ("seed", [1, 0])],
                        root_seed=42)
        for cell in shuffled.cells():
            key = tuple(sorted(cell.key))
            match = next(k for k in seeds if tuple(sorted(k)) == key)
            assert seeds[match] == cell.seed

    def test_namespace_partitions_seed_streams(self):
        a = Grid([("zone", ["a"])], root_seed=1, namespace="x")
        b = Grid([("zone", ["a"])], root_seed=1, namespace="y")
        assert a.cell(0).seed != b.cell(0).seed

    def test_distinct_cells_distinct_seeds(self):
        grid = Grid([("zone", ["a", "b", "c", "d"]),
                     ("seed", list(range(50)))])
        seeds = [cell.seed for cell in grid.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Grid([])
        with pytest.raises(ConfigurationError):
            Grid([("zone", [])])
        with pytest.raises(ConfigurationError):
            Grid([("zone", ["a"]), ("zone", ["b"])])


# -- tasks --------------------------------------------------------------------

def _tiny_campaign_task(seed=0, zone="us-west-1a"):
    return CampaignTask(CloudSpec.for_zones([zone], seed=seed), zone,
                        endpoints=3, n_requests=150, max_polls=2)


class TestTasks(object):
    def test_tasks_pickle(self):
        tasks = [
            _tiny_campaign_task(),
            ProgressiveTask(CloudSpec.for_zones(["us-west-1b"], seed=1),
                            "us-west-1b", endpoints=3, n_requests=100),
            TemporalTask(CloudSpec.for_zones(["us-west-1a"], seed=2),
                         "us-west-1a", mode="hourly", periods=2,
                         polls_per_period=2, endpoints=3, n_requests=100),
            StudyTask(CloudSpec.for_zones(["us-west-1a", "us-west-1b"],
                                          seed=3),
                      "sha1_hash", ("us-west-1a", "us-west-1b"), days=1,
                      burst_size=50, sampling_count=3),
        ]
        clones = pickle.loads(pickle.dumps(tasks))
        assert [t.kind for t in clones] == ["campaign", "progressive",
                                            "temporal", "study"]

    def test_campaign_task_runs_in_process(self):
        result = _tiny_campaign_task(seed=11).run()
        assert result.polls_run == 2
        assert result.total_requests == 300

    def test_auto_requests_respects_quota(self):
        # DigitalOcean's quota is far below 1000; auto must clamp to it.
        task = CampaignTask(CloudSpec.for_zones(["lon1"], seed=0), "lon1",
                            endpoints=2, max_polls=1)
        result = task.run()
        cloud = CloudSpec.for_zones(["lon1"]).build()
        quota = cloud.region_of_zone("lon1").provider.concurrency_quota
        assert result.total_requests == min(1000, quota)

    def test_temporal_mode_validation(self):
        with pytest.raises(ConfigurationError):
            TemporalTask(CloudSpec.for_zones(["us-west-1a"]), "us-west-1a",
                         mode="weekly")

    def test_study_task_needs_zones(self):
        with pytest.raises(ConfigurationError):
            StudyTask(CloudSpec(seed=0), "sha1_hash", ())

    def test_task_rejects_raw_seed(self):
        with pytest.raises(ConfigurationError):
            SweepTask(42)


# -- engine determinism -------------------------------------------------------

def _mixed_tasks(root_seed=21):
    grid = Grid([("zone", ["us-west-1a", "us-west-1b"]),
                 ("seed", [0, 1])], root_seed=root_seed, namespace="mixed")
    cells = list(grid.cells())
    spec = lambda cell, zones: CloudSpec.for_zones(zones, seed=cell.seed)  # noqa: E731
    zone_of = lambda cell: dict(cell.key)["zone"]  # noqa: E731
    return [
        CampaignTask(spec(cells[0], [zone_of(cells[0])]),
                     zone_of(cells[0]), endpoints=3, n_requests=150,
                     max_polls=2),
        ProgressiveTask(spec(cells[1], [zone_of(cells[1])]),
                        zone_of(cells[1]), endpoints=4, n_requests=150),
        CampaignTask(spec(cells[2], [zone_of(cells[2])]),
                     zone_of(cells[2]), endpoints=3, n_requests=150,
                     max_polls=2),
        StudyTask(spec(cells[3], ["us-west-1a", "us-west-1b"]),
                  "sha1_hash", ("us-west-1a", "us-west-1b"), days=1,
                  burst_size=50, sampling_count=3),
    ]


def _serialize(results):
    payload = []
    for result in results:
        if hasattr(result, "savings_summary"):
            payload.append(reporting.study_result_to_dict(result))
        elif hasattr(result, "ape_curve"):
            payload.append({
                "campaign": reporting.campaign_to_dict(result.campaign),
                "curve": result.ape_curve(),
            })
        else:
            payload.append(reporting.campaign_to_dict(result))
    return json.dumps(payload, sort_keys=True).encode()


class TestEngineDeterminism(object):
    def test_mixed_grid_workers4_byte_identical_to_serial(self):
        serial = SweepEngine(workers=1).run(_mixed_tasks())
        pooled = SweepEngine(workers=4).run(_mixed_tasks())
        assert _serialize(serial) == _serialize(pooled)

    def test_chunk_size_does_not_change_results(self):
        baseline = _serialize(SweepEngine(workers=1).run(_mixed_tasks()))
        for chunk_size in (1, 2, 10):
            engine = SweepEngine(workers=2, chunk_size=chunk_size)
            assert _serialize(engine.run(_mixed_tasks())) == baseline

    def test_results_keep_task_order(self):
        tasks = [_tiny_campaign_task(seed=s) for s in range(6)]
        expected = [t.run().ground_truth().shares() for t in tasks]
        pooled = SweepEngine(workers=3).run(tasks)
        assert [r.ground_truth().shares() for r in pooled] == expected


# -- engine mechanics ---------------------------------------------------------

class FailingTask(SweepTask):
    kind = "failing"

    def __init__(self, message="boom"):
        super().__init__(CloudSpec(seed=0))
        self.message = message

    def run(self):
        raise ValueError(self.message)


class UnpicklableResultTask(SweepTask):
    """Runs fine, but its result cannot travel back across a process
    boundary — the pool loses the whole chunk, not just the cell."""

    kind = "unpicklable-result"

    def __init__(self):
        super().__init__(CloudSpec(seed=0))

    def run(self):
        return lambda: None


class TestEngineMechanics(object):
    def test_empty_sweep(self):
        assert SweepEngine(workers=4).run([]) == []

    def test_serial_mode_reported(self):
        engine = SweepEngine(workers=1)
        engine.run([_tiny_campaign_task()])
        assert engine.last_mode == "serial"

    def test_pool_mode_reported(self):
        engine = SweepEngine(workers=2)
        engine.run([_tiny_campaign_task(s) for s in (0, 1)])
        assert engine.last_mode == "pool"

    def test_graceful_fallback_without_pool(self):
        engine = SweepEngine(workers=2, start_method="no-such-method")
        results = engine.run([_tiny_campaign_task(s) for s in (0, 1)])
        assert engine.last_mode == "serial-fallback"
        assert _serialize(results) == _serialize(
            SweepEngine(workers=1).run(
                [_tiny_campaign_task(s) for s in (0, 1)]))

    def test_failures_collected_deterministically(self):
        tasks = [FailingTask("second"), _tiny_campaign_task(),
                 FailingTask("first-by-index")]
        tasks[0].message = "a"
        tasks[2].message = "b"
        with pytest.raises(SweepError) as excinfo:
            SweepEngine(workers=2).run(tasks)
        failures = excinfo.value.failures
        assert [index for index, _, _ in failures] == [0, 2]
        assert failures[0][1] == "ValueError"

    def test_serial_also_raises_sweep_error(self):
        with pytest.raises(SweepError):
            SweepEngine(workers=1).run([FailingTask()])

    def test_run_sweep_wrapper(self):
        results = run_sweep([_tiny_campaign_task()], workers=1)
        assert results[0].polls_run == 2

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=2, chunk_size=0)


# -- start-method selection -----------------------------------------------------

class TestStartMethod(object):
    def test_forkserver_preferred_when_available(self):
        import multiprocessing
        engine = SweepEngine(workers=2)
        resolved = engine._resolve_start_method()
        available = multiprocessing.get_all_start_methods()
        if "forkserver" in available:
            assert resolved == "forkserver"
        else:
            assert resolved in available

    def test_explicit_start_method_wins(self):
        engine = SweepEngine(workers=2, start_method="spawn")
        assert engine._resolve_start_method() == "spawn"

    def test_start_method_surfaced_in_sweep_start_event(self):
        obs = Observability()
        engine = SweepEngine(workers=2, obs=obs)
        engine.run([_tiny_campaign_task(s) for s in (0, 1)])
        start = obs.recorder.events("sweep.start")[0]
        assert start.fields["backend"] == "local"
        assert start.fields["start_method"] == \
            engine._resolve_start_method()

    def test_serial_runs_report_serial_start_method(self):
        obs = Observability()
        SweepEngine(workers=1, obs=obs).run([_tiny_campaign_task()])
        start = obs.recorder.events("sweep.start")[0]
        assert start.fields["start_method"] == "serial"


# -- chunk-loss vs task-bug failures --------------------------------------------

class TestChunkFailureMarker(object):
    def test_pool_chunk_loss_is_tagged(self):
        tasks = [UnpicklableResultTask(), _tiny_campaign_task(seed=1)]
        with pytest.raises(SweepError) as excinfo:
            SweepEngine(workers=2, chunk_size=1).run(tasks)
        error = excinfo.value
        assert len(error.chunk_failures()) == 1
        assert error.task_failures() == []
        failure = error.chunk_failures()[0]
        assert failure.index == 0 and failure.chunk_failure
        assert "[chunk lost]" in str(error)

    def test_task_bug_is_not_tagged(self):
        tasks = [FailingTask(), _tiny_campaign_task()]
        with pytest.raises(SweepError) as excinfo:
            SweepEngine(workers=2, chunk_size=1).run(tasks)
        error = excinfo.value
        assert error.chunk_failures() == []
        assert [f.error_type for f in error.task_failures()] == \
            ["ValueError"]
        assert "[chunk lost]" not in str(error)

    def test_sweep_failure_unpacks_as_a_plain_triple(self):
        failure = SweepFailure(3, "ValueError", "boom", chunk_failure=True)
        index, error_type, message = failure
        assert (index, error_type, message) == (3, "ValueError", "boom")
        assert failure == (3, "ValueError", "boom")
        assert failure.chunk_failure

    def test_sweep_failure_pickle_keeps_the_marker(self):
        failure = SweepFailure(1, "E", "m", chunk_failure=True)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == (1, "E", "m")
        assert clone.chunk_failure

    def test_chunk_failure_flag_rides_the_cell_event(self):
        obs = Observability()
        with pytest.raises(SweepError):
            SweepEngine(workers=2, chunk_size=1, obs=obs).run(
                [UnpicklableResultTask(), _tiny_campaign_task(seed=1)])
        flags = {c.fields["index"]: c.fields["chunk_failure"]
                 for c in obs.recorder.events("sweep.cell")}
        assert flags == {0: True, 1: False}


# -- observability integration ------------------------------------------------

class TestEngineObservability(object):
    def test_events_metrics_and_progress(self):
        obs = Observability()
        seen = []
        progress = SweepProgress(obs.bus,
                                 on_cell=lambda d, t: seen.append((d, t)))
        tasks = [_tiny_campaign_task(s) for s in range(3)]
        SweepEngine(workers=2, obs=obs).run(tasks)
        assert progress.total == 3
        assert progress.done == 3
        assert progress.failed == 0
        assert progress.mode == "pool"
        assert 0.0 < progress.utilization <= 1.0
        assert seen == [(1, 3), (2, 3), (3, 3)]
        registry = obs.registry
        assert registry.counter("sweep_cells_total").value == 3
        assert registry.gauge("sweep_workers").value == 2
        assert 0.0 < registry.gauge("sweep_worker_utilization").value <= 1.0
        assert registry.histogram("sweep_cell_wall_ms").count == 3
        summary = progress.summary()
        assert summary["cells"] == 3 and summary["mode"] == "pool"

    def test_fallback_event_recorded(self):
        obs = Observability()
        progress = SweepProgress(obs.bus)
        engine = SweepEngine(workers=2, obs=obs,
                             start_method="no-such-method")
        engine.run([_tiny_campaign_task(s) for s in (0, 1)])
        assert progress.fallback_reason == "process pool unavailable"
        assert progress.mode == "serial-fallback"
        assert obs.registry.counter("sweep_fallbacks_total").value == 1

    def test_failure_counted(self):
        obs = Observability()
        progress = SweepProgress(obs.bus)
        with pytest.raises(SweepError):
            SweepEngine(workers=1, obs=obs).run([FailingTask()])
        assert progress.failed == 1
        assert obs.registry.counter(
            "sweep_cell_failures_total").value == 1

    def test_progress_detach(self):
        obs = Observability()
        progress = SweepProgress(obs.bus)
        progress.detach()
        SweepEngine(workers=1, obs=obs).run([_tiny_campaign_task()])
        assert progress.done == 0
