"""Shared pytest fixtures."""

import pytest

from repro.simclock import SimClock
from tests.helpers import make_cloud, make_zone


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def zone():
    return make_zone()


@pytest.fixture
def cloud():
    return make_cloud()


@pytest.fixture
def aws_account(cloud):
    return cloud.create_account("test-account", "aws")


@pytest.fixture(scope="session")
def catalog_cloud_readonly():
    """The full 41-region catalog, shared read-only across tests.

    Tests that mutate zone state (polls, invocations) must build their own
    cloud instead.
    """
    from repro.cloudsim import build_global_catalog
    return build_global_catalog(seed=1234)
