"""Carbon intensity model and green routing policies."""

import pytest

from repro.common.errors import (
    CharacterizationError,
    ConfigurationError,
    UnknownRegionError,
)
from repro.common.units import HOURS, Money
from repro.cloudsim.carbon import (
    CarbonIntensityModel,
    grams_co2e,
)
from repro.cloudsim.network import GeoPoint
from repro.core import CharacterizationStore, ZoneRanker
from repro.core.green import CarbonAwarePolicy, MultiObjectivePolicy
from repro.core.policies import RoutingView
from repro.sampling import CharacterizationBuilder
from tests.helpers import make_cloud

FACTORS = {"xeon-2.5": 1.0, "xeon-2.9": 1.25, "xeon-3.0": 0.9}


class TestCarbonModel(object):
    def test_hydro_grids_are_cleaner(self):
        model = CarbonIntensityModel(noise_sigma=0.0)
        assert model.baseline("eu-north-1") < model.baseline("af-south-1")
        assert model.baseline("sa-east-1") < model.baseline("ap-south-1")

    def test_unknown_region(self):
        with pytest.raises(UnknownRegionError):
            CarbonIntensityModel().baseline("mars-1")

    def test_solar_dip_at_local_noon(self):
        model = CarbonIntensityModel(noise_sigma=0.0,
                                     solar_dip_fraction=0.3)
        noon = model.intensity("us-east-2", 13 * HOURS)
        midnight = model.intensity("us-east-2", 1 * HOURS)
        assert noon < midnight

    def test_longitude_shifts_solar_window(self):
        model = CarbonIntensityModel(noise_sigma=0.0,
                                     solar_dip_fraction=0.3)
        # 13:00 UTC is morning in Ohio but mid-afternoon in Frankfurt.
        ohio = model.intensity("us-east-2", 13 * HOURS, lon=-83.0)
        utc = model.intensity("us-east-2", 13 * HOURS, lon=0.0)
        assert ohio != utc

    def test_noise_deterministic_per_hour(self):
        model = CarbonIntensityModel(seed=3)
        assert model.intensity("us-east-2", 500.0) == model.intensity(
            "us-east-2", 900.0)  # same hour bucket
        assert model.intensity("us-east-2", 500.0) != model.intensity(
            "us-east-2", 2 * HOURS + 500.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CarbonIntensityModel(solar_dip_fraction=1.5)

    def test_grams_co2e_scales_with_memory_and_duration(self):
        small = grams_co2e(1024, 1.0, 400.0)
        assert grams_co2e(2048, 1.0, 400.0) == pytest.approx(2 * small)
        assert grams_co2e(1024, 2.0, 400.0) == pytest.approx(2 * small)
        assert small > 0


def make_view(cloud, profiles, client=None, now=0.0):
    store = CharacterizationStore()
    for zone, counts in profiles.items():
        builder = CharacterizationBuilder(zone)
        builder.add_poll(counts, cost=Money(0), timestamp=now)
        store.put(builder.snapshot())
    return RoutingView(
        characterizations=store.view(sorted(profiles)),
        factors=FACTORS,
        base_seconds=8.0,
        ranker=ZoneRanker(store, cloud=cloud),
        candidate_zones=sorted(profiles),
        client=client,
        now=now,
    )


@pytest.fixture
def two_region_cloud():
    from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
    from repro.cloudsim.host import HostPool
    from repro.cloudsim.provider import AWS_LAMBDA
    from repro.cloudsim.region import Region

    cloud = make_cloud(seed=3, region_name="us-east-2",
                       geo=(40.0, -83.0))
    clean = Region("eu-north-1", AWS_LAMBDA, GeoPoint(59.3, 18.1))
    clean.add_zone(AvailabilityZone(
        "eu-north-1a",
        [HostPool("xeon-2.5", 6, 64), HostPool("xeon-3.0", 6, 64)],
        cloud.clock, scaling=ScalingPolicy(max_surge_slots=64), rng=3))
    cloud.add_region(clean)
    return cloud


class TestCarbonAwarePolicy(object):
    def test_prefers_clean_grid(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {
            "us-east-2a": {"xeon-2.5": 10},
            "eu-north-1a": {"xeon-2.5": 10},
        }, client=GeoPoint(40.7, -74.0))
        policy = CarbonAwarePolicy(cloud, model, max_rtt=10.0)
        assert policy.decide(view).zone_id == "eu-north-1a"

    def test_latency_bound_overrides_carbon(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {
            "us-east-2a": {"xeon-2.5": 10},
            "eu-north-1a": {"xeon-2.5": 10},
        }, client=GeoPoint(40.7, -74.0))
        policy = CarbonAwarePolicy(cloud, model, max_rtt=0.06)
        assert policy.decide(view).zone_id == "us-east-2a"

    def test_no_zone_within_bound_raises(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {"eu-north-1a": {"xeon-2.5": 10}},
                         client=GeoPoint(-33.9, 151.2))
        policy = CarbonAwarePolicy(cloud, model, max_rtt=0.02)
        with pytest.raises(CharacterizationError):
            policy.decide(view)


class TestMultiObjectivePolicy(object):
    def test_cost_only_matches_regional_choice(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {
            "us-east-2a": {"xeon-3.0": 10},   # fast hardware, dirty grid
            "eu-north-1a": {"xeon-2.5": 10},  # slow hardware, clean grid
        })
        policy = MultiObjectivePolicy(cloud, model, cost_weight=1.0)
        assert policy.decide(view).zone_id == "us-east-2a"

    def test_carbon_weight_flips_the_choice(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {
            "us-east-2a": {"xeon-3.0": 10},
            "eu-north-1a": {"xeon-2.5": 10},
        })
        policy = MultiObjectivePolicy(cloud, model, cost_weight=1.0,
                                      carbon_weight=2.0)
        assert policy.decide(view).zone_id == "eu-north-1a"

    def test_latency_weight_needs_client(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {"us-east-2a": {"xeon-2.5": 10}})
        policy = MultiObjectivePolicy(cloud, model, cost_weight=1.0,
                                      latency_weight=1.0)
        with pytest.raises(ConfigurationError):
            policy.decide(view)

    def test_latency_weight_prefers_near_zone(self, two_region_cloud):
        cloud = two_region_cloud
        model = CarbonIntensityModel(noise_sigma=0.0)
        view = make_view(cloud, {
            "us-east-2a": {"xeon-2.5": 10},
            "eu-north-1a": {"xeon-2.5": 10},
        }, client=GeoPoint(40.7, -74.0))
        policy = MultiObjectivePolicy(cloud, model, cost_weight=1.0,
                                      latency_weight=5.0)
        assert policy.decide(view).zone_id == "us-east-2a"

    def test_weights_validated(self, two_region_cloud):
        model = CarbonIntensityModel()
        with pytest.raises(ConfigurationError):
            MultiObjectivePolicy(two_region_cloud, model, cost_weight=-1)
        with pytest.raises(ConfigurationError):
            MultiObjectivePolicy(two_region_cloud, model, cost_weight=0,
                                 carbon_weight=0, latency_weight=0)
