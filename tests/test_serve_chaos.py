"""Gateway chaos: injected faults degrade service, never crash it.

A brownout collapses the backend mid-run; the gateway must keep its
loop alive, surface the refused work as 503-style outcomes, trigger
re-characterization, and recover once the fault window closes.  SIGTERM
must drain in-flight coalesced batches before exit.
"""

import os
import signal
import subprocess
import sys
import time

from repro.faults.injector import FaultInjector
from repro.faults.models import Brownout
from repro.faults.schedule import FaultSchedule
from repro.serve import GatewayConfig
from tests.test_serve import ZONES, assert_conservation, make_gateway

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _brownout(start, end, failure_rate=1.0):
    """A total brownout over every rig zone for ``[start, end)``."""
    return FaultSchedule([Brownout(failure_rate=failure_rate,
                                   capacity_factor=0.05,
                                   zones=list(ZONES),
                                   start=start, end=end)])


def _phase_outcomes(events, start, end):
    """(served, failed) per phase from ``serve.batch`` event timestamps."""
    phases = {"before": [0, 0], "during": [0, 0], "after": [0, 0]}
    for event in events:
        if event.timestamp < start:
            phase = "before"
        elif event.timestamp < end:
            phase = "during"
        else:
            phase = "after"
        phases[phase][0] += event.fields["served"]
        phases[phase][1] += event.fields["failed"]
    return phases


class TestBrownout(object):
    def test_brownout_degrades_then_recovers(self):
        # 300 rps is comfortably inside the two test zones' capacity, so
        # every pre/post-window failure is attributable to the fault.
        config = GatewayConfig(flush_deadline_s=0.1)
        gateway = make_gateway(seed=13, rate_rps=300.0, config=config)
        FaultInjector(_brownout(2.0, 4.0), seed=13).install(gateway.cloud)
        report = gateway.run_sync(6.0)

        # The loop survived the whole window and kept its books straight.
        assert report.sim_seconds > 5.9
        assert_conservation(report)
        assert report.failed > 0
        assert report.served > 0

        phases = _phase_outcomes(
            gateway.obs.recorder.events("serve.batch"), 2.0, 4.0)
        for phase in ("before", "during", "after"):
            assert sum(phases[phase]) > 0, phase
        rejected_rate = {
            phase: failed / (served + failed)
            for phase, (served, failed) in phases.items()}
        # Healthy before, degraded during, healthy again after.  The
        # brownout collapses *placement* capacity to 5%, but FIs that
        # were already warm keep serving — so the degradation is a
        # rising 503 rate, not a total outage.
        assert rejected_rate["before"] < 0.05
        assert rejected_rate["during"] > 0.05
        assert rejected_rate["after"] < 0.05

    def test_brownout_failures_surface_as_503_outcomes(self):
        config = GatewayConfig(flush_deadline_s=0.1)
        gateway = make_gateway(seed=17, rate_rps=300.0, config=config)
        FaultInjector(_brownout(1.0, 2.0), seed=17).install(gateway.cloud)
        report = gateway.run_sync(3.0)
        registry = gateway.obs.registry
        failed = registry.counter("serve_requests_total", outcome="failed")
        assert failed.value == report.failed > 0

    def test_error_window_triggers_recharacterization(self):
        # A long brownout with a short cooldown: the failure-rate signal
        # must enqueue refresh attempts (which themselves may fail
        # against the browned-out zone — that must not crash either).
        config = GatewayConfig(recharacterize_cooldown_s=1.0,
                               flush_deadline_s=0.1,
                               recharacterize_failure_rate=0.05)
        gateway = make_gateway(seed=19, rate_rps=300.0, config=config)
        FaultInjector(_brownout(1.0, 5.0), seed=19).install(gateway.cloud)
        report = gateway.run_sync(6.0)
        assert_conservation(report)
        attempts = gateway.obs.recorder.events("serve.recharacterize")
        assert attempts
        assert all(e.fields["reason"] == "errors" for e in attempts)

    def test_scalar_path_survives_brownout(self):
        config = GatewayConfig(batch_floor=10 ** 6)  # force scalar
        gateway = make_gateway(seed=23, rate_rps=200.0, config=config)
        FaultInjector(_brownout(0.5, 1.5), seed=23).install(gateway.cloud)
        report = gateway.run_sync(2.0)
        assert report.batches_coalesced == 0
        assert report.failed > 0
        assert_conservation(report)


class TestSigtermDrain(object):
    def test_cli_sigterm_drains_and_finalizes(self, tmp_path):
        """SIGTERM mid-run: in-flight batches drain, the manifest
        finalizes complete, and the process exits 0."""
        record = tmp_path / "serve-run"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "--seed", "11", "serve",
             "--zones", "us-west-1a,us-west-1b", "--rps", "500",
             "--duration", "3600", "--pace", "0.05",
             "--record", str(record)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            time.sleep(8.0)  # let it characterize and serve a while
            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=60.0)[0]
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "served" in output
        assert "recorded" in output
        manifest = record / "manifest.json"
        assert manifest.exists()
        assert '"status": "complete"' in manifest.read_text()
