"""Robustness: headline results hold across seeds; size classes work.

The figure benches run at fixed seeds.  These integration tests re-run a
compressed EX-5 across several *different* seeds and assert the signs and
orderings that constitute the paper's claims — the reproduction should
not hinge on a lucky seed.
"""

import numpy as np
import pytest

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.common.errors import ConfigurationError
from repro.workloads import resolve_runtime_model


def run_mini_ex5(seed):
    cloud = build_sky(seed=seed, aws_only=True)
    account = cloud.create_account("robust", "aws")
    mesh = SkyMesh(cloud)
    zone = "us-west-1b"
    endpoints = {zone: mesh.deploy_sampling_endpoints(account, zone,
                                                      count=8)}
    mesh.register(cloud.deploy(
        account, zone, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    study = RoutingStudy(cloud, mesh, CharacterizationStore(),
                         workload_by_name("zipper"), [zone], endpoints,
                         days=5, burst_size=500, polls_per_day=6)
    result = study.run([
        BaselinePolicy(zone),
        RetryRoutingPolicy(zone, "retry_slow"),
        RetryRoutingPolicy(zone, "focus_fastest"),
    ])
    return result.savings_summary()


class TestSeedRobustness(object):
    @pytest.mark.parametrize("seed", [2, 17, 101])
    def test_retry_savings_positive_across_seeds(self, seed):
        summary = run_mini_ex5(seed)
        assert summary["retry_slow"]["cumulative_pct"] > 2.0
        assert summary["focus_fastest"]["cumulative_pct"] > 4.0

    @pytest.mark.parametrize("seed", [2, 17])
    def test_savings_magnitude_stays_in_band(self, seed):
        summary = run_mini_ex5(seed)
        for name in ("retry_slow", "focus_fastest"):
            assert summary[name]["cumulative_pct"] < 30.0


class TestSizeClasses(object):
    def test_scale_for_size(self):
        from repro.workloads.base import Workload
        assert Workload.scale_for_size("test") == 0.05
        assert Workload.scale_for_size("large") == 1.0
        with pytest.raises(ConfigurationError):
            Workload.scale_for_size("gigantic")

    def test_dynamic_function_accepts_size_class(self):
        from repro.dynfunc import DynamicFunctionRuntime
        runtime = DynamicFunctionRuntime()
        workload = workload_by_name("json_flattener")
        small = runtime.handle(workload.payload(args={"seed": 1,
                                                      "size": "small"}))
        test = runtime.handle(workload.payload(args={"seed": 1,
                                                     "size": "test"}))
        assert small.value["summary"]["pairs"] >= test.value["summary"][
            "pairs"]

    def test_explicit_scale_overrides_size(self):
        from repro.dynfunc import DynamicFunctionRuntime
        runtime = DynamicFunctionRuntime()
        workload = workload_by_name("sha1_hash")
        explicit = runtime.handle(workload.payload(
            args={"seed": 1, "scale": 0.05, "size": "large"}))
        assert explicit.value["summary"]

    def test_size_classes_grow_inputs(self):
        workload = workload_by_name("thumbnailer")
        small = workload.generate_input(
            np.random.default_rng(0),
            scale=workload.scale_for_size("test"))
        large = workload.generate_input(
            np.random.default_rng(0),
            scale=workload.scale_for_size("small"))
        assert large.shape[0] > small.shape[0]


class TestMemoryAwareMeshIntegration(object):
    def test_low_memory_rung_bills_more_seconds(self):
        from repro.workloads.registry import memory_aware_resolver
        cloud = build_sky(seed=51, aws_only=True)
        account = cloud.create_account("mem", "aws")
        payload = workload_by_name("sha1_hash").payload()
        runtimes = {}
        for memory_mb in (512, 2048):
            deployment = cloud.deploy(
                account, "us-east-2a", "dyn-{}".format(memory_mb),
                memory_mb,
                handler=UniversalDynamicFunctionHandler(
                    memory_aware_resolver(memory_mb)))
            invocation = cloud.invoke(deployment, payload=payload)
            runtimes[memory_mb] = invocation.runtime_s
            cloud.clock.advance(400.0)
        assert runtimes[512] > runtimes[2048] * 1.5
