"""Client-side dispatch with latency accounting."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import RetryPolicy
from repro.core.dispatcher import BurstDispatcher, LatencyDistribution
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import make_cloud


@pytest.fixture
def dispatch_setup():
    cloud = make_cloud(seed=91)
    account = cloud.create_account("dispatch", "aws")
    deployment = cloud.deploy(
        account, "test-1a", "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    return cloud, deployment


class TestLatencyDistribution(object):
    def test_percentiles_ordered(self):
        dist = LatencyDistribution([1.0, 2.0, 3.0, 4.0, 100.0])
        assert dist.p50 <= dist.p95 <= dist.p99 <= dist.max

    def test_summary_keys(self):
        summary = LatencyDistribution([1.0, 2.0]).summary()
        assert set(summary) == {"mean_s", "p50_s", "p95_s", "p99_s",
                                "max_s"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyDistribution([])


class TestDispatch(object):
    def test_baseline_dispatch(self, dispatch_setup):
        cloud, deployment = dispatch_setup
        dispatcher = BurstDispatcher(cloud, concurrency=50)
        result = dispatcher.dispatch(deployment,
                                     workload_by_name("sha1_hash"), 200)
        assert len(result.latency) == 200
        assert result.retries == 0
        assert result.total_cost > Money(0)
        # Latency ≈ RTT + workload runtime.
        assert result.latency.p50 > 2.0

    def test_retry_policy_adds_latency(self, dispatch_setup):
        cloud, deployment = dispatch_setup
        dispatcher = BurstDispatcher(cloud, concurrency=50)
        workload = workload_by_name("sha1_hash")
        baseline = dispatcher.dispatch(deployment, workload, 200)
        cloud.clock.advance(700.0)
        retry = RetryPolicy(["xeon-2.9"], max_retries=8)
        retried = dispatcher.dispatch(deployment, workload, 200,
                                      retry_policy=retry)
        assert retried.retries > 0
        assert retried.latency.p95 >= baseline.latency.p95 - 0.5
        # All completed requests avoided the banned CPU.
        assert set(retried.cpu_counts) == {"xeon-2.5"}

    def test_makespan_scales_with_concurrency(self, dispatch_setup):
        cloud, deployment = dispatch_setup
        workload = workload_by_name("sha1_hash")
        wide = BurstDispatcher(cloud, concurrency=200).dispatch(
            deployment, workload, 200)
        cloud.clock.advance(700.0)
        narrow = BurstDispatcher(cloud, concurrency=20).dispatch(
            deployment, workload, 200)
        assert narrow.makespan_s > wide.makespan_s

    def test_validation(self, dispatch_setup):
        cloud, deployment = dispatch_setup
        with pytest.raises(ConfigurationError):
            BurstDispatcher(cloud, concurrency=0)
        dispatcher = BurstDispatcher(cloud)
        with pytest.raises(ConfigurationError):
            dispatcher.dispatch(deployment,
                                workload_by_name("sha1_hash"), 0)

    def test_client_rtt_used(self, dispatch_setup):
        cloud, deployment = dispatch_setup
        from repro.cloudsim.network import GeoPoint
        dispatcher = BurstDispatcher(cloud, concurrency=50)
        workload = workload_by_name("sha1_hash")
        near = dispatcher.dispatch(deployment, workload, 100,
                                   rtt_s=0.01)
        cloud.clock.advance(700.0)
        far = dispatcher.dispatch(deployment, workload, 100,
                                  client=GeoPoint(-33.9, 151.2))
        assert far.latency.mean > near.latency.mean
