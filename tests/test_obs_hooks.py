"""The event bus: pub/sub semantics, no-op default, bounded recording."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.hooks import NULL_BUS, Event, EventBus, EventRecorder, NullBus


class TestEvent(object):
    def test_to_dict_flattens_fields(self):
        event = Event("az.placement", 12.5, {"zone": "a", "served": 10})
        assert event.to_dict() == {"event": "az.placement",
                                   "timestamp": 12.5, "zone": "a",
                                   "served": 10}


class TestNullBus(object):
    def test_emit_is_a_noop(self):
        assert NULL_BUS.emit("anything", 0.0, zone="a") is None

    def test_disabled(self):
        assert NULL_BUS.enabled is False

    def test_subscribe_raises(self):
        with pytest.raises(ConfigurationError):
            NULL_BUS.subscribe(lambda event: None)

    def test_singleton_is_shared(self):
        assert isinstance(NULL_BUS, NullBus)


class TestEventBus(object):
    def test_emit_returns_event(self):
        bus = EventBus()
        event = bus.emit("x", 1.0, a=1)
        assert event.name == "x"
        assert event.fields == {"a": 1}

    def test_delivery_order_matches_emission_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event.fields["n"]))
        for n in range(10):
            bus.emit("tick", float(n), n=n)
        assert seen == list(range(10))

    def test_all_subscribers_fire_before_named(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda event: order.append("all"))
        bus.subscribe(lambda event: order.append("named"), name="tick")
        bus.emit("tick", 0.0)
        assert order == ["all", "named"]

    def test_named_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event.name), name="a")
        bus.emit("a", 0.0)
        bus.emit("b", 0.0)
        assert seen == ["a"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(lambda event: seen.append(event))
        bus.emit("x", 0.0)
        unsubscribe()
        bus.emit("x", 1.0)
        assert len(seen) == 1

    def test_disabled_bus_drops_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event))
        bus.pause()
        assert bus.emit("x", 0.0) is None
        assert seen == []
        assert bus.emitted == 0
        bus.resume()
        bus.emit("x", 1.0)
        assert len(seen) == 1

    def test_non_callable_subscriber_rejected(self):
        with pytest.raises(ConfigurationError):
            EventBus().subscribe("not callable")

    def test_subscriber_count(self):
        bus = EventBus()
        bus.subscribe(lambda event: None)
        bus.subscribe(lambda event: None, name="x")
        assert bus.subscriber_count() == 2
        assert bus.subscriber_count("x") == 1
        assert bus.subscriber_count("y") == 0


class TestEventRecorder(object):
    def test_records_and_counts(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit("a", 0.0)
        bus.emit("b", 1.0)
        bus.emit("a", 2.0)
        assert len(recorder) == 3
        assert recorder.counts() == {"a": 2, "b": 1}
        assert recorder.count("a") == 2
        assert [event.name for event in recorder.events("a")] == ["a", "a"]

    def test_capacity_bounds_events_but_not_counts(self):
        bus = EventBus()
        recorder = EventRecorder(bus, capacity=5)
        for n in range(20):
            bus.emit("tick", float(n))
        assert len(recorder) == 5
        assert recorder.count("tick") == 20
        # The retained tail is the most recent five.
        assert [event.timestamp for event in recorder.events()] \
            == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_name_filter(self):
        bus = EventBus()
        recorder = EventRecorder(bus, names=["keep"])
        bus.emit("keep", 0.0)
        bus.emit("drop", 0.0)
        assert recorder.counts() == {"keep": 1}

    def test_detach_stops_recording(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit("a", 0.0)
        recorder.detach()
        bus.emit("a", 1.0)
        assert len(recorder) == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EventRecorder(capacity=0)

    def test_clear(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.emit("a", 0.0)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.counts() == {}
