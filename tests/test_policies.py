"""Routing policies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RegionalPolicy,
    RetryRoutingPolicy,
    ZoneRanker,
)
from repro.core.policies import RoutingView
from repro.sampling import CharacterizationBuilder

FACTORS = {"xeon-2.5": 1.0, "xeon-2.9": 1.25, "xeon-3.0": 0.9,
           "amd-epyc": 1.5}


def make_view(profiles):
    store = CharacterizationStore()
    for zone, counts in profiles.items():
        builder = CharacterizationBuilder(zone)
        builder.add_poll(counts, cost=Money(0), timestamp=0.0)
        store.put(builder.snapshot())
    ranker = ZoneRanker(store)
    return RoutingView(
        characterizations=store.view(sorted(profiles)),
        factors=FACTORS,
        base_seconds=8.0,
        ranker=ranker,
        candidate_zones=sorted(profiles),
    )


@pytest.fixture
def view():
    return make_view({
        "slow-zone": {"xeon-2.5": 30, "xeon-2.9": 50, "amd-epyc": 20},
        "fast-zone": {"xeon-2.5": 40, "xeon-3.0": 60},
    })


class TestBaseline(object):
    def test_fixed_zone_no_retry(self, view):
        decision = BaselinePolicy("slow-zone").decide(view)
        assert decision.zone_id == "slow-zone"
        assert decision.retry_policy is None

    def test_name(self):
        assert BaselinePolicy("z").name == "baseline"


class TestRegional(object):
    def test_routes_to_best_mix(self, view):
        decision = RegionalPolicy().decide(view)
        assert decision.zone_id == "fast-zone"
        assert decision.retry_policy is None


class TestRetryRouting(object):
    def test_retry_slow_bans_two_slowest_observed(self, view):
        policy = RetryRoutingPolicy("slow-zone", "retry_slow")
        decision = policy.decide(view)
        assert decision.zone_id == "slow-zone"
        assert decision.retry_policy.banned_cpus == {"amd-epyc",
                                                     "xeon-2.9"}

    def test_focus_fastest_keeps_best_observed(self, view):
        policy = RetryRoutingPolicy("slow-zone", "focus_fastest")
        decision = policy.decide(view)
        # slow-zone's fastest observed CPU is the 2.5 GHz baseline.
        assert decision.retry_policy.banned_cpus == {"amd-epyc",
                                                     "xeon-2.9"}
        assert not decision.retry_policy.is_banned("xeon-2.5")

    def test_homogeneous_zone_gets_no_retry(self):
        view = make_view({"solo": {"xeon-2.5": 10}})
        decision = RetryRoutingPolicy("solo", "focus_fastest").decide(view)
        assert decision.retry_policy is None

    def test_n_slowest_capped_below_cpu_count(self):
        view = make_view({"duo": {"xeon-2.5": 5, "xeon-2.9": 5}})
        decision = RetryRoutingPolicy("duo", "retry_slow",
                                      n_slowest=3).decide(view)
        assert decision.retry_policy.banned_cpus == {"xeon-2.9"}

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryRoutingPolicy("z", "retry_everything")

    def test_retry_knobs_forwarded(self, view):
        policy = RetryRoutingPolicy("slow-zone", "retry_slow",
                                    max_retries=3, hold_seconds=0.2)
        decision = policy.decide(view)
        assert decision.retry_policy.max_retries == 3
        assert decision.retry_policy.hold_seconds == 0.2

    def test_names(self):
        assert RetryRoutingPolicy("z", "retry_slow").name == "retry_slow"
        assert (RetryRoutingPolicy("z", "focus_fastest").name
                == "focus_fastest")


class TestHybrid(object):
    def test_hops_to_best_zone_with_retry(self, view):
        decision = HybridPolicy("focus_fastest").decide(view)
        assert decision.zone_id == "fast-zone"
        assert decision.retry_policy is not None
        assert not decision.retry_policy.is_banned("xeon-3.0")

    def test_accounts_for_retry_overhead(self):
        # fast-but-rare: the fastest CPU is only 5% of the zone, so
        # focusing it costs many retries; the hybrid should prefer the
        # zone where the fast CPU is plentiful.
        view = make_view({
            "fast-but-rare": {"xeon-3.0": 5, "xeon-2.5": 95},
            "fast-and-common": {"xeon-3.0": 60, "xeon-2.5": 40},
        })
        view.base_seconds = 0.5  # short workload: overhead matters
        decision = HybridPolicy("focus_fastest").decide(view)
        assert decision.zone_id == "fast-and-common"

    def test_no_candidates_raises(self, view):
        view.characterizations = {}
        with pytest.raises(ConfigurationError):
            HybridPolicy().decide(view)

    def test_name_includes_variant(self):
        assert HybridPolicy("retry_slow").name == "hybrid_retry_slow"
