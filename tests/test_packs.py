"""Scenario packs: named provider profiles usable everywhere a provider
name is accepted.

Covers lazy registration through :func:`provider_by_name`, per-pack
seeded determinism, vectorized-vs-looped equality on pack zones, the
pickled catalog-plan round trip (adapters travel as pure-data recipe
tuples), and the CaaS container-reuse floor that keeps repeat traffic
warm across arbitrarily long idle gaps.
"""

import pickle

import pytest

from repro.cloudsim import Cloud
from repro.cloudsim.catalog import (
    PACK_REGION_SPECS,
    catalog_region_names,
    provider_name_of_zone,
)
from repro.cloudsim.handlers import ModeledWorkloadHandler
from repro.cloudsim.packs import PACK_PROVIDERS
from repro.cloudsim.provider import PROVIDERS, provider_by_name
from repro.cloudsim.shared_catalog import catalog_plan, install_plan
from repro.engine.spec import CloudSpec

#: One representative zone per pack, memory valid on every pack ladder.
PACK_ZONES = {
    "gcp": "gcp-us-central1a",
    "azure": "azure-eastusa",
    "openwhisk": "ow-onprem-1a",
    "ce-caas": "ce-caas-1a",
    "spot": "spot-us-1a",
}


def _handler():
    return ModeledWorkloadHandler("wl", 0.3, {}, noise_sigma=0.05,
                                  default_factor=1.0)


def _poll_pack(pack, seed, vectorize=True, polls=(300, 300),
               advance_s=30.0):
    """Aggregate keys from a fresh pack zone polled ``polls`` times."""
    zone_id = PACK_ZONES[pack]
    cloud = CloudSpec.for_zones([zone_id], seed=seed).build()
    account = cloud.create_account("acct", pack)
    deployment = cloud.deploy(account, zone_id, "fn", 1024,
                              handler=_handler())
    keys = []
    for n_requests in polls:
        result = cloud.poll_batch(deployment, n_requests,
                                  vectorize=vectorize)
        keys.append(result.aggregate_key())
        cloud.clock.advance(advance_s)
    return keys


class TestRegistration(object):
    def test_every_pack_resolves_by_name(self):
        for name in PACK_PROVIDERS:
            config = provider_by_name(name)
            assert config.name == name
            assert config is PROVIDERS[name]

    def test_pack_names(self):
        assert set(PACK_PROVIDERS) == {"gcp", "azure", "openwhisk",
                                       "ce-caas", "spot"}

    def test_pack_regions_listed_per_provider(self):
        for pack in PACK_ZONES:
            regions = catalog_region_names(provider=pack)
            assert regions  # each pack ships at least one region
            for region in regions:
                assert region in PACK_REGION_SPECS[pack]

    def test_zone_provider_resolution(self):
        for pack, zone_id in PACK_ZONES.items():
            assert provider_name_of_zone(zone_id) == pack


class TestSeededDeterminism(object):
    @pytest.mark.parametrize("pack", sorted(PACK_ZONES))
    def test_same_seed_same_transcript(self, pack):
        assert _poll_pack(pack, 7) == _poll_pack(pack, 7)

    @pytest.mark.parametrize("pack", sorted(PACK_ZONES))
    def test_vectorized_matches_looped(self, pack):
        vec = _poll_pack(pack, 11, vectorize=True)
        loop = _poll_pack(pack, 11, vectorize=False)
        assert vec == loop


class TestPlanRoundTrip(object):
    def test_pack_entries_flagged_and_picklable(self):
        plan = catalog_plan()
        packs = [e for e in plan if e.get("pack")]
        assert {e["provider"] for e in packs} == set(PACK_ZONES)
        # Recipes are pure data: adapters travel as spec tuples, never
        # as live objects.
        restored = pickle.loads(pickle.dumps(plan))
        assert restored == plan

    def test_default_entries_carry_no_pack_keys(self):
        for entry in catalog_plan():
            if entry.get("pack"):
                continue
            for recipe in entry["zones"]:
                assert "keepalive_policy" not in recipe
                assert "preemption" not in recipe

    def test_unpickled_plan_builds_identical_zone(self):
        zone_id = PACK_ZONES["ce-caas"]
        spec = CloudSpec.for_zones([zone_id], seed=3)
        reference = spec.build()
        plan = pickle.loads(pickle.dumps(catalog_plan()))
        rebuilt = install_plan(Cloud(seed=3), plan,
                               regions=spec.regions)
        keys = []
        for cloud in (reference, rebuilt):
            account = cloud.create_account("acct", "ce-caas")
            deployment = cloud.deploy(account, zone_id, "fn", 1024,
                                      handler=_handler())
            keys.append(cloud.poll_batch(deployment, 200).aggregate_key())
        assert keys[0] == keys[1]

    def test_spot_recipe_carries_preemption(self):
        for entry in catalog_plan():
            if entry["provider"] == "spot":
                for recipe in entry["zones"]:
                    assert recipe["preemption"] == (300.0, 0.25)


class TestContainerReuseFloor(object):
    def _cold_after_gap(self, provider, zone_id, gap_s=1200.0):
        cloud = CloudSpec.for_zones([zone_id], seed=5).build()
        account = cloud.create_account("acct", provider)
        deployment = cloud.deploy(account, zone_id, "fn", 1024,
                                  handler=_handler())
        # 80 concurrent requests spawn at most 80 FIs — all inside the
        # ce-caas pinned floor of 96 min-instances.
        cloud.poll_batch(deployment, 80)
        cloud.clock.advance(gap_s)
        return cloud.poll_batch(deployment, 80).cold_starts

    def test_caas_floor_survives_idle_gap(self):
        # 1,200 s idle is double the ce-caas idle TTL; the pinned
        # min-instance floor must still serve the repeat burst mostly
        # warm (a few requests stray onto a CPU group with fewer pinned
        # FIs than the second multinomial split asks for), while an aws
        # zone (300 s sliding window) has gone completely cold.
        caas_cold = self._cold_after_gap("ce-caas", PACK_ZONES["ce-caas"])
        aws_cold = self._cold_after_gap("aws", "us-west-1a")
        assert aws_cold == 80
        assert caas_cold <= 10


class TestSpotPreemption(object):
    def test_preemption_fires_and_is_deterministic(self):
        served = []
        for _ in range(2):
            zone_id = PACK_ZONES["spot"]
            cloud = CloudSpec.for_zones([zone_id], seed=9).build()
            account = cloud.create_account("acct", "spot")
            deployment = cloud.deploy(account, zone_id, "fn", 1024,
                                      handler=_handler())
            cloud.poll_batch(deployment, 400)
            cloud.clock.advance(600.0)  # crosses two 300 s strike windows
            result = cloud.poll_batch(deployment, 400)
            zone = cloud.zone(zone_id)
            served.append((result.aggregate_key(),
                           zone._preempt.preempted))
        assert served[0] == served[1]
        assert served[0][1] > 0
