"""Background tenant load sharing the zone pool."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import HOURS, MINUTES
from repro.cloudsim.background import (
    BACKGROUND_DEPLOYMENT,
    BackgroundLoad,
    BackgroundProfile,
)
from tests.helpers import make_zone


class TestProfile(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackgroundProfile(base_fraction=1.0)
        with pytest.raises(ConfigurationError):
            BackgroundProfile(diurnal_amplitude=-0.1)
        with pytest.raises(ConfigurationError):
            BackgroundProfile(cadence=0)


class TestTargetFraction(object):
    def test_deterministic(self):
        load_a = BackgroundLoad("z", seed=5)
        load_b = BackgroundLoad("z", seed=5)
        assert load_a.target_fraction(1234.0) == load_b.target_fraction(
            1234.0)

    def test_diurnal_peak(self):
        profile = BackgroundProfile(base_fraction=0.2,
                                    diurnal_amplitude=0.1,
                                    noise_sigma=0.0, peak_hour=14.0)
        load = BackgroundLoad("z", profile=profile)
        peak = load.target_fraction(14 * HOURS)
        trough = load.target_fraction(2 * HOURS)
        assert peak > trough
        assert peak == pytest.approx(0.3, abs=0.01)

    def test_bounded(self):
        profile = BackgroundProfile(base_fraction=0.5, noise_sigma=2.0)
        load = BackgroundLoad("z", profile=profile, seed=1)
        for step in range(50):
            fraction = load.target_fraction(step * 300.0)
            assert 0.0 <= fraction <= 0.95


class TestZoneIntegration(object):
    def make_loaded_zone(self, base=0.3):
        zone = make_zone()
        profile = BackgroundProfile(base_fraction=base,
                                    diurnal_amplitude=0.0,
                                    noise_sigma=0.0)
        zone.attach_background(BackgroundLoad(zone.zone_id,
                                              profile=profile, seed=3))
        return zone

    def test_occupies_target_share(self):
        zone = self.make_loaded_zone(base=0.3)
        occupied = zone.occupied()
        assert occupied == pytest.approx(0.3 * zone.capacity, rel=0.05)

    def test_foreground_sees_reduced_capacity(self):
        zone = self.make_loaded_zone(base=0.3)
        result = zone.place_batch("fn", 200, duration=0.25, window=0.2)
        assert result.served == 200
        assert zone.free_slots() < zone.capacity * 0.7

    def test_background_never_served_to_foreground(self):
        zone = self.make_loaded_zone(base=0.3)
        result = zone.place_batch(BACKGROUND_DEPLOYMENT + "-other", 50,
                                  duration=0.25, window=0.2)
        assert result.new_fis == 50  # no reuse of tenant FIs

    def test_shrinks_when_target_drops(self):
        zone = make_zone()
        profile = BackgroundProfile(base_fraction=0.5,
                                    diurnal_amplitude=0.4,
                                    noise_sigma=0.0, peak_hour=12.0,
                                    cadence=5 * MINUTES)
        load = BackgroundLoad(zone.zone_id, profile=profile, seed=3)
        zone.clock.advance(12 * HOURS)  # peak: 90 % occupied
        zone.attach_background(load)
        at_peak = zone.occupied()
        zone.clock.advance(12 * HOURS)  # trough: 10 %
        load.apply_if_due(zone, zone.clock.now)
        at_trough = zone.occupied()
        assert at_trough < at_peak * 0.5

    def test_reapplies_only_per_cadence(self):
        zone = self.make_loaded_zone()
        load = zone._background
        assert not load.apply_if_due(zone, zone.clock.now)
        zone.clock.advance(10 * MINUTES)
        assert load.apply_if_due(zone, zone.clock.now)

    def test_fluctuating_failures_after_saturation(self):
        # The EX-1 refinement: with tenant churn, post-saturation polls
        # see partial successes (the paper's 80-98 % band), not a flat
        # 100 % failure wall.
        zone = make_zone()
        profile = BackgroundProfile(base_fraction=0.15,
                                    diurnal_amplitude=0.0,
                                    noise_sigma=0.5, cadence=60.0)
        zone.attach_background(BackgroundLoad(zone.zone_id,
                                              profile=profile, seed=11))
        failures = []
        for index in range(14):
            result = zone.place_batch("fn-{}".format(index), 200,
                                      duration=0.25, window=0.2)
            failures.append(result.failure_rate)
            zone.clock.advance(90.0)
        saturated = [f for f in failures if f > 0.5]
        assert saturated
        # Some post-saturation polls still land a few requests thanks to
        # slots the background churn releases.
        assert any(0.5 < f < 1.0 for f in failures) or min(
            saturated) < 1.0
