"""Geo coordinates and the latency model."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.network import (
    CLIENT_LOCATIONS,
    GeoPoint,
    NetworkModel,
    haversine_km,
)


class TestGeoPoint(object):
    def test_valid(self):
        point = GeoPoint(47.6, -122.3)
        assert point.lat == 47.6

    def test_invalid_latitude(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(91, 0)

    def test_invalid_longitude(self):
        with pytest.raises(ConfigurationError):
            GeoPoint(0, 181)


class TestHaversine(object):
    def test_zero_distance(self):
        p = GeoPoint(10, 10)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_seattle_to_london(self):
        seattle = CLIENT_LOCATIONS["seattle"]
        london = CLIENT_LOCATIONS["london"]
        km = haversine_km(seattle, london)
        assert 7500 < km < 8000  # ~7,700 km

    def test_symmetric(self):
        a, b = GeoPoint(0, 0), GeoPoint(45, 90)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestNetworkModel(object):
    def test_base_rtt_at_zero_distance(self):
        model = NetworkModel()
        p = GeoPoint(0, 0)
        assert model.round_trip(p, p) == pytest.approx(model.base_rtt)

    def test_rtt_grows_with_distance(self):
        model = NetworkModel()
        seattle = CLIENT_LOCATIONS["seattle"]
        near = GeoPoint(45.8, -119.7)   # Oregon
        far = CLIENT_LOCATIONS["sao-paulo"]
        assert (model.round_trip(seattle, far)
                > model.round_trip(seattle, near))

    def test_deterministic_without_rng(self):
        model = NetworkModel()
        a, b = CLIENT_LOCATIONS["tokyo"], CLIENT_LOCATIONS["london"]
        assert model.round_trip(a, b) == model.round_trip(a, b)

    def test_jitter_with_rng(self):
        model = NetworkModel()
        rng = np.random.default_rng(0)
        a, b = CLIENT_LOCATIONS["tokyo"], CLIENT_LOCATIONS["london"]
        draws = {model.round_trip(a, b, rng=rng) for _ in range(5)}
        assert len(draws) == 5

    def test_one_way_is_half_round_trip(self):
        model = NetworkModel()
        a, b = CLIENT_LOCATIONS["seattle"], CLIENT_LOCATIONS["new-york"]
        assert model.one_way(a, b) == pytest.approx(
            model.round_trip(a, b) / 2)

    def test_intercontinental_rtt_plausible(self):
        # Seattle <-> São Paulo should be on the order of 100-250 ms.
        model = NetworkModel()
        rtt = model.round_trip(CLIENT_LOCATIONS["seattle"],
                               CLIENT_LOCATIONS["sao-paulo"])
        assert 0.08 < rtt < 0.3
