"""Result export to JSON/CSV."""

import json

import pytest

from repro import reporting
from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.sampling import CharacterizationBuilder, SamplingCampaign
from repro.skymesh import SkyMesh
from tests.helpers import make_cloud


def make_profile(zone="z-1"):
    builder = CharacterizationBuilder(zone)
    builder.add_poll({"xeon-2.5": 60, "xeon-3.0": 40}, cost=Money(0.01),
                     timestamp=7.0)
    return builder.snapshot()


@pytest.fixture
def campaign_result():
    cloud = make_cloud(seed=71)
    account = cloud.create_account("export", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                               count=4)
    return SamplingCampaign(cloud, endpoints, n_requests=100,
                            max_polls=3).run()


class TestCharacterizationExport(object):
    def test_dict_shape(self):
        payload = reporting.characterization_to_dict(make_profile())
        assert payload["zone"] == "z-1"
        assert payload["shares"]["xeon-2.5"] == pytest.approx(0.6)
        assert payload["samples"] == 100
        assert payload["cost_usd"] == pytest.approx(0.01)

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "profile.json"
        reporting.write_json(str(path),
                             reporting.characterization_to_dict(
                                 make_profile()))
        loaded = reporting.load_json(str(path))
        assert loaded["zone"] == "z-1"

    def test_csv_rows(self):
        rows = reporting.characterizations_to_rows(
            [make_profile("a"), make_profile("b")])
        assert len(rows) == 4  # 2 zones x 2 CPUs
        assert {row["zone"] for row in rows} == {"a", "b"}


class TestCampaignExport(object):
    def test_dict_shape(self, campaign_result):
        payload = reporting.campaign_to_dict(campaign_result)
        assert payload["polls"] == campaign_result.polls_run
        assert len(payload["trace"]) == campaign_result.polls_run
        assert payload["ground_truth"]["zone"] == "test-1a"
        json.dumps(payload)  # JSON-safe

    def test_trace_entries(self, campaign_result):
        payload = reporting.campaign_to_dict(campaign_result)
        first = payload["trace"][0]
        assert first["served"] + first["failed"] == 100
        assert sum(first["cpu_counts"].values()) == first["served"]


class TestCsvWriter(object):
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "rows.csv"
        reporting.write_csv(str(path), [
            {"a": 1, "b": "x"},
            {"a": 2, "b": "y"},
        ])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            reporting.write_csv(str(tmp_path / "x.csv"), [])
