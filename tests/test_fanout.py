"""The recursive invocation fan-out tree."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cloudsim.provider import AWS_LAMBDA
from repro.sampling import FanoutSpec


class TestTreeGeometry(object):
    def test_depth(self):
        spec = FanoutSpec(branching=10)
        assert spec.depth(1) == 0
        assert spec.depth(10) == 1
        assert spec.depth(1000) == 3
        assert spec.depth(1001) == 4

    def test_branching_validated(self):
        with pytest.raises(ConfigurationError):
            FanoutSpec(branching=1)

    def test_client_requests_with_tree(self):
        assert FanoutSpec(branching=10).client_requests(1000) == 10

    def test_client_requests_without_tree(self):
        assert FanoutSpec(use_tree=False).client_requests(1000) == 1000

    def test_interior_nodes(self):
        spec = FanoutSpec(branching=10)
        assert spec.interior_nodes(1000) == 100
        assert spec.interior_nodes(1) == 0


class TestEffectiveWindow(object):
    def test_tree_keeps_window_tight(self):
        spec = FanoutSpec(branching=10)
        window = spec.effective_window(1000, AWS_LAMBDA, 2048)
        # 3 levels of ~35 ms latency vs. the 250 ms scheduling spread: the
        # spread dominates, so a 0.25 s sleep covers the burst.
        assert window == pytest.approx(0.25)

    def test_no_tree_serializes_dispatch(self):
        spec = FanoutSpec(use_tree=False)
        window = spec.effective_window(1000, AWS_LAMBDA, 2048)
        assert window > 2.0  # 1,000 serialized dispatches

    def test_tree_beats_no_tree(self):
        with_tree = FanoutSpec().effective_window(1000, AWS_LAMBDA, 2048)
        without = FanoutSpec(use_tree=False).effective_window(
            1000, AWS_LAMBDA, 2048)
        assert with_tree < without

    def test_low_memory_widens_window(self):
        spec = FanoutSpec()
        assert (spec.effective_window(1000, AWS_LAMBDA, 128)
                > spec.effective_window(1000, AWS_LAMBDA, 2048))
