"""The live observability endpoint and the ``obs tail`` renderer."""

import json
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import Observability
from repro.obs.export import parse_prometheus_text
from repro.obs.manifest import RunManifest, RunRegistry
from repro.obs.serve import (
    ObsServer,
    bucket_quantile,
    render_tail,
    scrape,
)

INF = float("inf")


def _facade():
    obs = Observability()
    obs.registry.counter("demo_total", kind="x").inc(4)
    obs.bus.emit("demo.event", 0.1, zone="z1")
    return obs


# -- HTTP endpoint -------------------------------------------------------------

class TestObsServer(object):
    def test_metrics_healthz_runs_and_404(self, tmp_path):
        obs = _facade()
        registry = RunRegistry()
        manifest = RunManifest.begin(str(tmp_path / "run"), "sweep",
                                     seed=7, registry=registry)
        with ObsServer(obs, port=0, runs=registry) as server:
            body = scrape(server.url("/metrics"))
            assert 'demo_total{kind="x"} 4.0' in body
            samples = parse_prometheus_text(body)
            assert samples[("demo_total", ("kind", "x"))] == 4.0

            health = json.loads(scrape(server.url("/healthz")))
            assert health["status"] == "ok"
            assert health["enabled"] is True
            assert health["events"] == 1
            assert health["metrics"] == 1

            runs = json.loads(scrape(server.url("/runs")))
            assert len(runs["runs"]) == 1
            assert runs["runs"][0]["kind"] == "sweep"
            assert runs["runs"][0]["status"] == "running"

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                scrape(server.url("/nope"))
            assert excinfo.value.code == 404
        assert manifest.data["status"] == "running"

    def test_content_type_is_prometheus_text(self):
        with ObsServer(_facade(), port=0) as server:
            response = urllib.request.urlopen(server.url("/metrics"),
                                              timeout=5)
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")

    def test_registry_mutation_between_scrapes_is_visible(self):
        obs = _facade()
        with ObsServer(obs, port=0) as server:
            before = scrape(server.url("/metrics"))
            obs.registry.counter("late_total").inc()
            after = scrape(server.url("/metrics"))
        assert "late_total" not in before
        assert "late_total 1.0" in after

    def test_url_requires_start(self):
        server = ObsServer(_facade())
        with pytest.raises(ConfigurationError):
            server.url()

    def test_port_collision_is_a_configuration_error(self):
        with ObsServer(_facade(), port=0) as server:
            taken = server.address[1]
            with pytest.raises(ConfigurationError):
                ObsServer(_facade(), port=taken).start()

    def test_close_releases_the_port(self):
        server = ObsServer(_facade(), port=0).start()
        url = server.url("/healthz")
        server.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(url, timeout=1)


# -- quantile estimation -------------------------------------------------------

class TestBucketQuantile(object):
    def test_interpolates_inside_the_winning_bucket(self):
        buckets = [(1.0, 2.0), (5.0, 4.0), (INF, 6.0)]
        # target q=0.5 → 3rd of 6 → halfway through the (1, 5] bucket.
        assert bucket_quantile(buckets, 0.5) == 3.0

    def test_inf_bucket_degrades_to_last_finite_upper(self):
        buckets = [(1.0, 2.0), (5.0, 4.0), (INF, 6.0)]
        assert bucket_quantile(buckets, 0.99) == 5.0

    def test_empty_histogram_is_none(self):
        assert bucket_quantile([], 0.5) is None
        assert bucket_quantile([(1.0, 0.0), (INF, 0.0)], 0.5) is None

    def test_all_mass_in_first_bucket(self):
        buckets = [(1.0, 10.0), (5.0, 10.0), (INF, 10.0)]
        estimate = bucket_quantile(buckets, 0.5)
        assert 0.0 <= estimate <= 1.0


# -- tail rendering ------------------------------------------------------------

class TestRenderTail(object):
    def test_no_metrics_yet(self):
        assert render_tail({}) == "no sweep metrics yet"

    def test_sweep_lines(self):
        samples = {
            ("sweep_cells_total",): 7.0,
            ("sweep_cell_failures_total",): 1.0,
            ("sweep_cells_inflight",): 2.0,
            ("sweep_chunks_requeued_total",): 1.0,
            ("sweep_workers_joined_total",): 3.0,
            ("sweep_workers_lost_total",): 1.0,
            ("sweep_worker_utilization",): 0.82,
            ("sweep_cell_wall_ms_bucket", ("le", "10.0")): 4.0,
            ("sweep_cell_wall_ms_bucket", ("le", "100.0")): 7.0,
            ("sweep_cell_wall_ms_bucket", ("le", "+Inf")): 7.0,
            ("sweep_shipped_events_total", ("worker", "w1")): 40.0,
            ("sweep_shipped_events_total", ("worker", "w2")): 20.0,
            ("sweep_telemetry_dropped_total", ("worker", "w2")): 5.0,
        }
        block = render_tail(samples)
        lines = block.splitlines()
        assert lines[0] == ("cells: 7 done (1 failed), 2 in flight, "
                            "1 chunks requeued")
        assert lines[1] == "workers: 3 joined, 1 lost, utilization 82%"
        assert lines[2].startswith("cell wall: p50 ")
        assert "p95" in lines[2] and "p99" in lines[2]
        assert lines[3] == "shipped: w1=40ev, w2=20ev(+5 dropped)"

    def test_sweep_started_but_no_cell_done_yet(self):
        # Mid-first-cell a live sweep exports only the inflight gauge;
        # that is a started sweep, not "no metrics".
        samples = {("sweep_cells_inflight",): 4.0}
        block = render_tail(samples)
        assert block.splitlines()[0] == ("cells: 0 done (0 failed), "
                                         "4 in flight, 0 chunks requeued")

    def test_degrades_without_worker_series(self):
        samples = {("sweep_cells_total",): 3.0}
        block = render_tail(samples)
        assert block.startswith("cells: 3 done")
        assert "workers:" not in block
