"""Poller, campaigns, progressive analysis, and cost accounting."""

import pytest

from repro.common.errors import (
    CharacterizationError,
    ConfigurationError,
)
from repro.common.units import Money
from repro.sampling import (
    Poller,
    ProgressiveAnalysis,
    SamplingCampaign,
)
from repro.sampling.campaign import CampaignResult
from repro.sampling.cost import (
    campaign_cost_summary,
    characterization_cost,
    series_cost,
)
from repro.skymesh import SkyMesh
from tests.helpers import make_cloud


@pytest.fixture
def sampling_setup():
    cloud = make_cloud(seed=11)
    account = cloud.create_account("sampler", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                               count=30)
    return cloud, account, endpoints


class TestPoller(object):
    def test_poll_observes_requests(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        poller = Poller(cloud, endpoints, n_requests=200)
        observation = poller.poll()
        assert observation.served == 200
        assert sum(observation.cpu_counts.values()) == 200
        assert observation.cost > Money(0)

    def test_rotates_endpoints(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        poller = Poller(cloud, endpoints, n_requests=50)
        first = poller.poll()
        second = poller.poll()
        assert first.endpoint_id != second.endpoint_id
        assert poller.polls_available == 28

    def test_reset_rotation(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        poller = Poller(cloud, endpoints, n_requests=50)
        poller.poll()
        poller.reset_rotation()
        assert poller.polls_available == 30

    def test_needs_endpoints(self, sampling_setup):
        cloud, _, _ = sampling_setup
        with pytest.raises(ConfigurationError):
            Poller(cloud, [])

    def test_endpoints_must_share_zone(self, sampling_setup):
        cloud, account, endpoints = sampling_setup
        mesh = SkyMesh(cloud)
        other = mesh.deploy_sampling_endpoints(account, "test-1b", count=1,
                                               memory_base_mb=4096)
        with pytest.raises(ConfigurationError):
            Poller(cloud, endpoints + other)


class TestCampaign(object):
    def test_runs_to_saturation(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        campaign = SamplingCampaign(cloud, endpoints, n_requests=200)
        result = campaign.run()
        assert result.saturated
        # test-1a has 1,024 slots; 200-request polls saturate in ~6 polls.
        assert 4 <= result.polls_run <= 9
        assert result.total_fis >= 900

    def test_failure_threshold_stop_rule(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        campaign = SamplingCampaign(cloud, endpoints, n_requests=200)
        result = campaign.run()
        assert result.observations[-1].failure_rate > 0.5
        for observation in result.observations[:-1]:
            assert observation.failure_rate <= 0.5

    def test_max_polls_bound(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        campaign = SamplingCampaign(cloud, endpoints, n_requests=100,
                                    max_polls=3)
        result = campaign.run()
        assert result.polls_run == 3
        assert not result.saturated

    def test_ground_truth_close_to_zone_shares(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        campaign = SamplingCampaign(cloud, endpoints, n_requests=200)
        truth = campaign.run().ground_truth()
        zone_truth = cloud.zone("test-1a").cpu_slot_shares()
        assert truth.ape_to(zone_truth) < 12.0

    def test_characterization_after_validates_range(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        result = SamplingCampaign(cloud, endpoints, n_requests=200).run()
        with pytest.raises(ConfigurationError):
            result.characterization_after(0)
        with pytest.raises(ConfigurationError):
            result.characterization_after(result.polls_run + 1)

    def test_invalid_threshold(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        with pytest.raises(ConfigurationError):
            SamplingCampaign(cloud, endpoints, failure_threshold=0.0)

    def test_total_cost_sums_polls(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        result = SamplingCampaign(cloud, endpoints, n_requests=100,
                                  max_polls=2).run()
        assert result.total_cost == sum(
            (obs.cost for obs in result.observations), Money(0))


class TestProgressive(object):
    @pytest.fixture
    def analysis(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        return ProgressiveAnalysis(
            SamplingCampaign(cloud, endpoints, n_requests=200).run())

    def test_ape_curve_monotone_overall(self, analysis):
        curve = analysis.ape_curve()
        assert curve[-1][2] == pytest.approx(0.0)  # converges to truth
        assert curve[0][2] >= curve[-1][2]

    def test_fis_cumulative(self, analysis):
        curve = analysis.ape_curve()
        fis = [point[1] for point in curve]
        assert fis == sorted(fis)

    def test_polls_to_accuracy(self, analysis):
        polls = analysis.polls_to_accuracy(95.0)
        assert polls is not None
        assert polls <= analysis.campaign.polls_run

    def test_higher_accuracy_needs_more_polls(self, analysis):
        low = analysis.polls_to_accuracy(80.0)
        high = analysis.polls_to_accuracy(99.9)
        assert low <= high

    def test_unreachable_accuracy_returns_none(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        result = SamplingCampaign(cloud, endpoints, n_requests=100,
                                  max_polls=1).run()
        analysis = ProgressiveAnalysis(result)
        # With one poll, the partial == truth, so 100% is reachable; ask
        # for an impossible negative-APE target via accuracy > 100.
        with pytest.raises(ConfigurationError):
            analysis.polls_to_accuracy(101.0)

    def test_cost_to_accuracy(self, analysis):
        cost = analysis.cost_to_accuracy(95.0)
        assert Money(0) < cost <= analysis.campaign.total_cost


class TestCostAccounting(object):
    def test_summary_fields(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        result = SamplingCampaign(cloud, endpoints, n_requests=200).run()
        summary = campaign_cost_summary(result)
        assert summary["zone"] == "test-1a"
        assert summary["saturated"]
        assert summary["cost_per_poll_usd"] > 0
        assert summary["cost_to_95pct_usd"] <= summary["total_cost_usd"]

    def test_characterization_cost_falls_back_to_total(self,
                                                       sampling_setup):
        cloud, _, endpoints = sampling_setup
        result = SamplingCampaign(cloud, endpoints, n_requests=100,
                                  max_polls=1).run()
        assert characterization_cost(result) == result.total_cost

    def test_series_cost(self, sampling_setup):
        cloud, _, endpoints = sampling_setup
        results = [SamplingCampaign(cloud, endpoints, n_requests=100,
                                    max_polls=1).run() for _ in range(2)]
        assert series_cost(results) == (results[0].total_cost
                                        + results[1].total_cost)


class FakePoll(object):
    """Minimal stand-in for PollObservation: lets tests compose exact
    served/failed prefixes that a live campaign can't reliably produce."""

    def __init__(self, served, failed, cpu_counts=None, timestamp=0.0):
        self.served = served
        self.failed = failed
        self.cpu_counts = cpu_counts or {}
        self.cost = Money(10)
        self.timestamp = timestamp
        self.unique_fis = len(self.cpu_counts)


def _ok_poll(n=5):
    return FakePoll(served=n, failed=0, cpu_counts={"E5-2670": n})


def _dead_poll(failed=7):
    return FakePoll(served=0, failed=failed)


class TestCharacterizationAfterEdgeCases(object):
    def test_single_all_failed_poll(self):
        result = CampaignResult("test-1a", [_dead_poll(failed=3)],
                                saturated=True)
        with pytest.raises(CharacterizationError) as excinfo:
            result.characterization_after(1)
        message = str(excinfo.value)
        assert "first 1 poll(s) in test-1a" in message
        assert "poll(s) 1 were all-failed" in message
        assert "3 failed requests" in message

    def test_all_failed_prefix_lists_every_poll(self):
        result = CampaignResult(
            "test-1a", [_dead_poll(2), _dead_poll(4), _ok_poll()],
            saturated=False)
        with pytest.raises(CharacterizationError) as excinfo:
            result.characterization_after(2)
        message = str(excinfo.value)
        assert "poll(s) 1, 2 were all-failed" in message
        assert "6 failed requests" in message
        # One more poll reaches the serving one: no error.
        assert result.characterization_after(3).samples == 5

    def test_full_run_prefix_equals_ground_truth(self):
        result = CampaignResult(
            "test-1a", [_ok_poll(3), _dead_poll(), _ok_poll(4)],
            saturated=True)
        full = result.characterization_after(result.polls_run)
        assert full.samples == 7
        assert full.polls == 2  # the dead poll contributes nothing
        assert full.shares() == result.ground_truth().shares()

    def test_every_poll_dead_at_full_length(self):
        result = CampaignResult(
            "test-1a", [_dead_poll(1), _dead_poll(1), _dead_poll(1)],
            saturated=True)
        with pytest.raises(CharacterizationError) as excinfo:
            result.ground_truth()
        assert "poll(s) 1, 2, 3 were all-failed" in str(excinfo.value)

    def test_mixed_prefix_skips_dead_polls_silently(self):
        result = CampaignResult(
            "test-1a", [_dead_poll(), _ok_poll(2)], saturated=False)
        profile = result.characterization_after(2)
        assert profile.samples == 2
