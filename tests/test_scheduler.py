"""Budget-constrained sampling planning."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.sampling.scheduler import (
    SamplingBudgetPlanner,
    ZoneSamplingInfo,
)
from repro.sampling.stability import STABLE, VOLATILE


def info(zone, ape1=12.0, cost=0.008, stability=STABLE):
    return ZoneSamplingInfo(zone, ape1, cost, stability=stability)


class TestZoneSamplingInfo(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZoneSamplingInfo("z", -1.0, 0.01)
        with pytest.raises(ConfigurationError):
            ZoneSamplingInfo("z", 5.0, 0.0)

    def test_predicted_ape_decays_like_sqrt(self):
        zone = info("z", ape1=12.0)
        assert zone.predicted_ape(1) == pytest.approx(12.0)
        assert zone.predicted_ape(4) == pytest.approx(6.0)
        assert zone.predicted_ape(0) == 200.0

    def test_from_campaign(self):
        from repro.sampling import SamplingCampaign
        from repro.skymesh import SkyMesh
        from tests.helpers import make_cloud
        cloud = make_cloud(seed=111)
        account = cloud.create_account("plan", "aws")
        mesh = SkyMesh(cloud)
        endpoints = mesh.deploy_sampling_endpoints(account, "test-1a",
                                                   count=5)
        result = SamplingCampaign(cloud, endpoints, n_requests=150,
                                  max_polls=4).run()
        derived = ZoneSamplingInfo.from_campaign(result,
                                                 stability=VOLATILE)
        assert derived.zone_id == "test-1a"
        assert derived.first_poll_ape >= 0
        assert float(derived.poll_cost) > 0


class TestPlanner(object):
    def test_budget_fully_spent_on_marginal_gains(self):
        infos = [info("a", stability=VOLATILE), info("b")]
        planner = SamplingBudgetPlanner()
        plan = planner.plan(infos, budget=0.1)
        assert plan.total_cost() <= Money(0.1)
        # At $0.008/poll and a $0.10 budget, ~12 polls get allocated.
        assert sum(plan.allocations.values()) >= 10

    def test_volatile_zones_get_more_polls(self):
        infos = [info("wild", stability=VOLATILE),
                 info("calm", stability=STABLE)]
        plan = SamplingBudgetPlanner().plan(infos, budget=0.08)
        assert plan.polls_for("wild") > plan.polls_for("calm")

    def test_noisier_zones_get_more_polls(self):
        infos = [info("noisy", ape1=25.0), info("clean", ape1=2.0)]
        plan = SamplingBudgetPlanner().plan(infos, budget=0.08)
        assert plan.polls_for("noisy") > plan.polls_for("clean")

    def test_min_polls_guaranteed(self):
        infos = [info("a"), info("b"), info("c")]
        plan = SamplingBudgetPlanner(min_polls=2).plan(infos, budget=0.06)
        for zone in ("a", "b", "c"):
            assert plan.polls_for(zone) >= 2

    def test_max_polls_cap(self):
        infos = [info("a")]
        plan = SamplingBudgetPlanner(max_polls=5).plan(infos, budget=10.0)
        assert plan.polls_for("a") == 5

    def test_insufficient_budget_raises(self):
        infos = [info("a"), info("b")]
        with pytest.raises(ConfigurationError):
            SamplingBudgetPlanner(min_polls=5).plan(infos, budget=0.01)

    def test_empty_zone_list_raises(self):
        with pytest.raises(ConfigurationError):
            SamplingBudgetPlanner().plan([], budget=1.0)

    def test_expensive_zone_polls_deprioritized(self):
        infos = [info("cheap", cost=0.005), info("pricey", cost=0.05)]
        plan = SamplingBudgetPlanner().plan(infos, budget=0.1)
        assert plan.polls_for("cheap") > plan.polls_for("pricey")

    def test_beats_uniform_on_weighted_error(self):
        infos = [info("wild", ape1=25.0, stability=VOLATILE),
                 info("calm-1", ape1=4.0), info("calm-2", ape1=5.0),
                 info("calm-3", ape1=3.0)]
        planner = SamplingBudgetPlanner()
        smart = planner.plan(infos, budget=0.2)
        uniform = planner.plan_uniform(infos, budget=0.2)
        assert smart.weighted_error() < uniform.weighted_error()
        assert smart.total_cost() <= Money(0.2)
        assert uniform.total_cost() <= Money(0.2)

    def test_plan_reports_predicted_ape(self):
        infos = [info("a", ape1=10.0)]
        plan = SamplingBudgetPlanner().plan(infos, budget=0.05)
        polls = plan.polls_for("a")
        assert plan.predicted_ape("a") == pytest.approx(
            10.0 / polls ** 0.5)
