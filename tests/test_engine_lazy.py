"""Lazy result payloads: the coordinator never materializes what it
doesn't read.

``SweepEngine(lazy=True)`` returns :class:`LazyPayload` envelopes whose
bytes are the worker's own pickle; loading them must reproduce the eager
run byte-for-byte across every backend, while failure payloads stay raw
tuples so error reporting and the journal's infra-loss check keep
working.
"""

import json
import pickle
import threading

import pytest

from repro import reporting
from repro.common.errors import SweepError
from repro.engine import (
    CampaignTask,
    CloudSpec,
    LazyPayload,
    SweepCoordinator,
    SweepEngine,
    SweepTask,
    SweepWorker,
    load_payload,
)
from repro.engine.executor import _chunk


def _tiny_task(seed=0, zone="us-west-1a"):
    return CampaignTask(CloudSpec.for_zones([zone], seed=seed), zone,
                        endpoints=3, n_requests=150, max_polls=2)


def _dumps(results):
    return json.dumps([reporting.campaign_to_dict(r) for r in results],
                      sort_keys=True).encode()


class FailingTask(SweepTask):
    kind = "failing"

    def __init__(self, message="boom"):
        super().__init__(CloudSpec(seed=0))
        self.message = message

    def run(self):
        raise ValueError(self.message)


# -- the envelope itself ------------------------------------------------------

class TestLazyPayload(object):
    def test_wrap_load_round_trip(self):
        wrapped = LazyPayload.wrap({"a": [1, 2, 3]})
        assert wrapped.load() == {"a": [1, 2, 3]}

    def test_wrap_is_idempotent(self):
        wrapped = LazyPayload.wrap(("x", 1))
        assert LazyPayload.wrap(wrapped) is wrapped

    def test_repickle_is_byte_passthrough(self):
        wrapped = LazyPayload.wrap(list(range(100)))
        clone = pickle.loads(pickle.dumps(wrapped,
                                          pickle.HIGHEST_PROTOCOL))
        assert isinstance(clone, LazyPayload)
        assert clone.data == wrapped.data
        assert clone.load() == list(range(100))

    def test_load_payload_helper(self):
        assert load_payload(LazyPayload.wrap(7)) == 7
        assert load_payload("already plain") == "already plain"

    def test_repr_shows_size_not_content(self):
        assert "bytes" in repr(LazyPayload.wrap({"secret": 1}))


# -- engine integration -------------------------------------------------------

class TestEngineLazy(object):
    def test_serial_lazy_equals_eager_after_load(self):
        tasks = [_tiny_task(s) for s in range(3)]
        eager = SweepEngine(workers=1).run([_tiny_task(s)
                                            for s in range(3)])
        lazy = SweepEngine(workers=1, lazy=True).run(tasks)
        assert all(isinstance(r, LazyPayload) for r in lazy)
        assert _dumps([r.load() for r in lazy]) == _dumps(eager)

    def test_pool_lazy_equals_eager_after_load(self):
        eager = SweepEngine(workers=1).run([_tiny_task(s)
                                            for s in range(4)])
        lazy = SweepEngine(workers=2, lazy=True).run(
            [_tiny_task(s) for s in range(4)])
        assert all(isinstance(r, LazyPayload) for r in lazy)
        assert _dumps([r.load() for r in lazy]) == _dumps(eager)

    def test_failures_stay_raw_and_reportable(self):
        with pytest.raises(SweepError) as excinfo:
            SweepEngine(workers=1, lazy=True).run(
                [FailingTask("lazy does not eat errors")])
        failure = excinfo.value.failures[0]
        assert failure.error_type == "ValueError"
        assert "lazy does not eat errors" in failure.message

    def test_pool_failures_stay_raw(self):
        with pytest.raises(SweepError) as excinfo:
            SweepEngine(workers=2, lazy=True).run(
                [FailingTask("a"), _tiny_task(0), FailingTask("b")])
        assert sorted(f.message for f in excinfo.value.failures) == \
            ["a", "b"]

    def test_lazy_journal_resumes_into_eager_engine(self, tmp_path):
        """A journal written by a lazy run replays into any engine.

        The journal holds ``LazyPayload`` envelopes (byte passthrough);
        a ``lazy=False`` resume decodes them back to plain results.
        """
        record = str(tmp_path / "run")
        tasks = [_tiny_task(s) for s in range(3)]
        lazy = SweepEngine(workers=1, lazy=True, journal=record).run(tasks)
        resumed = SweepEngine(workers=1, resume=record).run(
            [_tiny_task(s) for s in range(3)])
        assert all(not isinstance(r, LazyPayload) for r in resumed)
        assert _dumps(resumed) == _dumps([r.load() for r in lazy])

    def test_eager_journal_resumes_into_lazy_engine(self, tmp_path):
        record = str(tmp_path / "run")
        eager = SweepEngine(workers=1, journal=record).run(
            [_tiny_task(s) for s in range(2)])
        resumed = SweepEngine(workers=1, lazy=True, resume=record).run(
            [_tiny_task(s) for s in range(2)])
        assert all(isinstance(r, LazyPayload) for r in resumed)
        assert _dumps([r.load() for r in resumed]) == _dumps(eager)


# -- remote backend -----------------------------------------------------------

class TestRemoteLazy(object):
    def test_worker_ships_wrapped_records(self):
        """A lazy task frame comes back as pickle-byte envelopes —
        the coordinator side never has to decode the campaign."""
        tasks = [_tiny_task(s) for s in range(2)]
        eager = SweepEngine(workers=1).run([_tiny_task(s)
                                            for s in range(2)])
        coordinator = SweepCoordinator(heartbeat_s=0.5,
                                       join_timeout_s=15.0, lazy=True)
        results = [None] * len(tasks)
        with coordinator:
            host, port = coordinator.address
            worker = SweepWorker(host, port, worker_id="lazy-0",
                                 heartbeat_s=0.1)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            chunks = _chunk(list(enumerate(tasks)), 1)
            for index, ok, payload, _, _ in coordinator.run(chunks):
                assert ok, payload
                assert isinstance(payload, LazyPayload)
                results[index] = payload
            thread.join(timeout=10.0)
        assert _dumps([r.load() for r in results]) == _dumps(eager)

    def test_engine_remote_lazy_equals_eager(self):
        eager = SweepEngine(workers=1).run([_tiny_task(s)
                                            for s in range(2)])
        engine = SweepEngine(workers=2, backend="remote",
                             remote_workers=2, lazy=True,
                             join_timeout_s=30.0)
        lazy = engine.run([_tiny_task(s) for s in range(2)])
        assert all(isinstance(r, LazyPayload) for r in lazy)
        assert _dumps([r.load() for r in lazy]) == _dumps(eager)
