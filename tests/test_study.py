"""Multi-day routing studies."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    RoutingStudy,
)
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.skymesh import SkyMesh
from repro.workloads import resolve_runtime_model, workload_by_name
from tests.helpers import make_cloud


@pytest.fixture
def study_setup():
    cloud = make_cloud(seed=61)
    account = cloud.create_account("study", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {}
    for zone in ("test-1a", "test-1b"):
        endpoints[zone] = mesh.deploy_sampling_endpoints(
            account, zone, count=6,
            memory_base_mb=2048 if zone == "test-1a" else 3072)
        deployment = cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
        mesh.register(deployment)
    store = CharacterizationStore()
    return cloud, mesh, store, endpoints


def make_study(setup, **kwargs):
    cloud, mesh, store, endpoints = setup
    defaults = dict(days=3, burst_size=100, polls_per_day=2,
                    poll_requests=150)
    defaults.update(kwargs)
    return RoutingStudy(cloud, mesh, store, workload_by_name("zipper"),
                        ["test-1a", "test-1b"], endpoints, **defaults)


class TestStudy(object):
    def test_records_daily_series(self, study_setup):
        study = make_study(study_setup)
        result = study.run([BaselinePolicy("test-1a"),
                            RetryRoutingPolicy("test-1a", "retry_slow")])
        assert len(result.daily_costs["baseline"]) == 3
        assert len(result.daily_costs["retry_slow"]) == 3
        assert result.sampling_cost > Money(0)

    def test_retry_beats_baseline_in_mixed_zone(self, study_setup):
        study = make_study(study_setup)
        result = study.run([BaselinePolicy("test-1a"),
                            RetryRoutingPolicy("test-1a", "retry_slow",
                                               n_slowest=1)])
        summary = result.savings_summary()
        assert summary["retry_slow"]["cumulative_pct"] > 0

    def test_zones_chosen_tracked(self, study_setup):
        study = make_study(study_setup)
        result = study.run([BaselinePolicy("test-1b")])
        assert result.zones_chosen["baseline"] == ["test-1b"] * 3

    def test_retry_fraction(self, study_setup):
        study = make_study(study_setup)
        result = study.run([RetryRoutingPolicy("test-1a",
                                               "focus_fastest")])
        assert result.retry_fraction("focus_fastest", 100) > 0

    def test_duplicate_policy_names_rejected(self, study_setup):
        study = make_study(study_setup)
        with pytest.raises(ConfigurationError):
            study.run([BaselinePolicy("test-1a"),
                       BaselinePolicy("test-1b")])

    def test_missing_endpoints_rejected(self, study_setup):
        cloud, mesh, store, endpoints = study_setup
        with pytest.raises(ConfigurationError):
            RoutingStudy(cloud, mesh, store, workload_by_name("zipper"),
                         ["test-1a", "ghost-zone"], endpoints)

    def test_day_count_validated(self, study_setup):
        with pytest.raises(ConfigurationError):
            make_study(study_setup, days=0)

    def test_clock_advances_by_cadence(self, study_setup):
        cloud = study_setup[0]
        study = make_study(study_setup, days=2, cadence_hours=22.0)
        study.run([BaselinePolicy("test-1a")])
        assert cloud.clock.now >= 22 * 3600
