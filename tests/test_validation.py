"""The EX-1 two-account saturation validation protocol."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sampling.validation import validate_saturation
from repro.skymesh import SkyMesh
from tests.helpers import make_cloud


@pytest.fixture
def rig():
    cloud = make_cloud(seed=161)
    primary = cloud.create_account("primary", "aws")
    secondary = cloud.create_account("secondary", "aws")
    mesh = SkyMesh(cloud)
    primary_endpoints = mesh.deploy_sampling_endpoints(primary, "test-1a",
                                                       count=12)
    secondary_endpoints = mesh.deploy_sampling_endpoints(
        secondary, "test-1a", count=3, memory_base_mb=4096)
    return cloud, primary_endpoints, secondary_endpoints


class TestValidateSaturation(object):
    def test_shared_pool_detected(self, rig):
        cloud, primary, secondary = rig
        validation = validate_saturation(cloud, primary, secondary,
                                         n_requests=200)
        assert validation.primary_saturated
        assert validation.secondary_blocked
        assert validation.pool_is_shared
        assert validation.secondary_failure_rates[0] > 0.9

    def test_summary_is_json_safe(self, rig):
        import json
        cloud, primary, secondary = rig
        validation = validate_saturation(cloud, primary, secondary,
                                         n_requests=200)
        json.dumps(validation.summary())
        assert validation.summary()["pool_is_shared"] is True

    def test_rejects_same_account(self, rig):
        cloud, primary, _ = rig
        with pytest.raises(ConfigurationError):
            validate_saturation(cloud, primary, primary)

    def test_rejects_different_zones(self, rig):
        cloud, primary, _ = rig
        other_account = cloud.create_account("third", "aws")
        mesh = SkyMesh(cloud)
        other = mesh.deploy_sampling_endpoints(other_account, "test-1b",
                                               count=2)
        with pytest.raises(ConfigurationError):
            validate_saturation(cloud, primary, other)

    def test_unsaturated_zone_reports_not_shared(self):
        # A fresh zone that the primary never exhausts (its endpoint
        # budget runs out first): the protocol must not claim sharing.
        cloud = make_cloud(seed=162)
        primary = cloud.create_account("primary", "aws")
        secondary = cloud.create_account("secondary", "aws")
        mesh = SkyMesh(cloud)
        primary_endpoints = mesh.deploy_sampling_endpoints(
            primary, "test-1a", count=2)
        secondary_endpoints = mesh.deploy_sampling_endpoints(
            secondary, "test-1a", count=2, memory_base_mb=4096)
        validation = validate_saturation(cloud, primary_endpoints,
                                         secondary_endpoints,
                                         n_requests=100)
        assert not validation.primary_saturated
        assert not validation.pool_is_shared
