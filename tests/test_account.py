"""Cloud accounts: quotas and ledgers."""

import pytest

from repro.cloudsim.account import CloudAccount
from repro.cloudsim.billing import AWS_LAMBDA_BILLING
from repro.cloudsim.provider import AWS_LAMBDA
from repro.common.units import Money


@pytest.fixture
def account():
    return CloudAccount("acct-1", AWS_LAMBDA)


class TestQuota(object):
    def test_admits_up_to_quota(self, account):
        assert account.admit_batch(500) == 500
        assert account.admit_batch(1000) == 1000

    def test_throttles_excess(self, account):
        assert account.admit_batch(1500) == 1000
        assert account.throttled_requests == 500

    def test_throttles_accumulate(self, account):
        account.admit_batch(1200)
        account.admit_batch(1300)
        assert account.throttled_requests == 500


class TestLedger(object):
    def test_records_and_totals(self, account):
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 1.0))
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 1.0))
        assert account.total_spend() == Money(2 * (1.66667e-5 + 2e-7))

    def test_category_filtering(self, account):
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 1.0),
                            category="sampling")
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 2.0),
                            category="invocation")
        assert account.total_spend("sampling") < account.total_spend()

    def test_spend_breakdown(self, account):
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 1.0),
                            category="sampling")
        account.record_bill(AWS_LAMBDA_BILLING.bill(1024, 1.0),
                            category="sampling")
        breakdown = account.spend_breakdown()
        assert set(breakdown) == {"sampling"}
        assert breakdown["sampling"] == pytest.approx(
            2 * (1.66667e-5 + 2e-7))

    def test_empty_ledger(self, account):
        assert account.total_spend() == Money(0)


class TestDeployments(object):
    def test_register_and_list(self, account):
        class FakeDeployment(object):
            deployment_id = "dep-1"

        account.register_deployment(FakeDeployment())
        assert len(account.deployments()) == 1

    def test_duplicate_rejected(self, account):
        class FakeDeployment(object):
            deployment_id = "dep-1"

        account.register_deployment(FakeDeployment())
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            account.register_deployment(FakeDeployment())
