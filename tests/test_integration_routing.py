"""Integration: smart routing end-to-end on the real catalog (EX-5)."""

import pytest

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RegionalPolicy,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.common.units import Money
from repro.workloads import resolve_runtime_model

EX5_ZONES = ("us-west-1a", "us-west-1b", "sa-east-1a")


@pytest.fixture
def ex5_setup():
    cloud = build_sky(seed=5, aws_only=True)
    account = cloud.create_account("study", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {}
    for zone in EX5_ZONES:
        endpoints[zone] = mesh.deploy_sampling_endpoints(account, zone,
                                                         count=10)
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    return cloud, mesh, store, endpoints, account


def run_study(setup, workload_name, days=7, burst=400):
    cloud, mesh, store, endpoints, _ = setup
    study = RoutingStudy(cloud, mesh, store,
                         workload_by_name(workload_name), list(EX5_ZONES),
                         endpoints, days=days, burst_size=burst,
                         polls_per_day=6)
    return study.run([
        BaselinePolicy("us-west-1b"),
        RetryRoutingPolicy("us-west-1b", "retry_slow"),
        RetryRoutingPolicy("us-west-1b", "focus_fastest"),
        HybridPolicy("focus_fastest"),
    ])


class TestEx5Study(object):
    def test_zipper_retry_savings_in_paper_range(self, ex5_setup):
        # Figure 10: focus fastest ~16.5 % cumulative (max 18.5 % daily);
        # retry slow ~10.1 %.  Shape target: both positive, focus-fastest
        # competitive, magnitudes in the tens of percent.
        result = run_study(ex5_setup, "zipper")
        summary = result.savings_summary()
        assert 4.0 < summary["retry_slow"]["cumulative_pct"] < 25.0
        assert 8.0 < summary["focus_fastest"]["cumulative_pct"] < 28.0
        assert summary["focus_fastest"]["max_daily_pct"] < 35.0

    def test_hybrid_beats_single_zone_retry_on_average(self, ex5_setup):
        result = run_study(ex5_setup, "logistic_regression")
        summary = result.savings_summary()
        assert (summary["hybrid_focus_fastest"]["cumulative_pct"]
                >= summary["retry_slow"]["cumulative_pct"] - 3.0)
        assert summary["hybrid_focus_fastest"]["cumulative_pct"] > 5.0

    def test_hybrid_hops_between_zones(self, ex5_setup):
        result = run_study(ex5_setup, "logistic_regression")
        zones = set(result.zones_chosen["hybrid_focus_fastest"])
        assert zones <= set(EX5_ZONES)
        # Region hopping: with volatile us-west zones the best zone should
        # change at least once over a week.
        assert len(zones) >= 2

    def test_focus_fastest_retries_aggressively(self, ex5_setup):
        # Figure 10: the focus-fastest method retried more than 50 % of
        # invocations on some days.
        result = run_study(ex5_setup, "zipper", days=5)
        assert result.retry_fraction("focus_fastest", 400) > 0.5

    def test_sampling_spend_is_dollars_not_tens(self, ex5_setup):
        # §4.5: "Only $2.80 was spent performing infrastructure
        # characterizations" over two weeks.
        result = run_study(ex5_setup, "zipper", days=14)
        assert result.sampling_cost < Money(6.0)


class TestRegionalRouting(object):
    def test_regional_policy_picks_zone_with_fast_cpus(self, ex5_setup):
        cloud, mesh, store, endpoints, _ = ex5_setup
        from repro.sampling import SamplingCampaign
        for zone in EX5_ZONES:
            campaign = SamplingCampaign(cloud, endpoints[zone],
                                        max_polls=6, inter_poll_gap=1.0)
            store.put(campaign.run().ground_truth())
        from repro.core import SmartRouter
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             workload_by_name("matrix_multiply"),
                             list(EX5_ZONES))
        decision = router.decide()
        ranker_scores = {
            zone: router._ranker.expected_factor(
                zone, workload_by_name("matrix_multiply").cpu_factors())
            for zone in EX5_ZONES
        }
        assert decision.zone_id == min(ranker_scores,
                                       key=ranker_scores.get)


class TestAllWorkloadsHybrid(object):
    def test_mean_savings_across_workloads(self, ex5_setup):
        # §4.5: hybrid averaged 10.03 % (σ=3.70 %) across all functions.
        # At reduced scale we check a representative trio lands in the
        # positive band.
        from repro.core.metrics import mean_std
        savings = []
        for name in ("zipper", "graph_bfs", "math_service"):
            result = run_study(ex5_setup, name, days=4, burst=300)
            summary = result.savings_summary()
            savings.append(summary["hybrid_focus_fastest"][
                "cumulative_pct"])
        mean, _ = mean_std(savings)
        assert 5.0 < mean < 30.0
