"""Simulator-side dynamic-function handlers."""

import pytest

from repro.common.errors import ConfigurationError, PayloadError
from repro.cloudsim.handlers import ModeledWorkloadHandler
from repro.dynfunc import (
    CPU_CHECK_SECONDS,
    DynamicFunctionHandler,
    UniversalDynamicFunctionHandler,
    build_payload,
)

SOURCE = "def handler(event, context):\n    return 1\n"


def model(name="wl", base=10.0):
    return ModeledWorkloadHandler(name, base, {"fast": 0.9, "slow": 1.3},
                                  noise_sigma=0.0)


class TestDynamicFunctionHandler(object):
    def test_requires_model(self):
        with pytest.raises(ConfigurationError):
            DynamicFunctionHandler(None)

    def test_duration_without_payload_is_pure_workload(self):
        handler = DynamicFunctionHandler(model())
        assert handler.duration_on("fast", None) == pytest.approx(9.0)

    def test_first_payload_pays_decode_overhead(self):
        handler = DynamicFunctionHandler(model())
        payload = build_payload(SOURCE)
        with_payload = handler.duration_on("fast", None, payload)
        assert with_payload > 9.0

    def test_cached_payload_is_nearly_free(self):
        handler = DynamicFunctionHandler(model())
        payload = build_payload(SOURCE)
        first = handler.duration_on("fast", None, payload)
        second = handler.duration_on("fast", None, payload)
        assert second < first
        assert second == pytest.approx(9.0, abs=1e-3)

    def test_banned_cpu_returns_check_only(self):
        handler = DynamicFunctionHandler(model())
        payload = build_payload(SOURCE).with_banned_cpus(["slow"])
        handler.duration_on("slow", None, payload)  # decode round
        duration = handler.duration_on("slow", None, payload)
        assert duration == pytest.approx(
            CPU_CHECK_SECONDS, abs=1e-3)

    def test_allowed_cpu_runs_workload(self):
        handler = DynamicFunctionHandler(model())
        payload = build_payload(SOURCE).with_banned_cpus(["slow"])
        handler.duration_on("fast", None, payload)
        assert handler.duration_on(
            "fast", None, payload) == pytest.approx(9.0, abs=1e-3)

    def test_respond_reports_declined(self):
        handler = DynamicFunctionHandler(model())
        payload = build_payload(SOURCE).with_banned_cpus(["slow"])
        assert handler.respond("slow", payload)["executed"] is False
        assert handler.respond("fast", payload)["executed"] is True

    def test_default_payload_used(self):
        payload = build_payload(SOURCE)
        handler = DynamicFunctionHandler(model(), default_payload=payload)
        first = handler.duration_on("fast", None)
        assert first > 9.0

    def test_mean_duration_skips_overhead(self):
        handler = DynamicFunctionHandler(model())
        assert handler.mean_duration_on("slow") == pytest.approx(13.0)


class TestUniversalHandler(object):
    def test_resolves_model_from_payload(self):
        models = {"alpha": model("alpha", 5.0), "beta": model("beta", 20.0)}
        handler = UniversalDynamicFunctionHandler(
            lambda payload: models[payload.args["workload"]])
        alpha = build_payload(SOURCE, args={"workload": "alpha"})
        beta = build_payload(SOURCE, args={"workload": "beta"})
        handler.duration_on("fast", None, alpha)
        handler.duration_on("fast", None, beta)
        assert handler.duration_on("fast", None,
                                   alpha) == pytest.approx(4.5, abs=1e-3)
        assert handler.duration_on("fast", None,
                                   beta) == pytest.approx(18.0, abs=1e-3)

    def test_requires_payload(self):
        handler = UniversalDynamicFunctionHandler(lambda payload: model())
        with pytest.raises(PayloadError):
            handler.duration_on("fast", None, None)

    def test_requires_resolver(self):
        with pytest.raises(ConfigurationError):
            UniversalDynamicFunctionHandler(None)

    def test_registry_resolver_for_real_workloads(self):
        from repro.workloads import resolve_runtime_model, workload_by_name
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        workload = workload_by_name("zipper")
        payload = workload.payload()
        handler.duration_on("xeon-2.5", None, payload)
        duration = handler.duration_on("xeon-2.5", None, payload)
        assert duration == pytest.approx(workload.base_seconds, rel=0.2)

    def test_registry_resolver_rejects_anonymous_payload(self):
        from repro.workloads import resolve_runtime_model
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        payload = build_payload(SOURCE)  # no workload arg
        with pytest.raises(PayloadError):
            handler.duration_on("xeon-2.5", None, payload)
