"""Deterministic RNG derivation."""

import numpy as np

from repro.common.rng import derive_rng, spawn_children


class TestDeriveRng(object):
    def test_same_tokens_same_stream(self):
        a = derive_rng(42, "zone", "us-west-1a")
        b = derive_rng(42, "zone", "us-west-1a")
        assert a.random() == b.random()

    def test_different_tokens_different_stream(self):
        a = derive_rng(42, "zone", "us-west-1a")
        b = derive_rng(42, "zone", "us-west-1b")
        assert a.random() != b.random()

    def test_different_seeds_different_stream(self):
        assert (derive_rng(1, "x").random()
                != derive_rng(2, "x").random())

    def test_from_generator(self):
        parent = np.random.default_rng(7)
        child = derive_rng(parent, "child")
        assert isinstance(child, np.random.Generator)

    def test_none_parent_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_child_independent_of_sibling_count(self):
        # Adding more derivations elsewhere must not shift this stream.
        lone = derive_rng(9, "target").random()
        derive_rng(9, "other-1")
        derive_rng(9, "other-2")
        again = derive_rng(9, "target").random()
        assert lone == again


class TestSpawnChildren(object):
    def test_count(self):
        assert len(spawn_children(5, 4, "hosts")) == 4

    def test_children_differ(self):
        kids = spawn_children(5, 3, "hosts")
        values = {k.random() for k in kids}
        assert len(values) == 3

    def test_reproducible(self):
        first = [k.random() for k in spawn_children(5, 3, "hosts")]
        second = [k.random() for k in spawn_children(5, 3, "hosts")]
        assert first == second
