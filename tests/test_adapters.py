"""Provider adapters: cold-start distributions, keep-alive policies,
quota models, pool-scaling rules, preemption, and function timeouts.

The load-bearing contract is the default adapter's *bit-identity* with
the legacy scalars: ``FixedColdStart`` never touches the RNG, the hard
cap reproduces ``min(n, quota)``, and the default ``PoolScalingRule``
recipe matches the historical derivation exactly.
"""

import numpy as np
import pytest

from repro.cloudsim.adapters import (
    BimodalColdStart,
    BurstThenThrottleQuota,
    ContainerReuseKeepAlive,
    FixedColdStart,
    FixedLeaseKeepAlive,
    HardCapQuota,
    LognormalColdStart,
    PoolScalingRule,
    PreemptionProcess,
    ProviderAdapter,
    SlidingWindowKeepAlive,
    TokenRefillQuota,
    keepalive_policy_from_spec,
)
from repro.cloudsim.billing import AWS_LAMBDA_BILLING
from repro.cloudsim.handlers import ModeledWorkloadHandler, SleepHandler
from repro.cloudsim.provider import (
    AWS_LAMBDA,
    PROVIDERS,
    ProviderConfig,
    register_provider,
)
from repro.common.errors import ConfigurationError
from tests.helpers import make_cloud, make_zone


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestColdStartDistributions(object):
    def test_fixed_draws_no_rng(self):
        # The seed contract: the default adapter consumes the cloud RNG
        # exactly as the legacy scalar did — i.e. not at all.
        dist = FixedColdStart(0.18)
        rng = _rng(7)
        before = rng.bit_generator.state
        assert dist.sample(rng) == 0.18
        samples = dist.sample_n(rng, 5)
        assert rng.bit_generator.state == before
        assert list(samples) == [0.18] * 5
        assert dist.is_fixed

    def test_lognormal_batch_matches_scalar_stream(self):
        # sample_n(rng, n) must consume the stream exactly like n
        # scalar sample() calls — the vectorized and looped poll paths
        # share one draw sequence.
        dist = LognormalColdStart(0.45, sigma=0.35)
        batch = dist.sample_n(_rng(11), 64)
        rng = _rng(11)
        scalars = [dist.sample(rng) for _ in range(64)]
        np.testing.assert_array_equal(batch, np.asarray(scalars))
        assert not dist.is_fixed
        assert float(np.min(batch)) > 0.0

    def test_bimodal_batch_matches_scalar_stream(self):
        dist = BimodalColdStart(0.25, 2.5, slow_share=0.15)
        batch = dist.sample_n(_rng(13), 64)
        rng = _rng(13)
        scalars = [dist.sample(rng) for _ in range(64)]
        np.testing.assert_array_equal(batch, np.asarray(scalars))

    def test_bimodal_slow_share(self):
        dist = BimodalColdStart(0.25, 2.5, slow_share=0.15)
        samples = dist.sample_n(_rng(5), 20000)
        share = float(np.mean(samples == 2.5))
        assert share == pytest.approx(0.15, abs=0.02)


class TestKeepAlivePolicies(object):
    def test_specs_round_trip(self):
        for policy in (SlidingWindowKeepAlive(300.0),
                       FixedLeaseKeepAlive(600.0, 3600.0),
                       ContainerReuseKeepAlive(600.0, 96)):
            rebuilt = keepalive_policy_from_spec(policy.spec())
            assert rebuilt.kind == policy.kind
            assert rebuilt.spec() == policy.spec()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            keepalive_policy_from_spec(("caffeinated", 1.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowKeepAlive(0.0)
        with pytest.raises(ConfigurationError):
            FixedLeaseKeepAlive(600.0, -1.0)
        with pytest.raises(ConfigurationError):
            ContainerReuseKeepAlive(600.0, 0)


class TestQuotaModels(object):
    def test_hard_cap_is_min(self):
        quota = HardCapQuota(1000)
        state = quota.new_state()
        assert state is None  # stateless: nothing to pickle or reset
        for n in (0, 1, 999, 1000, 1001, 5000):
            assert quota.admit(state, n, 0.0) == min(n, 1000)

    def test_burst_then_throttle_window(self):
        quota = BurstThenThrottleQuota(100, 10, window_s=60.0)
        state = quota.new_state()
        assert quota.admit(state, 80, 0.0) == 80   # inside the burst
        assert quota.admit(state, 40, 1.0) == 20   # remaining headroom
        assert quota.admit(state, 40, 2.0) == 10   # throttled to sustained
        assert quota.admit(state, 150, 60.0) == 100  # window rolled over

    def test_token_refill(self):
        quota = TokenRefillQuota(100, 10.0)
        state = quota.new_state()
        assert quota.admit(state, 150, 0.0) == 100  # drain the bucket
        assert quota.admit(state, 150, 5.0) == 50   # 5 s * 10/s refilled
        assert quota.admit(state, 150, 1000.0) == 100  # capped at capacity


class TestPoolScalingRule(object):
    def test_default_recipe_matches_legacy_derivation(self):
        rule = PoolScalingRule()
        for slots in (64, 1024, 3072, 12288, 20480):
            assert rule.recipe(slots) == (0.85, 8, max(256, slots // 12))

    def test_custom_rule(self):
        rule = PoolScalingRule(pressure_threshold=0.7, slots_per_minute=4,
                               surge_floor=128, surge_divisor=16)
        assert rule.recipe(3200) == (0.7, 4, 200)
        assert rule.recipe(100) == (0.7, 4, 128)


class TestProviderAdapter(object):
    def test_preemption_validation(self):
        with pytest.raises(ConfigurationError):
            ProviderAdapter(FixedColdStart(0.1),
                            SlidingWindowKeepAlive(300.0),
                            HardCapQuota(10), preemption=(0.0, 0.5))
        with pytest.raises(ConfigurationError):
            ProviderAdapter(FixedColdStart(0.1),
                            SlidingWindowKeepAlive(300.0),
                            HardCapQuota(10), preemption=(60.0, 1.5))

    def test_default_scaling_filled_in(self):
        adapter = ProviderAdapter(FixedColdStart(0.1),
                                  SlidingWindowKeepAlive(300.0),
                                  HardCapQuota(10))
        assert adapter.scaling.recipe(1200) == (0.85, 8, max(256, 100))

    def test_default_adapter_reproduces_legacy_scalars(self):
        adapter = AWS_LAMBDA.adapter
        assert adapter.cold_start.is_fixed
        assert adapter.cold_start.sample(None) == AWS_LAMBDA.cold_start_s
        assert adapter.keepalive.spec() == ("sliding", AWS_LAMBDA.keepalive)
        assert adapter.quota.admit(None, 5000, 0.0) == \
            AWS_LAMBDA.concurrency_quota
        assert adapter.preemption is None


class TestPreemptionProcess(object):
    def _preempted_after(self, seed):
        zone = make_zone(seed=3)
        # Many separate placements → many FI buckets → many independent
        # preemption draws per strike.
        for i in range(12):
            zone.place_batch("fn-{}".format(i), 50, duration=500.0,
                             window=0.0)
        process = PreemptionProcess("test-1a", 60.0, 0.5, seed=seed)
        process.apply_if_due(zone, 130.0)  # strikes at 60 and 120
        return process.preempted

    def test_deterministic_per_seed(self):
        runs = [self._preempted_after(9) for _ in range(2)]
        assert runs[0] == runs[1]
        assert runs[0] > 0

    def test_seed_changes_the_timeline(self):
        assert self._preempted_after(9) != self._preempted_after(10)

    def test_no_strike_before_first_interval(self):
        zone = make_zone(seed=3)
        zone.place_batch("fn", 100, duration=500.0, window=0.0)
        process = PreemptionProcess("test-1a", 60.0, 1.0, seed=0)
        process.apply_if_due(zone, 59.9)
        assert process.preempted == 0
        process.apply_if_due(zone, 60.0)
        assert process.preempted > 0

    def test_dedicated_stream_leaves_zone_rng_alone(self):
        # Attaching (and striking) must not perturb the zone's own RNG.
        zone_a = make_zone(seed=3)
        zone_b = make_zone(seed=3)
        for zone in (zone_a, zone_b):
            zone.place_batch("fn", 200, duration=500.0, window=0.0)
        PreemptionProcess("test-1a", 60.0, 1.0, seed=0).apply_if_due(
            zone_b, 61.0)
        assert zone_a.rng.bit_generator.state == \
            zone_b.rng.bit_generator.state


TIMEOUT_PROVIDER = "timeout-faas"


@pytest.fixture
def timeout_provider():
    config = ProviderConfig(
        name=TIMEOUT_PROVIDER,
        memory_options_mb=(128, 10240),
        archs=("x86_64",),
        concurrency_quota=1000,
        billing=AWS_LAMBDA_BILLING,
        function_timeout=0.2,
    )
    register_provider(config)
    try:
        yield config
    finally:
        PROVIDERS.pop(TIMEOUT_PROVIDER, None)


def _timeout_cloud():
    return make_cloud(seed=5, provider=TIMEOUT_PROVIDER)


class TestFunctionTimeout(object):
    def test_scalar_invoke_billed_at_the_cap(self, timeout_provider):
        cloud = _timeout_cloud()
        account = cloud.create_account("acct", TIMEOUT_PROVIDER)
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=SleepHandler(1.0))
        invocation = cloud.invoke(deployment)
        assert invocation.timed_out
        assert invocation.runtime_s == 0.2
        reference = deployment.billing.bill(1024, 0.2, "x86_64", requests=1)
        assert float(invocation.bill.total) == float(reference.total)

    def test_fast_request_not_flagged(self, timeout_provider):
        cloud = _timeout_cloud()
        account = cloud.create_account("acct", TIMEOUT_PROVIDER)
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=SleepHandler(0.05))
        invocation = cloud.invoke(deployment)
        assert not invocation.timed_out
        # SleepHandler adds a 1e-3 dispatch overhead to the sleep.
        assert invocation.runtime_s == pytest.approx(0.051)

    def test_batch_paths_cap_and_count_identically(self, timeout_provider):
        keys = []
        for vectorize in (True, False):
            cloud = _timeout_cloud()
            account = cloud.create_account("acct", TIMEOUT_PROVIDER)
            deployment = cloud.deploy(
                account, "test-1a", "fn", 1024,
                handler=SleepHandler(1.0))
            result = cloud.poll_batch(deployment, 300, vectorize=vectorize)
            assert result.timeouts == result.served
            assert result.runtime_total_s == \
                pytest.approx(0.2 * result.served)
            keys.append(result.aggregate_key())
        assert keys[0] == keys[1]

    def test_batch_mixed_runtimes_agree_across_paths(self):
        # A noisy handler straddling the cap: some requests time out,
        # some don't, and the np.where cap must match the scalar cap
        # bit-for-bit.
        config = ProviderConfig(
            name=TIMEOUT_PROVIDER,
            memory_options_mb=(128, 10240),
            archs=("x86_64",),
            concurrency_quota=1000,
            billing=AWS_LAMBDA_BILLING,
            function_timeout=0.3,
        )
        register_provider(config)
        try:
            keys, timeouts = [], []
            for vectorize in (True, False):
                cloud = make_cloud(seed=5, provider=TIMEOUT_PROVIDER)
                account = cloud.create_account("acct", TIMEOUT_PROVIDER)
                deployment = cloud.deploy(
                    account, "test-1a", "fn", 1024,
                    handler=ModeledWorkloadHandler(
                        "wl", 0.3, {}, noise_sigma=0.2,
                        default_factor=1.0))
                result = cloud.poll_batch(deployment, 500,
                                          vectorize=vectorize)
                keys.append(result.aggregate_key())
                timeouts.append(result.timeouts)
            assert keys[0] == keys[1]
            assert 0 < timeouts[0] < 500
        finally:
            PROVIDERS.pop(TIMEOUT_PROVIDER, None)

    def test_timeouts_ride_the_aggregate_key(self, timeout_provider):
        cloud = _timeout_cloud()
        account = cloud.create_account("acct", TIMEOUT_PROVIDER)
        deployment = cloud.deploy(account, "test-1a", "fn", 1024,
                                  handler=SleepHandler(1.0))
        result = cloud.poll_batch(deployment, 50)
        assert result.aggregate_key()[-1] == result.timeouts == 50
