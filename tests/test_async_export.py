"""Off-thread exporters and the zero-allocation event fast path.

Covers :mod:`repro.obs.async_export` (bounded-queue JSONL streaming,
atomic registry snapshots, flush-on-close), ``emit_many`` on both bus
flavours, and the registry-lock guarantee that makes concurrent scrapes
safe against series creation.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    AsyncCsvExporter,
    AsyncJsonlExporter,
    AsyncPrometheusExporter,
    EventBus,
    MetricsRegistry,
    NULL_BUS,
    Observability,
    ObsServer,
    scrape,
)
from repro.obs.export import parse_prometheus_text


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestEmitMany(object):
    def test_null_bus_returns_zero_without_iterating(self):
        def exploding():
            raise AssertionError("NULL_BUS must not touch the iterable")
            yield  # pragma: no cover

        assert NULL_BUS.emit_many(exploding()) == 0

    def test_disabled_bus_skips_the_iterable_too(self):
        bus = EventBus()
        bus.pause()

        def exploding():
            raise AssertionError("paused bus must not touch the iterable")
            yield  # pragma: no cover

        assert bus.emit_many(exploding()) == 0

    def test_delivers_batch_and_counts(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event))
        delivered = bus.emit_many([
            ("batch.a", 1.0, {"n": 1}),
            ("batch.b", 2.0, {"n": 2}),
        ])
        assert delivered == 2
        assert [event.name for event in seen] == ["batch.a", "batch.b"]
        assert seen[1].fields == {"n": 2}
        assert seen[1].timestamp == 2.0


class TestAsyncJsonlExporter(object):
    def test_streams_bus_events_to_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with AsyncJsonlExporter(path).attach(bus) as exporter:
            for index in range(200):
                bus.emit("test.event", float(index), index=index)
            assert _wait_until(lambda: exporter.written == 200)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert len(lines) == 200
        assert [line["index"] for line in lines] == list(range(200))
        assert all(line["event"] == "test.event" for line in lines)

    def test_close_drains_the_queue(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = AsyncJsonlExporter(path)
        for index in range(500):
            exporter.submit({"index": index})
        exporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 500
        assert exporter.written == 500
        # Closed exporter refuses further submissions quietly.
        assert exporter.submit({"late": True}) is False

    def test_full_queue_drops_and_counts(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = AsyncJsonlExporter(path, capacity=1)
        # Stall the writer by flooding faster than it can drain is racy;
        # instead pause it deterministically: monopolize the handle lock
        # is not possible, so just submit with the thread asleep at
        # startup — capacity=1 plus a burst guarantees at least one drop.
        dropped_before = exporter.dropped
        results = [exporter.submit({"index": index})
                   for index in range(2000)]
        exporter.close()
        assert exporter.dropped >= dropped_before
        assert exporter.dropped == results.count(False)
        assert exporter.written == results.count(True)
        assert len(path.read_text().splitlines()) == exporter.written

    def test_every_written_line_parses(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with AsyncJsonlExporter(path) as exporter:
            for index in range(300):
                exporter.submit({"index": index, "nest": {"a": [1, 2]}})
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_bad_capacity_and_path_raise_on_caller(self, tmp_path):
        with pytest.raises(ConfigurationError):
            AsyncJsonlExporter(tmp_path / "x.jsonl", capacity=0)
        with pytest.raises(OSError):
            AsyncJsonlExporter(tmp_path / "no" / "such" / "dir" / "x.jsonl")


_KILL_PRODUCER = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.obs import AsyncJsonlExporter

exporter = AsyncJsonlExporter({path!r})
index = 0
while True:
    exporter.submit({{"index": index}})
    index += 1
    if index % 50 == 0:
        time.sleep(0.001)
"""


class TestCrashDurability(object):
    def test_sigterm_mid_run_leaves_only_complete_lines(self, tmp_path):
        """The CI smoke in script form: kill a producer, file still parses.

        The writer flushes after every drained batch, so whatever made it
        to disk before SIGTERM is complete JSONL — a torn line would mean
        the flush contract broke.
        """
        path = str(tmp_path / "crash.jsonl")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        process = subprocess.Popen(
            [sys.executable, "-c",
             _KILL_PRODUCER.format(src=src, path=path)])
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if os.path.exists(path) and os.path.getsize(path) > 4096:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("producer never wrote enough output")
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=10.0)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) > 0
        indexes = [json.loads(line)["index"] for line in lines]
        # Lines are written in submission order with no gaps.
        assert indexes == list(range(len(indexes)))


class TestSnapshotExporters(object):
    def test_prometheus_snapshots_and_final_close(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("jobs_total", zone="a").inc(3)
        path = tmp_path / "metrics.prom"
        with AsyncPrometheusExporter(registry, path,
                                     interval_s=0.02) as exporter:
            assert _wait_until(lambda: exporter.snapshots >= 2)
            registry.counter("jobs_total", zone="a").inc(2)
        samples = parse_prometheus_text(path.read_text())
        assert samples[("jobs_total", ("zone", "a"))] == 5.0
        assert not os.path.exists(str(path) + ".tmp")

    def test_csv_snapshot_has_all_rows(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b", zone="z").set(2.5)
        registry.histogram("c_s").observe(0.1)
        path = tmp_path / "metrics.csv"
        exporter = AsyncCsvExporter(registry, path, interval_s=60.0)
        exporter.close()  # short run: only the final snapshot exists
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(AsyncCsvExporter.FIELDS)
        assert len(lines) == 4
        assert exporter.snapshots == 1

    def test_bad_interval_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            AsyncPrometheusExporter(MetricsRegistry(),
                                    tmp_path / "m.prom", interval_s=0)


class TestConcurrentRegistryMutation(object):
    def test_collect_never_tears_while_series_are_created(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def mutate():
            index = 0
            while not stop.is_set():
                registry.counter("churn_total",
                                 shard=str(index % 4096)).inc()
                index += 1

        def collect():
            try:
                while not stop.is_set():
                    for _name, _kind, _labels, _metric in \
                            registry.collect():
                        pass
            except RuntimeError as error:  # dict-changed-size tear
                errors.append(error)

        threads = [threading.Thread(target=mutate),
                   threading.Thread(target=collect),
                   threading.Thread(target=collect)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert errors == []

    def test_live_scrape_during_mutation(self):
        obs = Observability()
        stop = threading.Event()

        def mutate():
            index = 0
            while not stop.is_set():
                # Bounded label space: constant churn on series creation
                # paths without growing the scrape body unboundedly.
                obs.registry.counter("scrape_churn_total",
                                     shard=str(index % 512)).inc()
                index += 1

        thread = threading.Thread(target=mutate)
        thread.start()
        try:
            with ObsServer(obs) as server:
                for _ in range(10):
                    body = scrape(server.url("/metrics"), timeout=30.0)
                    parse_prometheus_text(body)
        finally:
            stop.set()
            thread.join(timeout=5.0)

    def test_snapshot_exporter_during_mutation(self, tmp_path):
        registry = MetricsRegistry()
        stop = threading.Event()

        def mutate():
            index = 0
            while not stop.is_set():
                registry.counter("file_churn_total",
                                 shard=str(index % 1024)).inc()
                index += 1

        thread = threading.Thread(target=mutate)
        thread.start()
        path = tmp_path / "m.prom"
        try:
            with AsyncPrometheusExporter(registry, path,
                                         interval_s=0.01) as exporter:
                assert _wait_until(lambda: exporter.snapshots >= 5)
        finally:
            stop.set()
            thread.join(timeout=5.0)
        parse_prometheus_text(path.read_text())
