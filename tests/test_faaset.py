"""FaaSET-style experiment helpers."""

import pytest

from repro.cloudsim.handlers import ModeledWorkloadHandler, SleepHandler
from repro.skymesh import ExperimentRunner


@pytest.fixture
def runner(cloud):
    return ExperimentRunner(cloud)


@pytest.fixture
def deployment(cloud, aws_account):
    return cloud.deploy(aws_account, "test-1a", "fn", 2048,
                        handler=SleepHandler(0.25))


class TestRun(object):
    def test_collects_one_report_per_invocation(self, runner, deployment):
        result = runner.run(deployment, repetitions=10)
        assert len(result) == 10
        assert result.failures == 0

    def test_mean_runtime(self, runner, deployment):
        result = runner.run(deployment, repetitions=5)
        assert result.mean_runtime_ms() == pytest.approx(251.0)

    def test_stdev_zero_for_constant_runtime(self, runner, deployment):
        result = runner.run(deployment, repetitions=5)
        assert result.stdev_runtime_ms() == pytest.approx(0.0, abs=1e-6)

    def test_cold_start_fraction_with_reuse(self, runner, deployment):
        result = runner.run(deployment, repetitions=4, gap_seconds=1.0)
        # First invocation cold, later ones reuse the warm FI.
        assert result.cold_start_fraction() == pytest.approx(0.25)

    def test_force_new_all_cold(self, runner, deployment):
        result = runner.run(deployment, repetitions=4, gap_seconds=1.0,
                            force_new=True)
        assert result.cold_start_fraction() == 1.0

    def test_cpu_breakdown(self, runner, cloud, aws_account):
        handler = ModeledWorkloadHandler("wl", 1.0,
                                         {"xeon-2.5": 1.0, "xeon-2.9": 2.0},
                                         noise_sigma=0.0)
        deployment = cloud.deploy(aws_account, "test-1a", "wl", 2048,
                                  handler=handler)
        result = runner.run(deployment, repetitions=20, gap_seconds=400.0)
        breakdown = result.cpu_breakdown()
        assert set(breakdown) <= {"xeon-2.5", "xeon-2.9"}
        for cpu, (count, mean_ms) in breakdown.items():
            assert count > 0
            expected = 1000.0 if cpu == "xeon-2.5" else 2000.0
            assert mean_ms == pytest.approx(expected)


class TestCompare(object):
    def test_side_by_side(self, runner, cloud, aws_account):
        a = cloud.deploy(aws_account, "test-1a", "fn-a", 2048,
                         handler=SleepHandler(0.25))
        b = cloud.deploy(aws_account, "test-1b", "fn-b", 2048,
                         handler=SleepHandler(0.25))
        results = runner.compare([a, b], repetitions=3)
        assert len(results) == 2
        for result in results.values():
            assert len(result) == 3
