"""The chaos harness and its CLI: the PR's acceptance demo as a test.

Under a targeted brownout the resilient client path must hold near-full
availability while the naive path measurably degrades, with breaker
transitions and fault events visible through the obs exports.
"""

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.cli import main
from repro.faults.harness import ChaosExperiment


@pytest.fixture(scope="module")
def brownout_reports():
    experiment = ChaosExperiment(zones=("us-west-1a", "us-west-1b"),
                                 seed=42, requests=250)
    return experiment.run_preset("brownout")


class TestChaosExperiment(object):
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosExperiment(zones=("us-west-1a",))
        with pytest.raises(ConfigurationError):
            ChaosExperiment(requests=0)

    def test_resilient_beats_naive_under_brownout(self, brownout_reports):
        resilient, naive = brownout_reports
        assert resilient.availability >= 0.99
        assert naive.availability < 0.9
        assert resilient.failovers > 0

    def test_breaker_transitions_are_observable(self, brownout_reports):
        resilient, _ = brownout_reports
        assert resilient.breaker_transitions
        zones = {zone for zone, _, _, _ in resilient.breaker_transitions}
        assert "us-west-1a" in zones  # the preset targets the preferred zone

    def test_faults_flow_through_the_metrics_registry(self,
                                                      brownout_reports):
        resilient, naive = brownout_reports
        assert any(kind == "brownout"
                   for kind, _ in resilient.fault_counts)
        counter = resilient.obs.registry.get(
            "faults_injected_total", zone="us-west-1a", kind="brownout")
        assert counter is not None and counter.value > 0
        assert resilient.obs.registry.get(
            "failovers_total", zone="us-west-1a",
            reason="no_capacity") is not None
        # The naive run injects faults too — it just cannot dodge them.
        assert naive.fault_counts

    def test_report_serialises(self, brownout_reports):
        resilient, _ = brownout_reports
        payload = resilient.to_dict()
        assert payload["label"] == "resilient"
        assert payload["requests"] == 250
        assert 0.0 <= payload["availability"] <= 1.0
        assert payload["p99_latency_s"] >= payload["p50_latency_s"]
        json.dumps(payload)  # round-trippable

    def test_identical_seeds_reproduce_the_experiment(self):
        def availability():
            experiment = ChaosExperiment(seed=42, requests=60)
            resilient, naive = experiment.run_preset("outage")
            return (resilient.availability, naive.availability,
                    [f for f in resilient.fault_counts.items()])

        assert availability() == availability()


class TestChaosCli(object):
    def test_chaos_command_end_to_end(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "chaos.json"
        prom_path = tmp_path / "chaos.prom"
        code = main(["chaos", "--preset", "brownout", "--requests", "150",
                     "--assert-availability", "0.95",
                     "--json", str(json_path), "--prom", str(prom_path)],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "resilient" in text and "naive" in text
        assert "OK:" in text
        payload = json.loads(json_path.read_text())
        assert payload["resilient"]["availability"] >= 0.95
        prom = prom_path.read_text()
        assert "faults_injected_total" in prom
        assert "breaker_state" in prom

    def test_chaos_command_fails_below_the_floor(self):
        out = io.StringIO()
        # An impossible floor forces the failure path.
        code = main(["chaos", "--preset", "brownout", "--requests", "40",
                     "--assert-availability", "1.01"], out=out)
        assert code == 1
        assert "FAIL:" in out.getvalue()
