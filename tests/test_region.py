"""Regions."""

import pytest

from repro.common.errors import ConfigurationError, UnknownZoneError
from repro.cloudsim.network import GeoPoint
from repro.cloudsim.provider import AWS_LAMBDA
from repro.cloudsim.region import Region
from tests.helpers import make_zone


@pytest.fixture
def region(clock):
    region = Region("test-1", AWS_LAMBDA, GeoPoint(47.6, -122.3))
    region.add_zone(make_zone("test-1a", clock=clock))
    region.add_zone(make_zone("test-1b", clock=clock))
    return region


class TestRegion(object):
    def test_requires_geopoint(self):
        with pytest.raises(ConfigurationError):
            Region("r", AWS_LAMBDA, (1.0, 2.0))

    def test_zone_lookup(self, region):
        assert region.zone("test-1a").zone_id == "test-1a"

    def test_unknown_zone(self, region):
        with pytest.raises(UnknownZoneError):
            region.zone("test-1z")

    def test_duplicate_zone_rejected(self, region, clock):
        with pytest.raises(ConfigurationError):
            region.add_zone(make_zone("test-1a", clock=clock))

    def test_zone_ids_sorted(self, region):
        assert region.zone_ids() == ["test-1a", "test-1b"]

    def test_first_zone(self, region):
        assert region.first_zone().zone_id == "test-1a"

    def test_first_zone_of_empty_region_raises(self):
        empty = Region("empty", AWS_LAMBDA, GeoPoint(0, 0))
        with pytest.raises(ConfigurationError):
            empty.first_zone()

    def test_aggregate_cpu_shares(self, region):
        shares = region.aggregate_cpu_shares()
        # Both zones are 12x xeon-2.5 + 4x xeon-3.0 hosts.
        assert shares.share("xeon-2.5") == pytest.approx(0.75)
        assert shares.share("xeon-3.0") == pytest.approx(0.25)
