"""Categorical distributions and APE — including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.distributions import (
    CategoricalDistribution,
    absolute_percentage_error,
    total_variation_distance,
)
from repro.common.errors import CharacterizationError


def dist(**counts):
    return CategoricalDistribution(counts)


class TestConstruction(object):
    def test_from_counts(self):
        d = dist(a=3, b=1)
        assert d.share("a") == 0.75
        assert d.share("b") == 0.25

    def test_from_observations(self):
        d = CategoricalDistribution.from_observations("aab")
        assert d.share("a") == pytest.approx(2 / 3)

    def test_from_shares_normalizes(self):
        d = CategoricalDistribution.from_shares({"a": 2.0, "b": 2.0})
        assert d.share("a") == 0.5

    def test_zero_counts_dropped(self):
        d = dist(a=1, b=0)
        assert d.categories == ("a",)

    def test_negative_count_rejected(self):
        with pytest.raises(CharacterizationError):
            dist(a=-1)

    def test_empty(self):
        assert CategoricalDistribution({}).is_empty()


class TestAccessors(object):
    def test_total(self):
        assert dist(a=3, b=2).total == 5

    def test_share_of_missing_category(self):
        assert dist(a=1).share("zzz") == 0.0

    def test_mode(self):
        assert dist(a=1, b=5).mode() == "b"

    def test_mode_tie_breaks_alphabetically(self):
        assert dist(b=2, a=2).mode() == "a"

    def test_mode_of_empty_raises(self):
        with pytest.raises(CharacterizationError):
            CategoricalDistribution({}).mode()

    def test_counts_returns_copy(self):
        d = dist(a=1)
        d.counts()["a"] = 99
        assert d.count("a") == 1


class TestAlgebra(object):
    def test_merge_pools_counts(self):
        merged = dist(a=1, b=1).merge(dist(a=3))
        assert merged.count("a") == 4
        assert merged.total == 5

    def test_merge_keeps_operands_immutable(self):
        left, right = dist(a=1), dist(b=1)
        left.merge(right)
        assert left.categories == ("a",)
        assert right.categories == ("b",)

    def test_expectation(self):
        d = dist(fast=1, slow=1)
        values = {"fast": 0.9, "slow": 1.3}
        assert d.expectation(values.get) == pytest.approx(1.1)

    def test_expectation_with_default(self):
        d = dist(known=1, unknown=1)
        assert d.expectation({"known": 2.0}.get,
                             default=4.0) == pytest.approx(3.0)

    def test_expectation_missing_value_raises(self):
        with pytest.raises(CharacterizationError):
            dist(a=1).expectation(lambda c: None)

    def test_expectation_of_empty_raises(self):
        with pytest.raises(CharacterizationError):
            CategoricalDistribution({}).expectation(lambda c: 1.0)

    def test_sample_respects_support(self):
        d = dist(a=1, b=3)
        rng = np.random.default_rng(0)
        draws = d.sample(rng, size=100)
        assert set(draws) <= {"a", "b"}

    def test_equality(self):
        assert dist(a=1, b=1) == dist(a=10, b=10)
        assert dist(a=1) != dist(b=1)


class TestAPE(object):
    def test_identical_is_zero(self):
        d = dist(a=2, b=2)
        assert absolute_percentage_error(d, d) == 0.0

    def test_disjoint_is_200(self):
        assert absolute_percentage_error(dist(a=1), dist(b=1)) == 200.0

    def test_known_value(self):
        est = dist(a=6, b=4)
        tru = dist(a=5, b=5)
        assert absolute_percentage_error(est, tru) == pytest.approx(20.0)

    def test_missing_category_counts_double(self):
        est = dist(a=9, b=1)
        tru = dist(a=9, c=1)
        # b excess 10% + c missing 10% = 20% APE.
        assert absolute_percentage_error(est, tru) == pytest.approx(20.0)

    def test_empty_raises(self):
        with pytest.raises(CharacterizationError):
            absolute_percentage_error(CategoricalDistribution({}), dist(a=1))
        with pytest.raises(CharacterizationError):
            absolute_percentage_error(dist(a=1), CategoricalDistribution({}))

    def test_tvd_is_half_l1(self):
        est, tru = dist(a=6, b=4), dist(a=5, b=5)
        assert total_variation_distance(est, tru) == pytest.approx(0.1)


counts_strategy = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    st.integers(min_value=1, max_value=10 ** 6),
    min_size=1, max_size=5)


class TestProperties(object):
    @given(counts_strategy)
    def test_shares_sum_to_one(self, counts):
        d = CategoricalDistribution(counts)
        assert sum(d.shares().values()) == pytest.approx(1.0)

    @given(counts_strategy, counts_strategy)
    def test_ape_symmetric(self, left, right):
        a, b = CategoricalDistribution(left), CategoricalDistribution(right)
        assert (absolute_percentage_error(a, b)
                == pytest.approx(absolute_percentage_error(b, a)))

    @given(counts_strategy, counts_strategy)
    def test_ape_bounded(self, left, right):
        a, b = CategoricalDistribution(left), CategoricalDistribution(right)
        ape = absolute_percentage_error(a, b)
        assert 0.0 <= ape <= 200.0 + 1e-9

    @given(counts_strategy)
    def test_ape_to_self_zero(self, counts):
        d = CategoricalDistribution(counts)
        assert absolute_percentage_error(d, d) == pytest.approx(0.0)

    @given(counts_strategy, counts_strategy, counts_strategy)
    def test_ape_triangle_inequality(self, x, y, z):
        a = CategoricalDistribution(x)
        b = CategoricalDistribution(y)
        c = CategoricalDistribution(z)
        ab = absolute_percentage_error(a, b)
        bc = absolute_percentage_error(b, c)
        ac = absolute_percentage_error(a, c)
        assert ac <= ab + bc + 1e-9

    @given(counts_strategy, counts_strategy)
    def test_merge_total_is_sum(self, left, right):
        a, b = CategoricalDistribution(left), CategoricalDistribution(right)
        assert a.merge(b).total == pytest.approx(a.total + b.total)

    @given(counts_strategy, counts_strategy)
    def test_merged_share_between_operands(self, left, right):
        a, b = CategoricalDistribution(left), CategoricalDistribution(right)
        merged = a.merge(b)
        for category in merged.categories:
            low = min(a.share(category), b.share(category))
            high = max(a.share(category), b.share(category))
            assert low - 1e-9 <= merged.share(category) <= high + 1e-9
