"""Smoke tests: the example scripts run end-to-end.

Each example's ``main()`` is executed in-process with stdout captured;
these are the library's living documentation, so they must keep working.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        "example_" + name, EXAMPLES_DIR / (name + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "dynamic_functions_demo",
    "batch_cost_optimizer",
    "slo_aware_routing",
    "cross_provider_sky",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert len(output.splitlines()) >= 5


def test_quickstart_reports_savings(capsys):
    load_example("quickstart").main()
    output = capsys.readouterr().out
    assert "CPU characterization" in output
    assert "saves" in output


def test_all_examples_have_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert "def main():" in source, path.name
        assert '__name__ == "__main__"' in source, path.name
