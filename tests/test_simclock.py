"""Simulated clock and discrete-event queue."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import DAYS, HOURS
from repro.simclock import EventQueue, SimClock


class TestSimClock(object):
    def test_starts_at_epoch(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(1.0)

    def test_day_and_hour_views(self):
        clock = SimClock(2 * DAYS + 3 * HOURS)
        assert clock.day == 2
        assert clock.hour_of_day == pytest.approx(3.0)


class TestEventQueue(object):
    def test_fires_in_time_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(2.0, lambda t: fired.append("late"))
        queue.schedule(1.0, lambda t: fired.append("early"))
        queue.run_until(3.0)
        assert fired == ["early", "late"]

    def test_fifo_for_simultaneous_events(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(1.0, lambda t: fired.append("first"))
        queue.schedule(1.0, lambda t: fired.append("second"))
        queue.run_until(1.0)
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        clock = SimClock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule(1.5, lambda t: seen.append(t))
        queue.run_until(5.0)
        assert seen == [1.5]
        assert clock.now == 5.0

    def test_run_until_leaves_later_events(self):
        clock = SimClock()
        queue = EventQueue(clock)
        queue.schedule(10.0, lambda t: None)
        assert queue.run_until(5.0) == 0
        assert len(queue) == 1

    def test_cancelled_event_skipped(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        event = queue.schedule(1.0, lambda t: fired.append(1))
        event.cancel()
        queue.run_until(2.0)
        assert fired == []
        assert len(queue) == 0

    def test_schedule_in_past_rejected(self):
        clock = SimClock(10.0)
        queue = EventQueue(clock)
        with pytest.raises(ConfigurationError):
            queue.schedule(-1.0, lambda t: None)
        with pytest.raises(ConfigurationError):
            queue.schedule_at(5.0, lambda t: None)

    def test_run_all(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        for delay in (3.0, 1.0, 2.0):
            queue.schedule(delay, lambda t: fired.append(t))
        assert queue.run_all() == 3
        assert fired == [1.0, 2.0, 3.0]

    def test_next_event_time(self):
        clock = SimClock()
        queue = EventQueue(clock)
        assert queue.next_event_time() is None
        queue.schedule(4.0, lambda t: None)
        assert queue.next_event_time() == 4.0

    def test_events_can_schedule_events(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                queue.schedule(1.0, chain)

        queue.schedule(1.0, chain)
        queue.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]
