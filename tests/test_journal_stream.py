"""Lazy chunk-journal streaming (``ChunkJournal.stream``).

``load()`` materializes every chunk; the engine's resume path streams
instead, holding one chunk's unpickled records at a time.  These tests
pin the laziness (live-record count stays bounded while iterating a
large spool), the torn-tail stop, header side effects, and the
duplicate-chunk first-wins dedup on engine resume.
"""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import ChunkJournal
from repro.engine.journal import CHUNKS_FILE


class Tracked(object):
    """A picklable payload that counts live instances across unpickles."""

    live = 0

    def __init__(self, value):
        self.value = value
        Tracked.live += 1

    def __reduce__(self):
        return (Tracked, (self.value,))

    def __del__(self):
        Tracked.live -= 1


def _write_spool(directory, chunks=40, records_per_chunk=25):
    journal = ChunkJournal(str(directory))
    cells = chunks * records_per_chunk
    journal.begin("guard-spool", cells=cells,
                  chunk_size=records_per_chunk, chunks=chunks)
    index = 0
    for chunk_id in range(chunks):
        records = []
        for _ in range(records_per_chunk):
            records.append((index, True, Tracked(index), 1.0, 7))
            index += 1
        journal.append(chunk_id, [r[0] for r in records], records)
    journal.close()
    return journal


class TestStream(object):
    def test_yields_every_chunk_in_order(self, tmp_path):
        _write_spool(tmp_path, chunks=10, records_per_chunk=5)
        journal = ChunkJournal(str(tmp_path))
        seen = []
        for chunk_id, indexes, records in journal.stream(
                guard="guard-spool", cells=50):
            seen.append(chunk_id)
            assert [r[0] for r in records] == indexes
        assert seen == list(range(10))

    def test_streaming_keeps_live_records_bounded(self, tmp_path):
        """The point of stream(): one chunk's records resident, not all.

        40 chunks × 25 Tracked payloads = 1000 objects on disk; while
        iterating (nothing retained by the caller), the live count never
        exceeds two chunks' worth — the current yield plus at most one
        being decoded.
        """
        import gc

        _write_spool(tmp_path, chunks=40, records_per_chunk=25)
        gc.collect()
        assert Tracked.live == 0
        peak = 0
        journal = ChunkJournal(str(tmp_path))
        for _chunk_id, _indexes, _records in journal.stream():
            peak = max(peak, Tracked.live)
        del _records
        gc.collect()
        assert peak <= 2 * 25
        assert Tracked.live == 0
        # The materializing load() really does hold everything at once.
        loaded = ChunkJournal(str(tmp_path)).load()
        assert Tracked.live == 40 * 25
        del loaded
        gc.collect()
        assert Tracked.live == 0

    def test_sets_header_as_side_effect(self, tmp_path):
        _write_spool(tmp_path, chunks=3, records_per_chunk=2)
        journal = ChunkJournal(str(tmp_path))
        assert journal.header is None
        iterator = journal.stream()
        next(iterator)
        assert journal.header["chunk_size"] == 2
        assert journal.header["guard"] == "guard-spool"
        iterator.close()

    def test_guard_and_cells_validated_before_first_yield(self, tmp_path):
        _write_spool(tmp_path, chunks=3, records_per_chunk=2)
        with pytest.raises(ConfigurationError, match="does not match"):
            next(ChunkJournal(str(tmp_path)).stream(guard="other"))
        with pytest.raises(ConfigurationError, match="cells"):
            next(ChunkJournal(str(tmp_path)).stream(cells=1))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            next(ChunkJournal(str(tmp_path)).stream())

    def test_torn_tail_ends_stream(self, tmp_path):
        _write_spool(tmp_path, chunks=5, records_per_chunk=2)
        path = os.path.join(str(tmp_path), CHUNKS_FILE)
        with open(path) as handle:
            lines = handle.read().splitlines()
        # Simulate a crash mid-append: final chunk line is truncated.
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n" + lines[-1][:50])
        chunk_ids = [chunk_id for chunk_id, _, _ in
                     ChunkJournal(str(tmp_path)).stream()]
        assert chunk_ids == [0, 1, 2, 3]

    def test_load_is_stream_materialized(self, tmp_path):
        _write_spool(tmp_path, chunks=4, records_per_chunk=3)
        streamed = {chunk_id: (indexes, records) for chunk_id, indexes,
                    records in ChunkJournal(str(tmp_path)).stream()}
        loaded = ChunkJournal(str(tmp_path)).load()
        assert {k: (v[0], [(r[0], r[1]) for r in v[1]])
                for k, v in loaded.replayed.items()} == \
            {k: (v[0], [(r[0], r[1]) for r in v[1]])
             for k, v in streamed.items()}


class TestDuplicateChunks(object):
    def test_duplicate_chunk_id_first_wins_on_stream(self, tmp_path):
        """A worker re-sending a chunk after coordinator restart leaves
        two journal lines with the same id; records are deterministic so
        either copy is correct — the engine dedups first-wins while
        streaming, and load() keeps its historical last-wins dict."""
        journal = ChunkJournal(str(tmp_path))
        journal.begin("guard-dup", cells=2, chunk_size=2, chunks=1)
        journal.append(0, [0, 1], [(0, True, "first", 1.0, 1),
                                   (1, True, "first", 1.0, 1)])
        journal.append(0, [0, 1], [(0, True, "second", 1.0, 1),
                                   (1, True, "second", 1.0, 1)])
        journal.close()
        entries = list(ChunkJournal(str(tmp_path)).stream())
        assert [e[0] for e in entries] == [0, 0]
        # The engine-style dedup keeps the first copy...
        done = {}
        for chunk_id, indexes, records in entries:
            done.setdefault(chunk_id, records)
        assert done[0][0][2] == "first"
        # ...while load()'s dict semantics keep the last.
        loaded = ChunkJournal(str(tmp_path)).load()
        assert loaded.replayed[0][1][0][2] == "second"

    def test_out_of_range_chunk_id_ends_stream(self, tmp_path):
        journal = ChunkJournal(str(tmp_path))
        journal.begin("guard-x", cells=2, chunk_size=2, chunks=1)
        journal.append(0, [0, 1], [(0, True, "a", 1.0, 1),
                                   (1, True, "b", 1.0, 1)])
        journal.close()
        path = os.path.join(str(tmp_path), CHUNKS_FILE)
        with open(path) as handle:
            lines = handle.read().splitlines()
        forged = json.loads(lines[1])
        forged["chunk"] = 99  # beyond header["chunks"]
        with open(path, "a") as handle:
            handle.write(json.dumps(forged, sort_keys=True) + "\n")
        assert [e[0] for e in ChunkJournal(str(tmp_path)).stream()] == [0]
