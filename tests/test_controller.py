"""The SkyController middleware layer."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import DAYS, Money
from repro.core import BaselinePolicy
from repro.core.controller import SkyController
from repro.workloads import workload_by_name
from tests.helpers import make_cloud


@pytest.fixture
def controller():
    cloud = make_cloud(seed=81)
    account = cloud.create_account("ctl", "aws")
    return SkyController(cloud, account, ["test-1a", "test-1b"],
                         polls_per_refresh=2, poll_requests=150,
                         sampling_count=4)


class TestProvisioning(object):
    def test_mesh_and_sampling_endpoints_deployed(self, controller):
        assert controller.mesh.endpoint("test-1a", 2048) is not None
        assert controller.mesh.endpoint("test-1b", 2048) is not None
        # 2 dynamic endpoints + 2 zones x 4 sampling endpoints.
        assert len(controller.mesh) == 2 + 8

    def test_requires_zones(self):
        cloud = make_cloud(seed=82)
        account = cloud.create_account("ctl", "aws")
        with pytest.raises(ConfigurationError):
            SkyController(cloud, account, [])


class TestProfiling(object):
    def test_first_refresh_covers_all_zones(self, controller):
        refreshed = controller.refresh_due_zones()
        assert sorted(refreshed) == ["test-1a", "test-1b"]
        assert controller.sampling_cost > Money(0)

    def test_fresh_profiles_not_resampled_immediately(self, controller):
        controller.refresh_due_zones()
        controller.cloud.clock.advance(60.0)
        assert controller.refresh_due_zones() == []

    def test_force_refresh(self, controller):
        controller.refresh_due_zones()
        assert sorted(controller.refresh_due_zones(force=True)) == [
            "test-1a", "test-1b"]

    def test_stable_zone_gets_weekly_cadence(self, controller):
        # Seed the tracker with a drift-free history: both zones classify
        # stable and the weekly cadence suppresses daily re-sampling.
        from repro.common.units import Money
        from repro.sampling import CharacterizationBuilder

        for zone_id in ("test-1a", "test-1b"):
            for day in range(3):
                builder = CharacterizationBuilder(zone_id)
                builder.add_poll({"xeon-2.5": 500, "xeon-2.9": 300},
                                 cost=Money(0), timestamp=day * DAYS)
                controller.tracker.observe(builder.snapshot())
        assert controller.classification() == {"test-1a": "stable",
                                               "test-1b": "stable"}
        controller.cloud.clock.advance_to(3 * DAYS)
        cost_before = float(controller.sampling_cost)
        assert controller.refresh_due_zones() == []
        assert float(controller.sampling_cost) == cost_before
        # ...but a week later the profiles are due again.
        controller.cloud.clock.advance(8 * DAYS)
        assert sorted(controller.refresh_due_zones()) == ["test-1a",
                                                          "test-1b"]


class TestRouting(object):
    def test_submit_routes_a_request(self, controller):
        request = controller.submit(workload_by_name("sha1_hash"))
        assert request.zone_id in ("test-1a", "test-1b")
        assert request.cost > Money(0)

    def test_submit_burst(self, controller):
        burst = controller.submit_burst(workload_by_name("sha1_hash"), 100)
        assert burst.executed == 100
        assert burst.zone_id in ("test-1a", "test-1b")

    def test_hybrid_policy_prefers_fast_zone(self, controller):
        # test-1b hosts the 3.0 GHz pool; the default hybrid policy should
        # route compute-bound work there.
        burst = controller.submit_burst(
            workload_by_name("matrix_multiply"), 50)
        assert burst.zone_id == "test-1b"

    def test_passive_observations_recorded(self, controller):
        controller.submit_burst(workload_by_name("sha1_hash"), 100)
        total_passive = sum(
            controller.store.passive_samples(z)
            for z in ("test-1a", "test-1b"))
        assert total_passive > 0

    def test_custom_policy(self):
        cloud = make_cloud(seed=83)
        account = cloud.create_account("ctl", "aws")
        controller = SkyController(cloud, account, ["test-1a"],
                                   policy=BaselinePolicy("test-1a"),
                                   polls_per_refresh=2, poll_requests=150,
                                   sampling_count=4)
        request = controller.submit(workload_by_name("sha1_hash"))
        assert request.zone_id == "test-1a"
