"""Zone ranking by expected workload runtime."""

import pytest

from repro.common.errors import CharacterizationError
from repro.common.units import Money
from repro.core import CharacterizationStore, RetryPolicy, ZoneRanker
from repro.sampling import CharacterizationBuilder
from repro.cloudsim.network import GeoPoint
from tests.helpers import make_cloud

FACTORS = {"xeon-2.5": 1.0, "xeon-2.9": 1.25, "xeon-3.0": 0.9}


def put_profile(store, zone, counts):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    store.put(builder.snapshot())


@pytest.fixture
def store():
    store = CharacterizationStore()
    put_profile(store, "slow-zone", {"xeon-2.5": 40, "xeon-2.9": 60})
    put_profile(store, "fast-zone", {"xeon-2.5": 40, "xeon-3.0": 60})
    return store


class TestExpectedFactor(object):
    def test_weighted_mean(self, store):
        ranker = ZoneRanker(store)
        assert ranker.expected_factor("slow-zone", FACTORS) == pytest.approx(
            0.4 * 1.0 + 0.6 * 1.25)
        assert ranker.expected_factor("fast-zone", FACTORS) == pytest.approx(
            0.4 * 1.0 + 0.6 * 0.9)

    def test_unknown_zone_raises(self, store):
        with pytest.raises(CharacterizationError):
            ZoneRanker(store).expected_factor("nowhere", FACTORS)


class TestExpectedFactorWithRetry(object):
    def test_filtering_improves_factor(self, store):
        ranker = ZoneRanker(store)
        retry = RetryPolicy(["xeon-2.9"], hold_seconds=0.15)
        plain = ranker.expected_factor("slow-zone", FACTORS)
        with_retry = ranker.expected_factor_with_retry(
            "slow-zone", FACTORS, retry, base_seconds=100.0)
        assert with_retry < plain

    def test_overhead_matters_for_short_workloads(self, store):
        ranker = ZoneRanker(store)
        retry = RetryPolicy(["xeon-2.9"], hold_seconds=0.15)
        long_workload = ranker.expected_factor_with_retry(
            "slow-zone", FACTORS, retry, base_seconds=100.0)
        short_workload = ranker.expected_factor_with_retry(
            "slow-zone", FACTORS, retry, base_seconds=0.5)
        assert short_workload > long_workload

    def test_banning_everything_raises(self, store):
        ranker = ZoneRanker(store)
        retry = RetryPolicy(["xeon-2.5", "xeon-2.9"])
        with pytest.raises(CharacterizationError):
            ranker.expected_factor_with_retry("slow-zone", FACTORS, retry,
                                              base_seconds=10.0)


class TestRanking(object):
    def test_rank_prefers_fast_zone(self, store):
        ranker = ZoneRanker(store)
        ranked = ranker.rank(["slow-zone", "fast-zone"], FACTORS)
        assert ranked == ["fast-zone", "slow-zone"]

    def test_best_zone(self, store):
        ranker = ZoneRanker(store)
        assert ranker.best_zone(["slow-zone", "fast-zone"],
                                FACTORS) == "fast-zone"

    def test_zones_without_profiles_skipped(self, store):
        ranker = ZoneRanker(store)
        ranked = ranker.rank(["slow-zone", "ghost-zone"], FACTORS)
        assert ranked == ["slow-zone"]

    def test_no_routable_zone_raises(self, store):
        ranker = ZoneRanker(store)
        with pytest.raises(CharacterizationError):
            ranker.best_zone(["ghost-zone"], FACTORS)

    def test_latency_bound_filters_far_zones(self):
        cloud = make_cloud(seed=1)
        store = CharacterizationStore()
        put_profile(store, "test-1a", {"xeon-2.5": 10})
        put_profile(store, "test-1b", {"xeon-3.0": 10})
        ranker = ZoneRanker(store, cloud=cloud)
        sydney = GeoPoint(-33.9, 151.2)
        # The test region sits near Seattle: a tight RTT bound from Sydney
        # excludes every zone.
        ranked = ranker.rank(["test-1a", "test-1b"], FACTORS,
                             client=sydney, max_rtt=0.05)
        assert ranked == []
        # A generous bound admits both.
        ranked = ranker.rank(["test-1a", "test-1b"], FACTORS,
                             client=sydney, max_rtt=10.0)
        assert len(ranked) == 2
