"""Sky mesh construction and lookup."""

import pytest

from repro.common.errors import ConfigurationError, DeploymentError
from repro.cloudsim.handlers import SleepHandler
from repro.skymesh import SkyMesh


@pytest.fixture
def mesh(cloud):
    return SkyMesh(cloud)


def sleep_factory(zone_id, memory_mb, arch):
    return SleepHandler(0.25)


class TestRegistration(object):
    def test_register_and_endpoint(self, cloud, aws_account, mesh):
        deployment = cloud.deploy(aws_account, "test-1a", "dynamic", 2048,
                                  handler=SleepHandler(0.25))
        mesh.register(deployment)
        assert mesh.endpoint("test-1a", 2048) is deployment

    def test_duplicate_key_rejected(self, cloud, aws_account, mesh):
        deployment = cloud.deploy(aws_account, "test-1a", "dynamic", 2048)
        mesh.register(deployment)
        duplicate = cloud.deploy(aws_account, "test-1a", "dynamic", 2048)
        with pytest.raises(ConfigurationError):
            mesh.register(duplicate)

    def test_missing_endpoint_raises(self, mesh):
        with pytest.raises(DeploymentError):
            mesh.endpoint("test-1a", 2048)


class TestDeployEverywhere(object):
    def test_full_ladder_per_zone(self, cloud, aws_account, mesh):
        created = mesh.deploy_everywhere({"aws": aws_account},
                                         sleep_factory)
        # 2 zones x 9 memory settings x 2 architectures.
        assert len(created) == 2 * 9 * 2
        assert len(mesh) == len(created)

    def test_custom_ladder(self, cloud, aws_account, mesh):
        created = mesh.deploy_everywhere({"aws": aws_account},
                                         sleep_factory,
                                         memory_ladder=(1024,))
        assert len(created) == 2 * 1 * 2

    def test_skips_providers_without_account(self, cloud, mesh):
        created = mesh.deploy_everywhere({}, sleep_factory)
        assert created == []

    def test_lookup_filters(self, cloud, aws_account, mesh):
        mesh.deploy_everywhere({"aws": aws_account}, sleep_factory,
                               memory_ladder=(1024, 2048))
        assert len(mesh.lookup(zone_id="test-1a")) == 4
        assert len(mesh.lookup(memory_mb=1024)) == 4
        assert len(mesh.lookup(arch="arm64")) == 4
        assert len(mesh.lookup(zone_id="test-1a", memory_mb=1024,
                               arch="x86_64")) == 1
        assert mesh.lookup(provider="ibm") == []

    def test_zones_listing(self, cloud, aws_account, mesh):
        mesh.deploy_everywhere({"aws": aws_account}, sleep_factory,
                               memory_ladder=(1024,))
        assert mesh.zones() == ["test-1a", "test-1b"]

    def test_deployment_count_by_provider(self, cloud, aws_account, mesh):
        mesh.deploy_everywhere({"aws": aws_account}, sleep_factory,
                               memory_ladder=(1024,))
        assert mesh.deployment_count("aws") == 4
        assert mesh.deployment_count("do") == 0


class TestSamplingEndpoints(object):
    def test_hundred_distinct_functions(self, cloud, aws_account, mesh):
        endpoints = mesh.deploy_sampling_endpoints(aws_account, "test-1a",
                                                   count=100)
        assert len(endpoints) == 100
        names = {e.function_name for e in endpoints}
        assert len(names) == 100

    def test_unique_memory_settings(self, cloud, aws_account, mesh):
        # §3.1: each deployment has a unique memory setting.
        endpoints = mesh.deploy_sampling_endpoints(aws_account, "test-1a",
                                                   count=10)
        memories = {e.memory_mb for e in endpoints}
        assert len(memories) == 10

    def test_sleep_handler_attached(self, cloud, aws_account, mesh):
        endpoints = mesh.deploy_sampling_endpoints(aws_account, "test-1a",
                                                   count=3, sleep_s=0.5)
        assert endpoints[0].handler.sleep_s == 0.5

    def test_count_validated(self, cloud, aws_account, mesh):
        with pytest.raises(ConfigurationError):
            mesh.deploy_sampling_endpoints(aws_account, "test-1a", count=0)
