"""Span tracing: parent/child integrity, bounded store, formatting."""

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.trace import Tracer, format_trace


class TestSpans(object):
    def test_root_has_no_parent(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 10.0, policy="baseline")
        assert root.parent_id is None
        assert root.tags == {"policy": "baseline"}

    def test_parent_child_integrity(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 0.0)
        dispatch = tracer.start_span("dispatch", root, 0.0)
        placement = tracer.start_span("placement", dispatch, 0.1)
        assert dispatch.trace_id == root.trace_id
        assert placement.trace_id == root.trace_id
        assert dispatch.parent_id == root.span_id
        assert placement.parent_id == dispatch.span_id
        trace = tracer.trace(root.trace_id)
        assert trace.children(root.span_id) == [dispatch]
        assert trace.children(dispatch.span_id) == [placement]

    def test_span_ids_unique_across_traces(self):
        tracer = Tracer()
        spans = [tracer.start_trace("a", 0.0) for _ in range(5)]
        assert len({span.span_id for span in spans}) == 5
        assert len({span.trace_id for span in spans}) == 5

    def test_finish_and_duration(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 5.0)
        root.finish(7.5)
        assert root.duration == 2.5
        assert not root.is_open

    def test_double_finish_rejected(self):
        tracer = Tracer()
        root = tracer.start_trace("x", 0.0).finish(1.0)
        with pytest.raises(ConfigurationError):
            root.finish(2.0)

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        root = tracer.start_trace("x", 5.0)
        with pytest.raises(ConfigurationError):
            root.finish(4.0)

    def test_child_needs_parent(self):
        with pytest.raises(ConfigurationError):
            Tracer().start_span("child", None, 0.0)

    def test_to_dict_round_trips_fields(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 1.0, zone="a")
        root.finish(2.0)
        payload = root.to_dict()
        assert payload["name"] == "request"
        assert payload["start"] == 1.0
        assert payload["end"] == 2.0
        assert payload["tags"] == {"zone": "a"}


class TestTraceCompleteness(object):
    def test_complete_only_when_every_span_finished(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 0.0)
        child = tracer.start_span("dispatch", root, 0.0)
        trace = tracer.trace(root.trace_id)
        assert not trace.complete
        child.finish(1.0)
        assert not trace.complete
        root.finish(1.0)
        assert trace.complete

    def test_last_trace_skips_incomplete(self):
        tracer = Tracer()
        done = tracer.start_trace("done", 0.0)
        done.finish(1.0)
        tracer.start_trace("open", 2.0)
        assert tracer.last_trace().root is done
        assert tracer.last_trace(complete_only=False).root.name == "open"

    def test_last_trace_none_when_empty(self):
        assert Tracer().last_trace() is None


class TestBoundedStore(object):
    def test_eviction_is_fifo(self):
        tracer = Tracer(max_traces=3)
        roots = [tracer.start_trace("t{}".format(n), float(n))
                 for n in range(5)]
        assert len(tracer) == 3
        kept = [trace.root.name for trace in tracer.traces()]
        assert kept == ["t2", "t3", "t4"]
        with pytest.raises(ConfigurationError):
            tracer.trace(roots[0].trace_id)

    def test_cannot_extend_evicted_trace(self):
        tracer = Tracer(max_traces=1)
        old_root = tracer.start_trace("old", 0.0)
        tracer.start_trace("new", 1.0)
        with pytest.raises(ConfigurationError):
            tracer.start_span("child", old_root, 2.0)

    def test_max_traces_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_traces=0)


class TestFormatting(object):
    def test_format_trace_tree(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 0.0, policy="baseline")
        dispatch = tracer.start_span("dispatch", root, 0.0, zone="a")
        tracer.start_span("placement", dispatch, 0.0).finish(0.010)
        dispatch.finish(0.012)
        root.finish(0.012)
        text = format_trace(tracer.trace(root.trace_id))
        lines = text.splitlines()
        assert "complete" in lines[0]
        assert lines[1].startswith("  request (12.0ms)")
        assert lines[2].startswith("    dispatch")
        assert lines[3].startswith("      placement (10.0ms)")
        assert "[zone=a]" in lines[2]

    def test_format_open_span(self):
        tracer = Tracer()
        tracer.start_trace("request", 0.0)
        text = format_trace(tracer.traces()[0])
        assert "(open)" in text
        assert "incomplete" in text
