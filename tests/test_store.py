"""The characterization store: staleness and passive refinement."""

import pytest

from repro.common.errors import CharacterizationError
from repro.common.units import Money
from repro.core import CharacterizationStore
from repro.sampling import CharacterizationBuilder


def profile(zone="z-1", counts=None, timestamp=0.0):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts or {"a": 50, "b": 50}, cost=Money(0.01),
                     timestamp=timestamp)
    return builder.snapshot()


class TestActiveProfiles(object):
    def test_put_get(self):
        store = CharacterizationStore()
        store.put(profile())
        assert store.get("z-1").share("a") == 0.5

    def test_missing_zone_raises(self):
        with pytest.raises(CharacterizationError):
            CharacterizationStore().get("nowhere")

    def test_try_get_returns_none(self):
        assert CharacterizationStore().try_get("nowhere") is None

    def test_put_overwrites(self):
        store = CharacterizationStore()
        store.put(profile(counts={"a": 10}))
        store.put(profile(counts={"b": 10}))
        assert store.get("z-1").cpu_keys() == ["b"]

    def test_zones_listing(self):
        store = CharacterizationStore()
        store.put(profile("z-1"))
        store.put(profile("z-2"))
        assert store.zones() == ["z-1", "z-2"]

    def test_view(self):
        store = CharacterizationStore()
        store.put(profile("z-1"))
        view = store.view(["z-1", "z-2"])
        assert set(view) == {"z-1"}


class TestStaleness(object):
    def test_fresh_within_limit(self):
        store = CharacterizationStore(staleness_limit=3600.0)
        store.put(profile(timestamp=0.0))
        assert store.get("z-1", now=1800.0) is not None

    def test_stale_after_limit(self):
        store = CharacterizationStore(staleness_limit=3600.0)
        store.put(profile(timestamp=0.0))
        with pytest.raises(CharacterizationError):
            store.get("z-1", now=7200.0)

    def test_is_stale(self):
        store = CharacterizationStore(staleness_limit=100.0)
        store.put(profile(timestamp=0.0))
        assert not store.is_stale("z-1", now=50.0)
        assert store.is_stale("z-1", now=150.0)
        assert store.is_stale("unknown", now=0.0)

    def test_no_limit_never_stale(self):
        store = CharacterizationStore()
        store.put(profile(timestamp=0.0))
        assert not store.is_stale("z-1", now=1e9)

    def test_view_drops_stale_zones(self):
        store = CharacterizationStore(staleness_limit=10.0)
        store.put(profile("z-1", timestamp=0.0))
        assert store.view(["z-1"], now=100.0) == {}


class TestPassive(object):
    def test_passive_only_zone(self):
        store = CharacterizationStore()
        for _ in range(4):
            store.record_observation("z-9", "a")
        assert store.get("z-9").share("a") == 1.0

    def test_passive_merges_with_active(self):
        store = CharacterizationStore()
        store.put(profile(counts={"a": 100}))
        for _ in range(100):
            store.record_observation("z-1", "b")
        merged = store.get("z-1")
        assert merged.share("a") == pytest.approx(0.5)
        assert merged.samples == 200

    def test_passive_sample_count(self):
        store = CharacterizationStore()
        store.record_observation("z-1", "a")
        store.record_observation("z-1", "a")
        assert store.passive_samples("z-1") == 2
        assert store.passive_samples("other") == 0

    def test_clear_passive(self):
        store = CharacterizationStore()
        store.record_observation("z-1", "a")
        store.clear_passive("z-1")
        assert store.passive_samples("z-1") == 0

    def test_clear_all_passive(self):
        store = CharacterizationStore()
        store.record_observation("z-1", "a")
        store.record_observation("z-2", "a")
        store.clear_passive()
        assert store.zones() == []
