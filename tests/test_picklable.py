"""Pickle-ability audit for everything that crosses a process boundary.

The parallel engine ships :class:`CloudSpec`-style recipes *into* workers
and result objects *out of* them.  These tests pin the contract: specs,
campaign results, poll observations, characterization snapshots, and
study results all round-trip through pickle — at the default protocol and
at ``HIGHEST_PROTOCOL`` — without losing state.
"""

import pickle

import pytest

from repro import reporting
from repro.common.units import Money
from repro.engine import (
    CampaignTask,
    CloudSpec,
    Grid,
    ProgressiveTask,
    StudyTask,
    TemporalTask,
)

PROTOCOLS = (pickle.DEFAULT_PROTOCOL, pickle.HIGHEST_PROTOCOL)


def round_trip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol=protocol))


def _campaign_result():
    task = CampaignTask(CloudSpec.for_zones(["us-west-1a"], seed=5),
                        "us-west-1a", endpoints=3, n_requests=150,
                        max_polls=2)
    return task.run()


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPicklable(object):
    def test_cloud_spec(self, protocol):
        spec = CloudSpec(seed=9, aws_only=False, regions=("us-west-1",))
        clone = round_trip(spec, protocol)
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_grid_and_cells(self, protocol):
        grid = Grid([("zone", ["a", "b"]), ("seed", [0, 1])], root_seed=4)
        clone = round_trip(grid, protocol)
        assert list(clone.cells()) == list(grid.cells())
        cell = grid.cell(3)
        assert round_trip(cell, protocol) == cell

    def test_campaign_result(self, protocol):
        result = _campaign_result()
        clone = round_trip(result, protocol)
        assert reporting.campaign_to_dict(clone) == \
            reporting.campaign_to_dict(result)
        assert clone.total_cost == result.total_cost
        assert isinstance(clone.total_cost, Money)

    def test_poll_observation(self, protocol):
        result = _campaign_result()
        obs = result.observations[0]
        clone = round_trip(obs, protocol)
        assert clone.served == obs.served
        assert clone.failed == obs.failed
        assert clone.cpu_counts == obs.cpu_counts
        assert clone.cost == obs.cost
        assert clone.timestamp == obs.timestamp

    def test_characterization_snapshot(self, protocol):
        profile = _campaign_result().ground_truth()
        clone = round_trip(profile, protocol)
        assert reporting.characterization_to_dict(clone) == \
            reporting.characterization_to_dict(profile)
        assert clone.shares() == profile.shares()

    def test_study_result(self, protocol):
        task = StudyTask(
            CloudSpec.for_zones(["us-west-1a", "us-west-1b"], seed=6),
            "sha1_hash", ("us-west-1a", "us-west-1b"), days=1,
            burst_size=50, sampling_count=3)
        result = task.run()
        clone = round_trip(result, protocol)
        assert reporting.study_result_to_dict(clone) == \
            reporting.study_result_to_dict(result)

    def test_tasks(self, protocol):
        spec = CloudSpec.for_zones(["us-west-1a"], seed=0)
        tasks = [
            CampaignTask(spec, "us-west-1a", endpoints=3, n_requests=100,
                         max_polls=1),
            ProgressiveTask(spec, "us-west-1a", endpoints=3,
                            n_requests=100),
            TemporalTask(spec, "us-west-1a", mode="daily", periods=1,
                         polls_per_period=1, endpoints=3, n_requests=100),
        ]
        for task in tasks:
            clone = round_trip(task, protocol)
            assert clone.kind == task.kind
            assert clone.spec == task.spec
            assert clone.zone_id == task.zone_id


def test_round_trip_preserves_determinism():
    """A pickled task's run() output equals the original's, byte for byte."""
    task = CampaignTask(CloudSpec.for_zones(["us-west-1b"], seed=13),
                        "us-west-1b", endpoints=3, n_requests=150,
                        max_polls=2)
    clone = pickle.loads(pickle.dumps(task))
    assert pickle.dumps(task.run()) == pickle.dumps(clone.run())
