"""The whole paper, in miniature, on one shared sky.

A single narrative test that walks the five experiments in order on one
cloud instance — the closest thing to re-running the study end-to-end.
Each stage feeds the next exactly as in the paper: EX-1 validates the
method, EX-2 maps the sky, EX-3 prices the characterizations, EX-4
classifies temporal behaviour, EX-5 converts it all into cost savings.
"""

import pytest

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    ProgressiveAnalysis,
    RetryRoutingPolicy,
    RoutingStudy,
    SamplingCampaign,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.common.units import HOURS, Money
from repro.sampling.stability import StabilityClassifier
from repro.sampling.validation import validate_saturation
from repro.workloads import resolve_runtime_model


@pytest.fixture(scope="module")
def sky():
    cloud = build_sky(seed=2026, aws_only=True)
    account = cloud.create_account("study", "aws")
    mesh = SkyMesh(cloud)
    return cloud, account, mesh


def test_full_paper_replay(sky):
    cloud, account, mesh = sky

    # ---- EX-1: the sampling method saturates a zone; a second account
    # validates that the pool, not the quota, is the bottleneck. --------------
    primary = mesh.deploy_sampling_endpoints(account, "us-west-1a",
                                             count=40)
    secondary_account = cloud.create_account("secondary", "aws")
    secondary = mesh.deploy_sampling_endpoints(secondary_account,
                                               "us-west-1a", count=3,
                                               memory_base_mb=4096)
    validation = validate_saturation(cloud, primary, secondary)
    assert validation.pool_is_shared
    assert validation.primary_campaign.total_fis > 15000
    cloud.clock.advance(10 * 60.0)

    # ---- EX-2 (abridged): characterize a spread of zones. ---------------------
    store = CharacterizationStore()
    ex2_zones = ("us-west-1b", "sa-east-1a", "eu-north-1a",
                 "us-east-2a", "af-south-1a")
    endpoint_sets = {}
    for index, zone_id in enumerate(ex2_zones):
        endpoint_sets[zone_id] = mesh.deploy_sampling_endpoints(
            account, zone_id, count=40,
            memory_base_mb=2048 + 64 * index)
        campaign = SamplingCampaign(cloud, endpoint_sets[zone_id],
                                    max_polls=6, inter_poll_gap=1.0)
        store.put(campaign.run().ground_truth())
        cloud.clock.advance(60.0)
    assert store.get("us-east-2a").cpu_keys() == ["xeon-2.5"]
    assert store.get("af-south-1a").share("xeon-3.0") == 0.0
    cloud.clock.advance(10 * 60.0)

    # ---- EX-3: a saturation campaign prices full characterization. -----------
    ex3 = SamplingCampaign(cloud, endpoint_sets["us-west-1b"]).run()
    analysis = ProgressiveAnalysis(ex3)
    polls95 = analysis.polls_to_accuracy(95.0)
    assert polls95 is not None and polls95 <= 12
    assert analysis.cost_to_accuracy(95.0) < Money(0.15)
    cloud.clock.advance(10 * 60.0)

    # ---- EX-4 (abridged): daily profiles classify zone stability. ------------
    classifier = StabilityClassifier(volatile_threshold=8.0)
    histories = {"us-west-1b": [], "sa-east-1a": []}
    for day in range(4):
        for zone_id in histories:
            campaign = SamplingCampaign(cloud, endpoint_sets[zone_id],
                                        max_polls=8, inter_poll_gap=1.0)
            histories[zone_id].append(campaign.run().ground_truth())
            cloud.clock.advance(60.0)
        cloud.clock.advance(22 * HOURS)
    # The volatile zone drifts at a higher daily rate than the stable one.
    assert (classifier.drift_rate(histories["us-west-1b"])
            > classifier.drift_rate(histories["sa-east-1a"]))

    # ---- EX-5: the characterizations buy real cost savings. -------------------
    for zone_id in ("us-west-1a", "us-west-1b", "sa-east-1a"):
        mesh.register(cloud.deploy(
            account, zone_id, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(
                resolve_runtime_model)))
    study = RoutingStudy(
        cloud, mesh, store, workload_by_name("zipper"),
        ["us-west-1a", "us-west-1b", "sa-east-1a"],
        {z: endpoint_sets.get(z) or mesh.deploy_sampling_endpoints(
            account, z, count=10, memory_base_mb=3072)
         for z in ("us-west-1a", "us-west-1b", "sa-east-1a")},
        days=5, burst_size=500, polls_per_day=6)
    result = study.run([
        BaselinePolicy("us-west-1b"),
        RetryRoutingPolicy("us-west-1b", "focus_fastest"),
        HybridPolicy("focus_fastest"),
    ])
    summary = result.savings_summary()
    # By this point the volatile baseline zone has drifted hard (its fast
    # CPUs are nearly gone), so the *blind* single-zone focus-fastest
    # method can even lose money — while the hybrid, which re-reads the
    # characterizations daily and hops zones, still wins.  That contrast
    # is the paper's core argument for characterization-driven routing.
    assert summary["hybrid_focus_fastest"]["cumulative_pct"] > 4.0
    assert (summary["hybrid_focus_fastest"]["cumulative_pct"]
            > summary["focus_fastest"]["cumulative_pct"])
    hybrid_zones = set(result.zones_chosen["hybrid_focus_fastest"])
    assert hybrid_zones - {"us-west-1b"}, "the hybrid should hop away"
    # The paper's bottom line: two weeks of characterizations cost $2.80
    # while serving *every* workload's routing.  Our mini-study (5 days,
    # 3 zones) spends well under a dollar, and the savings are real.
    baseline_spend = sum(result.daily_costs["baseline"])
    hybrid_spend = sum(result.daily_costs["hybrid_focus_fastest"])
    assert baseline_spend - hybrid_spend > 0
    assert result.sampling_cost < Money(1.5)
