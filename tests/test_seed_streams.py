"""Spawn-key seed derivation: collision-freedom and cross-platform stability.

The determinism guarantee of the parallel engine rests on
:func:`repro.common.rng.spawn_seed`: distinct grid cells must get distinct,
*stable* cloud seeds no matter which worker runs them.  These are the
property tests behind that guarantee.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.rng import derive_rng, spawn_seed
from repro.engine import Grid

seeds = st.integers(min_value=0, max_value=2**31 - 1)
tokens = st.lists(
    st.one_of(st.integers(min_value=-1000, max_value=1000),
              st.text(alphabet="abcdefghij-_=", min_size=1, max_size=12)),
    min_size=0, max_size=4)


class TestSpawnSeedProperties(object):
    @given(seed=seeds, a=tokens, b=tokens)
    def test_distinct_token_paths_never_collide(self, seed, a, b):
        # str()-level distinctness is the contract: tokens are joined with
        # "|" after str(), so 1 and "1" are deliberately the same key.
        if [str(t) for t in a] != [str(t) for t in b]:
            assert spawn_seed(seed, *a) != spawn_seed(seed, *b)

    @given(a=seeds, b=seeds, path=tokens)
    def test_distinct_parents_never_collide(self, a, b, path):
        if a != b:
            assert spawn_seed(a, *path) != spawn_seed(b, *path)

    @given(seed=seeds, path=tokens)
    def test_pure_function(self, seed, path):
        assert spawn_seed(seed, *path) == spawn_seed(seed, *path)

    @given(seed=seeds, path=tokens)
    def test_range_is_uint64(self, seed, path):
        value = spawn_seed(seed, *path)
        assert 0 <= value < 2**64

    @given(seed=seeds, path=tokens)
    def test_derive_rng_uses_spawn_seed(self, seed, path):
        derived = derive_rng(seed, *path)
        reference = np.random.default_rng(spawn_seed(seed, *path))
        assert derived.integers(0, 2**32) == reference.integers(0, 2**32)


class TestCrossPlatformStability(object):
    """Hard-coded expected values: SHA-256 has no platform or hash-seed
    dependence, so these must hold on every OS/arch/Python."""

    def test_pinned_values(self):
        assert spawn_seed(0) == 4066689987807800415
        assert spawn_seed(42, "sweep", "zone=us-west-1a",
                          "seed=0") == 4303152722745457665
        assert spawn_seed(7, "a", 1, 2.5) == 6870019076010393043

    def test_stable_across_repeated_processes(self):
        # Same-process proxy for cross-run stability: values depend only
        # on the argument text, never on interpreter state.
        import subprocess
        import sys
        code = ("import sys; sys.path.insert(0, 'src'); "
                "from repro.common.rng import spawn_seed; "
                "print(spawn_seed(42, 'sweep', 'zone=us-west-1a', "
                "'seed=0'))")
        fresh = subprocess.run([sys.executable, "-c", code],
                               capture_output=True, text=True, check=True,
                               cwd=__file__.rsplit("/tests/", 1)[0])
        assert int(fresh.stdout) == 4303152722745457665


class TestGridCellSeeds(object):
    @given(root=seeds,
           zones=st.lists(st.text(alphabet="abcdef-1", min_size=1,
                                  max_size=8), min_size=1, max_size=4,
                          unique=True),
           n_seeds=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_cells_never_collide(self, root, zones, n_seeds):
        grid = Grid([("zone", zones), ("seed", list(range(n_seeds)))],
                    root_seed=root)
        cell_seeds = [cell.seed for cell in grid.cells()]
        assert len(set(cell_seeds)) == len(cell_seeds)

    def test_many_cells_no_birthday_collision(self):
        grid = Grid([("zone", ["z{}".format(i) for i in range(20)]),
                     ("seed", list(range(50))),
                     ("policy", ["a", "b", "c"])], root_seed=123)
        cell_seeds = [cell.seed for cell in grid.cells()]
        assert len(set(cell_seeds)) == 3000

    def test_cell_seed_independent_of_axis_order(self):
        ab = Grid([("zone", ["x"]), ("seed", [5])], root_seed=9)
        # Axis order changes the token path, so seeds legitimately differ
        # between grids — but within one grid layout the seed for a key is
        # a pure function of (root, namespace, key).
        again = Grid([("zone", ["x"]), ("seed", [5])], root_seed=9)
        assert ab.cell(0).seed == again.cell(0).seed
