"""Characterization confidence intervals and sample-size planning."""

import pytest

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import Money
from repro.sampling import CharacterizationBuilder
from repro.sampling.estimators import CharacterizationEstimator


def profile(counts, zone="z-1"):
    builder = CharacterizationBuilder(zone)
    builder.add_poll(counts, cost=Money(0), timestamp=0.0)
    return builder.snapshot()


def estimator(counts, **kwargs):
    return CharacterizationEstimator(profile(counts), **kwargs)


class TestConstruction(object):
    def test_effective_samples_deflated(self):
        est = estimator({"a": 960}, cluster_size=9.6)
        assert est.effective_samples == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimator({"a": 10}, cluster_size=0.5)
        with pytest.raises(ConfigurationError):
            estimator({"a": 10}, prior=0)


class TestShareIntervals(object):
    def test_interval_contains_point_estimate(self):
        est = estimator({"a": 600, "b": 400})
        low, high = est.share_interval("a")
        assert low < 0.6 < high

    def test_more_data_tightens_interval(self):
        loose = estimator({"a": 60, "b": 40}).share_halfwidth("a")
        tight = estimator({"a": 6000, "b": 4000}).share_halfwidth("a")
        assert tight < loose

    def test_clustering_widens_interval(self):
        clustered = estimator({"a": 600, "b": 400},
                              cluster_size=9.6).share_halfwidth("a")
        independent = estimator({"a": 600, "b": 400},
                                cluster_size=1.0).share_halfwidth("a")
        assert clustered > independent

    def test_unobserved_cpu_has_small_upper_bound(self):
        est = estimator({"a": 5000})
        low, high = est.share_interval("never-seen")
        assert low == pytest.approx(0.0, abs=1e-6)
        assert high < 0.05

    def test_higher_confidence_wider(self):
        est = estimator({"a": 600, "b": 400})
        assert (est.share_halfwidth("a", confidence=0.99)
                > est.share_halfwidth("a", confidence=0.80))

    def test_confidence_validated(self):
        est = estimator({"a": 10})
        with pytest.raises(ConfigurationError):
            est.share_interval("a", confidence=1.5)


class TestPredictedApe(object):
    def test_shrinks_with_samples(self):
        small = estimator({"a": 60, "b": 40}).predicted_ape()
        large = estimator({"a": 6000, "b": 4000}).predicted_ape()
        assert large < small

    def test_matches_empirical_scale(self):
        # A single 1,000-request poll carries ~104 effective draws over
        # a 4-way mix -> predicted APE around 5-15 %, the Figure 5 range.
        est = estimator({"xeon-2.5": 350, "xeon-3.0": 250,
                         "xeon-2.9": 250, "amd-epyc": 150})
        assert 4.0 < est.predicted_ape() < 20.0


class TestSampleSizePlanning(object):
    def test_already_precise_needs_nothing(self):
        est = estimator({"a": 96000, "b": 64000})
        assert est.observations_for_halfwidth("a", 0.05) == 0

    def test_tighter_target_needs_more(self):
        est = estimator({"a": 600, "b": 400})
        loose = est.observations_for_halfwidth("a", 0.05)
        tight = est.observations_for_halfwidth("a", 0.01)
        assert tight > loose > 0

    def test_inflated_by_cluster_size(self):
        clustered = estimator({"a": 600, "b": 400}, cluster_size=9.6)
        independent = estimator({"a": 600, "b": 400}, cluster_size=1.0)
        assert (clustered.observations_for_halfwidth("a", 0.02)
                > independent.observations_for_halfwidth("a", 0.02))

    def test_target_validated(self):
        with pytest.raises(ConfigurationError):
            estimator({"a": 10}).observations_for_halfwidth("a", 0.0)


class TestEmptyProfile(object):
    def test_rejected(self):
        class Fake(object):
            zone_id = "z"

            class distribution(object):
                @staticmethod
                def counts():
                    return {}

        with pytest.raises(CharacterizationError):
            CharacterizationEstimator(Fake())
