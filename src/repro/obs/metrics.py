"""Metrics registry: labeled counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` owns metric *families* (one per name); each
family holds children keyed by their label set (zone, cpu, policy,
provider, ...).  Histograms combine fixed buckets (Prometheus-style
cumulative counts, cheap and mergeable) with a deterministic reservoir
sample for accurate p50/p95/p99 quantiles.

Everything here is pure bookkeeping on plain Python objects — no clock,
no I/O — so the layer sits at the bottom of the stack next to ``common``.
"""

import bisect
import math
import random
import threading

from repro.common.errors import ConfigurationError

#: Sentinel distinguishing "no default supplied" from ``default=None``.
_NO_DEFAULT = object()


def quantile(sorted_values, q):
    """Linear-interpolation quantile of an ascending list (numpy's default
    method), shared with :class:`~repro.core.telemetry.RoutingTelemetry`."""
    if not sorted_values:
        raise ConfigurationError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("q must be in [0, 1]")
    position = q * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    fraction = position - lower
    return (sorted_values[lower] * (1.0 - fraction)
            + sorted_values[upper] * fraction)


class Counter(object):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount
        return self.value

    def __repr__(self):
        return "Counter({})".format(self.value)


class Gauge(object):
    """A value that can go up and down (occupancy, pool size, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)
        return self.value

    def inc(self, amount=1.0):
        self.value += amount
        return self.value

    def dec(self, amount=1.0):
        self.value -= amount
        return self.value

    def __repr__(self):
        return "Gauge({})".format(self.value)


# Default buckets span sub-millisecond runtimes up to multi-minute holds —
# the latency range the simulator produces (seconds).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)


class Histogram(object):
    """Streaming histogram: fixed buckets + reservoir quantiles.

    Bucket counts are *cumulative* (`le` semantics) only at export time;
    internally each bucket holds its own count.  The reservoir uses
    Vitter's algorithm R with a per-histogram deterministic seed, so
    quantiles are exact while ``count <= reservoir_size`` and an unbiased
    sample beyond.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max",
                 "_reservoir", "_reservoir_size", "_rng")

    def __init__(self, buckets=None, reservoir_size=1024, seed=0):
        buckets = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError("buckets must be ascending and "
                                     "non-empty")
        if reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._reservoir = []
        self._reservoir_size = int(reservoir_size)
        self._rng = random.Random(seed)

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    def observe_many(self, values):
        """Record an array of observations in one vectorized pass.

        Semantically identical to calling :meth:`observe` per element in
        order — same bucket counts, same reservoir contents (algorithm R
        consumes the per-histogram RNG element by element) — but the
        count/sum/min/max and bucket accounting run through numpy, which
        is what lets the serving gateway fold a coalesced batch's latency
        array into quantile accounting without a Python-level loop.
        """
        import numpy as np

        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        n = int(arr.size)
        if not n:
            return
        self.sum += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi
        idx = np.searchsorted(self.buckets, arr, side="left")
        counts = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, c in enumerate(counts.tolist()):
            if c:
                self.bucket_counts[i] += c
        # Reservoir: algorithm R is inherently sequential (each slot draw
        # depends on the running count), so replay it exactly.
        reservoir = self._reservoir
        size = self._reservoir_size
        count = self.count
        vals = arr.tolist()
        fill = 0
        if len(reservoir) < size:
            fill = min(size - len(reservoir), n)
            reservoir.extend(vals[:fill])
            count += fill
        rng = self._rng
        for value in vals[fill:]:
            count += 1
            slot = rng.randrange(count)
            if slot < size:
                reservoir[slot] = value
        self.count = count

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def quantile(self, q, default=_NO_DEFAULT):
        """Reservoir quantile; exact while count <= reservoir_size.

        An empty histogram raises unless ``default`` is supplied —
        summary paths that aggregate many series pass ``default`` so one
        cold series cannot crash the whole report.
        """
        if self.count == 0 or not self._reservoir:
            if default is not _NO_DEFAULT:
                return default
            raise ConfigurationError("quantile of an empty histogram")
        return quantile(sorted(self._reservoir), q)

    @property
    def p50(self):
        return self.quantile(0.50)

    @property
    def p95(self):
        return self.quantile(0.95)

    @property
    def p99(self):
        return self.quantile(0.99)

    # -- cross-process shipping ---------------------------------------------
    def state(self, max_reservoir=None):
        """A picklable snapshot for shipping across process boundaries.

        ``max_reservoir`` caps the shipped sample (evenly strided) so a
        telemetry frame stays bounded; bucket counts always carry the full
        distribution.  Pairs with :meth:`merge_state`.
        """
        reservoir = self._reservoir
        if max_reservoir is not None and len(reservoir) > max_reservoir:
            step = len(reservoir) / float(max_reservoir)
            reservoir = [reservoir[int(i * step)]
                         for i in range(int(max_reservoir))]
        return {
            "buckets": self.buckets,
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "reservoir": list(reservoir),
        }

    def merge_state(self, state):
        """Fold a :meth:`state` snapshot from another process into this
        histogram.

        Bucket counts, count, sum, and min/max merge exactly.  The
        reservoir is appended then truncated to capacity — a deterministic
        (slightly existing-biased) sample; quantiles stay estimates, the
        buckets stay authoritative.
        """
        if tuple(state["buckets"]) != self.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different buckets")
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        for index, bucket_count in enumerate(state["bucket_counts"]):
            self.bucket_counts[index] += bucket_count
        if state["min"] is not None:
            if self.min is None or state["min"] < self.min:
                self.min = state["min"]
        if state["max"] is not None:
            if self.max is None or state["max"] > self.max:
                self.max = state["max"]
        self._reservoir.extend(state["reservoir"])
        del self._reservoir[self._reservoir_size:]
        return self

    def cumulative_buckets(self):
        """Prometheus-style ``[(le, cumulative_count), ..., ('+Inf', n)]``."""
        out = []
        running = 0
        for upper, bucket_count in zip(self.buckets, self.bucket_counts):
            running += bucket_count
            out.append((upper, running))
        out.append(("+Inf", self.count))
        return out

    def __repr__(self):
        return "Histogram(count={}, mean={:.4f})".format(self.count,
                                                         self.mean)


COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class MetricsRegistry(object):
    """Families of labeled metrics, created on first touch.

    Family/child creation and structural reads (:meth:`collect`,
    :meth:`names`, ...) are guarded by a lock so off-thread exporters and
    the ``/metrics`` endpoint can snapshot the registry while the
    simulation thread keeps creating series — scrapes never see a
    mid-mutation dict.  Updates on an already-obtained metric handle
    (``.inc()``, ``.observe()``) are plain attribute writes and stay
    lock-free; holding a pre-bound handle is the zero-overhead hot path.

    >>> registry = MetricsRegistry()
    >>> registry.counter("requests_total", zone="us-west-1a").inc()
    1.0
    >>> registry.histogram("latency_s", zone="us-west-1a").observe(0.2)
    """

    def __init__(self):
        self._families = {}
        self._lock = threading.Lock()

    # -- access ------------------------------------------------------------
    def counter(self, name, **labels):
        return self._child(name, COUNTER, Counter, labels)

    def gauge(self, name, **labels):
        return self._child(name, GAUGE, Gauge, labels)

    def histogram(self, name, buckets=None, **labels):
        return self._child(name, HISTOGRAM,
                           lambda: Histogram(buckets=buckets), labels)

    def _child(self, name, kind, factory, labels):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = {"kind": kind,
                                                 "children": {}}
            elif family["kind"] != kind:
                raise ConfigurationError(
                    "metric {!r} is a {}, not a {}".format(
                        name, family["kind"], kind))
            key = tuple(sorted(labels.items()))
            child = family["children"].get(key)
            if child is None:
                child = family["children"][key] = factory()
            return child

    # -- introspection ------------------------------------------------------
    def names(self):
        with self._lock:
            return sorted(self._families)

    def kind(self, name):
        with self._lock:
            try:
                return self._families[name]["kind"]
            except KeyError:
                raise ConfigurationError(
                    "unknown metric {!r}".format(name))

    def collect(self):
        """Yield ``(name, kind, labels_dict, metric)`` sorted by name and
        label set — the exporters' single input.

        The family/child structure is snapshotted under the registry lock
        before anything is yielded, so concurrent series creation (a
        simulation thread racing an exporter or ``/metrics`` scrape)
        can never raise ``RuntimeError: dictionary changed size`` or
        surface a half-registered family.
        """
        with self._lock:
            snapshot = [
                (name, family["kind"], key, family["children"][key])
                for name, family in sorted(self._families.items())
                for key in sorted(family["children"])
            ]
        for name, kind, key, metric in snapshot:
            yield name, kind, dict(key), metric

    def get(self, name, **labels):
        """The existing child, or None (never creates)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family["children"].get(tuple(sorted(labels.items())))

    def labels_of(self, name):
        """Every label set recorded under ``name``."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            return [dict(key) for key in sorted(family["children"])]

    def clear(self):
        with self._lock:
            self._families.clear()

    def __len__(self):
        with self._lock:
            return sum(len(f["children"])
                       for f in self._families.values())

    def __repr__(self):
        return "MetricsRegistry(families={}, children={})".format(
            len(self._families), len(self))
