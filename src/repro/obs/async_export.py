"""Off-thread exporters: bounded queues, batched writes, flush-on-close.

The file exporters in :mod:`repro.obs.export` are synchronous snapshot
functions — fine for end-of-run dumps, wrong for a live sweep where a
JSONL line per event would put file I/O on the simulation thread.  This
module moves exporting onto daemon writer threads:

* :class:`AsyncJsonlExporter` — subscribe to an
  :class:`~repro.obs.hooks.EventBus`; events are handed to a bounded
  queue (O(1), no serialization on the emitting thread) and a writer
  thread drains them in batches, serializing and flushing **after every
  drained batch**.  A crash therefore loses at most the queued-but-not-
  yet-drained tail — every line already written is complete and parses
  (the CI smoke kills a producer mid-run and checks exactly that).
  When the queue is full the event is *dropped and counted*, never
  blocking the simulation.
* :class:`AsyncPrometheusExporter` / :class:`AsyncCsvExporter` — render
  a :class:`~repro.obs.metrics.MetricsRegistry` snapshot to a file at a
  fixed cadence, via atomic replace so scrapers never read a torn file.
  The registry's own lock (see :meth:`MetricsRegistry.collect`) makes
  the off-thread snapshot safe against concurrent series creation.

All exporters are context managers; ``close()`` drains what is queued,
writes a final snapshot, flushes, and joins the writer thread.
"""

import csv
import io
import json
import os
import queue
import threading

from repro.common.errors import ConfigurationError
from repro.obs.export import _json_default, metrics_to_rows, \
    prometheus_text

#: Queue sentinel asking the writer thread to finish and exit.
_CLOSE = object()


class AsyncJsonlExporter(object):
    """Stream bus events to a JSONL file from a writer thread.

    ``capacity`` bounds the hand-off queue; a full queue drops the event
    (counted in :attr:`dropped`) instead of stalling the emitter.  Use
    :meth:`attach` to subscribe to a bus, or call :meth:`on_event` /
    :meth:`submit` directly.
    """

    def __init__(self, path, capacity=10000):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.path = str(path)
        # Opened on the caller's thread so path errors raise here, not
        # in the writer.
        self._handle = open(self.path, "a")
        self._queue = queue.Queue(maxsize=int(capacity))
        self._dropped = 0
        self._written = 0
        self._closed = False
        self._unsubscribe = None
        self._thread = threading.Thread(target=self._run,
                                        name="jsonl-exporter", daemon=True)
        self._thread.start()

    # -- producer side -------------------------------------------------------
    def attach(self, bus, name=None):
        """Subscribe to ``bus`` (optionally one event name); returns self."""
        self._unsubscribe = bus.subscribe(self.on_event, name=name)
        return self

    def on_event(self, event):
        self.submit(event.to_dict())

    def submit(self, payload):
        """Queue one JSON-safe dict; False (and counted) when full."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(payload)
            return True
        except queue.Full:
            self._dropped += 1
            return False

    @property
    def dropped(self):
        """Events rejected because the queue was full."""
        return self._dropped

    @property
    def written(self):
        """Lines the writer thread has written *and flushed* so far."""
        return self._written

    # -- writer side ---------------------------------------------------------
    def _run(self):
        q = self._queue
        handle = self._handle
        while True:
            item = q.get()
            closing = item is _CLOSE
            batch = [] if closing else [item]
            # Drain whatever queued up behind it, one write per batch.
            while True:
                try:
                    extra = q.get_nowait()
                except queue.Empty:
                    break
                if extra is _CLOSE:
                    closing = True
                else:
                    batch.append(extra)
            if batch:
                lines = [json.dumps(payload, sort_keys=True,
                                    default=_json_default)
                         for payload in batch]
                handle.write("\n".join(lines) + "\n")
                # Flush per drained batch: everything reported in
                # ``written`` is durable against a producer crash.
                handle.flush()
                self._written += len(batch)
            if closing:
                return

    def close(self, timeout=5.0):
        """Detach, drain the queue, flush, and join the writer."""
        if self._closed:
            return
        self._closed = True
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._queue.put(_CLOSE)
        self._thread.join(timeout=timeout)
        self._handle.flush()
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "AsyncJsonlExporter({!r}, written={}, dropped={})".format(
            self.path, self._written, self._dropped)


class _SnapshotExporter(object):
    """Base: render a registry to a file every ``interval_s`` seconds.

    Writes go to ``path + '.tmp'`` then :func:`os.replace` — readers
    (Prometheus textfile collectors, CSV consumers) always see a
    complete snapshot.  ``close()`` writes one final snapshot so the
    file reflects the end-of-run registry even for short runs.
    """

    def __init__(self, registry, path, interval_s=1.0):
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self.registry = registry
        self.path = str(path)
        self.interval_s = float(interval_s)
        self.snapshots = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name=type(self).__name__,
                                        daemon=True)
        self._thread.start()

    def _render(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _write_snapshot(self):
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(self._render())
            handle.flush()
        os.replace(tmp, self.path)
        self.snapshots += 1

    def _run(self):
        while not self._stop.wait(self.interval_s):
            self._write_snapshot()

    def close(self, timeout=5.0):
        """Stop the cadence and write the final snapshot."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._write_snapshot()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "{}({!r}, snapshots={})".format(type(self).__name__,
                                               self.path, self.snapshots)


class AsyncPrometheusExporter(_SnapshotExporter):
    """Periodic Prometheus text exposition snapshots of a registry."""

    def _render(self):
        return prometheus_text(self.registry)


class AsyncCsvExporter(_SnapshotExporter):
    """Periodic CSV snapshots (one row per child metric)."""

    FIELDS = ("metric", "kind", "labels", "value", "count", "mean",
              "p50", "p95", "p99")

    def _render(self):
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.FIELDS)
        writer.writeheader()
        for row in metrics_to_rows(self.registry):
            writer.writerow(row)
        return buffer.getvalue()
