"""Observability: metrics, tracing, and instrumentation hooks.

The paper's whole method is *observing* opaque FaaS infrastructure; this
package turns the same lens on the library itself.  Three primitives —

* :mod:`hooks` — a pub/sub :class:`EventBus` with a zero-cost
  :data:`NULL_BUS` default that every instrumented component holds;
* :mod:`metrics` — a :class:`MetricsRegistry` of labeled counters,
  gauges, and streaming histograms (p50/p95/p99);
* :mod:`trace` — span-based request-lifecycle tracing on sim-clock
  timestamps with a bounded trace store;

— plus :mod:`export` (JSONL / Prometheus text / CSV) and the
:class:`Observability` facade that bundles all of them and bridges events
into standard metrics.  Observability is **opt-in**: nothing is recorded
until a facade (or bus) is installed on a :class:`~repro.cloudsim.Cloud`
or passed to a :class:`~repro.core.SkyController`, and the disabled
default costs one attribute check per emission site.
"""

from repro.obs.hooks import Event, EventBus, EventRecorder, NULL_BUS, NullBus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile,
)
from repro.obs.trace import Span, Trace, Tracer, format_trace
from repro.obs import export
from repro.obs.async_export import (
    AsyncCsvExporter,
    AsyncJsonlExporter,
    AsyncPrometheusExporter,
)
from repro.obs.ship import TelemetryCapture, TelemetryMerge, current_capture
from repro.obs.manifest import DEFAULT_REGISTRY, RunManifest, RunRegistry
from repro.obs.serve import ObsServer, render_tail, scrape

#: Numeric encoding of breaker states for the ``breaker_state`` gauge
#: (Prometheus gauges are floats): closed=0, half_open=1, open=2.
_BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class Observability(object):
    """One handle over the whole layer: bus + registry + tracer + recorder.

    Construct it, then either ``install(cloud)`` (wires the bus through the
    cloud's zones and host pools) or pass it to ``SkyController(obs=...)``
    / ``SmartRouter(obs=...)`` which install and trace on your behalf.

    A built-in bridge folds the standard event stream into registry
    metrics, so per-zone/per-cpu counters and latency histograms exist
    without any manual subscription.
    """

    def __init__(self, event_capacity=20000, max_traces=256, bridge=True):
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_traces=max_traces)
        self.recorder = EventRecorder(self.bus, capacity=event_capacity)
        # Pre-bound metric handles for the batch-poll bridge arm: one
        # zone-keyed lookup replaces seven registry label resolutions per
        # event, keeping the live-bus cost of a 100k-request batch O(1).
        self._poll_batch_handles = {}
        if bridge:
            self.bus.subscribe(self._bridge)

    @property
    def enabled(self):
        """Collection switch: gates the bus AND request tracing."""
        return self.bus.enabled

    # -- wiring -------------------------------------------------------------
    def install(self, cloud):
        """Attach this facade's bus to ``cloud`` (zones + host pools)."""
        cloud.attach_bus(self.bus)
        return self

    def enable(self):
        self.bus.resume()
        return self

    def disable(self):
        """Pause collection without detaching any wiring."""
        self.bus.pause()
        return self

    # -- the standard event → metric bridge ---------------------------------
    def _bridge(self, event):
        name, fields = event.name, event.fields
        registry = self.registry
        if name == "cloud.invoke":
            labels = {"zone": fields["zone"], "cpu": fields["cpu"]}
            registry.counter("invocations_total", **labels).inc()
            registry.histogram("invoke_latency_s", **labels).observe(
                fields["latency_s"])
            registry.counter("invoke_cost_usd_total", **labels).inc(
                fields["cost_usd"])
            if not fields["reused"]:
                registry.counter("cold_starts_total", **labels).inc()
        elif name == "cloud.poll_batch":
            zone = fields["zone"]
            handles = self._poll_batch_handles.get(zone)
            if handles is None:
                handles = self._poll_batch_handles[zone] = (
                    registry.counter("poll_batches_total", zone=zone),
                    registry.counter("poll_batch_requests_total",
                                     zone=zone),
                    registry.counter("poll_batch_served_total", zone=zone),
                    registry.counter("poll_batch_failed_total", zone=zone),
                    registry.counter("poll_batch_cold_starts_total",
                                     zone=zone),
                    registry.counter("poll_batch_cost_usd_total",
                                     zone=zone),
                    registry.counter("poll_batch_runtime_seconds_total",
                                     zone=zone),
                )
            (batches, requested, served, failed, cold, cost,
             runtime) = handles
            batches.inc()
            requested.inc(fields["requested"])
            served.inc(fields["served"])
            failed.inc(fields["failed"])
            cold.inc(fields["cold_starts"])
            cost.inc(fields["cost_usd"])
            runtime.inc(fields["runtime_total_s"])
        elif name == "az.placement":
            zone = fields["zone"]
            registry.counter("placements_total", zone=zone).inc()
            registry.counter("placement_requests_total", zone=zone).inc(
                fields["requested"])
            registry.counter("placement_served_total", zone=zone).inc(
                fields["served"])
            registry.counter("placement_failed_total", zone=zone).inc(
                fields["failed"])
            registry.gauge("zone_occupancy", zone=zone).set(
                fields["occupancy"])
        elif name == "az.saturation":
            registry.counter("saturation_events_total",
                             zone=fields["zone"]).inc()
        elif name == "az.scale":
            registry.counter("surge_slots_total", zone=fields["zone"]).inc(
                fields["slots_added"])
        elif name == "host.expire":
            registry.counter("slots_released_total", zone=fields["zone"],
                             cpu=fields["cpu"]).inc(fields["released"])
        elif name == "host.allocate":
            registry.counter("slots_allocated_total", zone=fields["zone"],
                             cpu=fields["cpu"]).inc(fields["count"])
        elif name == "sampling.poll":
            zone = fields["zone"]
            registry.counter("polls_total", zone=zone).inc()
            registry.counter("poll_cost_usd_total", zone=zone).inc(
                fields["cost_usd"])
            registry.histogram("poll_failure_rate", zone=zone).observe(
                fields["failure_rate"])
        elif name == "sampling.campaign":
            registry.counter("campaigns_total", zone=fields["zone"]).inc()
        elif name == "retry.attempt":
            registry.counter("retry_attempts_total", zone=fields["zone"],
                             cpu=fields["cpu"]).inc()
        elif name == "retry.hold":
            registry.counter("retry_holds_total",
                             zone=fields["zone"]).inc()
            registry.counter("retry_hold_cost_usd_total",
                             zone=fields["zone"]).inc(fields["cost_usd"])
        elif name == "controller.refresh":
            registry.counter("profile_refreshes_total",
                             zone=fields["zone"]).inc()
            registry.counter("sampling_cost_usd_total",
                             zone=fields["zone"]).inc(fields["cost_usd"])
        elif name == "retry.abort":
            registry.counter("retry_aborts_total", zone=fields["zone"],
                             reason=fields["reason"]).inc()
        elif name == "fault.injected":
            registry.counter("faults_injected_total", zone=fields["zone"],
                             kind=fields["kind"]).inc()
        elif name == "breaker.transition":
            zone = fields["zone"]
            registry.counter("breaker_transitions_total", zone=zone,
                             to=fields["to"]).inc()
            registry.gauge("breaker_state", zone=zone).set(
                _BREAKER_STATE_CODES.get(fields["to"], -1))
        elif name == "router.failover":
            registry.counter("failovers_total", zone=fields["zone"],
                             reason=fields["reason"]).inc()
        elif name == "router.backoff":
            zone = fields["zone"]
            registry.counter("backoffs_total", zone=zone).inc()
            registry.counter("backoff_seconds_total", zone=zone).inc(
                fields["delay_s"])
        elif name == "router.hedge":
            zone = fields["zone"]
            registry.counter("hedges_total", zone=zone).inc()
            if fields["won"]:
                registry.counter("hedge_wins_total", zone=zone).inc()
        elif name == "sweep.cell":
            registry.counter("sweep_cells_total").inc()
            registry.histogram("sweep_cell_wall_ms").observe(
                fields["wall_ms"])
            if not fields["ok"]:
                registry.counter("sweep_cell_failures_total").inc()
        elif name == "sweep.fallback":
            registry.counter("sweep_fallbacks_total").inc()
        elif name == "sweep.worker_joined":
            registry.counter("sweep_workers_joined_total").inc()
        elif name == "sweep.worker_lost":
            registry.counter("sweep_workers_lost_total").inc()
        elif name == "sweep.chunk_requeued":
            registry.counter("sweep_chunks_requeued_total").inc()
        elif name == "sweep.worker_left":
            registry.counter("sweep_workers_left_total").inc()
        elif name == "sweep.auth_rejected":
            registry.counter("sweep_auth_rejected_total").inc()
        elif name == "sweep.resumed":
            registry.counter("sweep_chunks_replayed_total").inc(
                fields.get("chunks", 0))
            registry.counter("sweep_cells_replayed_total").inc(
                fields.get("cells", 0))
        elif name == "sweep.done":
            registry.gauge("sweep_workers").set(fields["workers"])
            registry.gauge("sweep_worker_utilization").set(
                fields["utilization"])
        elif name == "sweep.telemetry":
            worker = fields.get("worker", "unknown")
            registry.counter("sweep_shipped_chunks_total",
                             worker=worker).inc()
            registry.counter("sweep_shipped_events_total",
                             worker=worker).inc(fields.get("events", 0))
            registry.counter("sweep_shipped_spans_total",
                             worker=worker).inc(fields.get("spans", 0))
        elif name == "sweep.telemetry_dropped":
            registry.counter("sweep_telemetry_dropped_total",
                             worker=fields.get("worker", "unknown")).inc(
                fields.get("dropped", 0))
        elif name == "serve.batch":
            mode = fields["mode"]
            registry.counter("serve_batches_total", mode=mode).inc()
            registry.histogram("serve_batch_size", mode=mode).observe(
                fields["size"])
            registry.counter("serve_requests_total",
                             outcome="served").inc(fields["served"])
            if fields["failed"]:
                registry.counter("serve_requests_total",
                                 outcome="failed").inc(fields["failed"])
            registry.counter("serve_cold_starts_total").inc(
                fields["cold_starts"])
            registry.counter("serve_cost_usd_total").inc(fields["cost_usd"])
        elif name == "serve.shed":
            registry.counter("serve_shed_total",
                             reason=fields["reason"]).inc(fields["count"])
            registry.counter("serve_requests_total",
                             outcome="shed").inc(fields["count"])
        elif name == "serve.report":
            registry.counter("serve_offered_total").inc(fields["offered"])
            registry.counter("serve_admitted_total").inc(fields["admitted"])
            registry.gauge("serve_offered_rps").set(fields["offered_rps"])
            registry.gauge("serve_goodput_rps").set(fields["goodput_rps"])
            registry.gauge("serve_shed_rate").set(fields["shed_rate"])
            registry.gauge("serve_slo_attainment").set(
                fields["slo_attainment"])
            registry.gauge("serve_p50_ms").set(fields["p50_ms"])
            registry.gauge("serve_p95_ms").set(fields["p95_ms"])
            registry.gauge("serve_p99_ms").set(fields["p99_ms"])
        elif name == "serve.recharacterize":
            registry.counter("serve_recharacterizations_total",
                             zone=fields["zone"]).inc()
        elif name == "serve.drain":
            registry.counter("serve_drains_total").inc()
            registry.gauge("serve_drained_requests").set(fields["drained"])

    # -- summaries ----------------------------------------------------------
    def zone_latency_summary(self):
        """zone -> {requests, mean, p50, p95, p99} from invoke histograms."""
        return self._latency_summary("zone")

    def cpu_latency_summary(self):
        """cpu -> {requests, mean, p50, p95, p99} from invoke histograms."""
        return self._latency_summary("cpu")

    def _latency_summary(self, label):
        merged = {}
        for labels in self.registry.labels_of("invoke_latency_s"):
            histogram = self.registry.get("invoke_latency_s", **labels)
            bucket = merged.setdefault(labels[label], [])
            bucket.append(histogram)
        summary = {}
        empty = float("nan")
        for key, histograms in sorted(merged.items()):
            values = []
            for histogram in histograms:
                values.extend(histogram._reservoir)
            values.sort()
            count = sum(h.count for h in histograms)
            total = sum(h.sum for h in histograms)
            # A cold series (touch-created or merged-empty histograms)
            # reports NaN quantiles rather than crashing — or lying with
            # 0.0 — about latencies nobody measured.
            summary[key] = {
                "requests": count,
                "mean_latency_s": total / count if count else empty,
                "p50_latency_s": quantile(values, 0.50) if values else empty,
                "p95_latency_s": quantile(values, 0.95) if values else empty,
                "p99_latency_s": quantile(values, 0.99) if values else empty,
            }
        return summary

    def __repr__(self):
        return ("Observability(enabled={}, events={}, metrics={}, "
                "traces={})".format(self.bus.enabled, len(self.recorder),
                                    len(self.registry), len(self.tracer)))


__all__ = [
    "Observability",
    "Event",
    "EventBus",
    "EventRecorder",
    "NullBus",
    "NULL_BUS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile",
    "Span",
    "Trace",
    "Tracer",
    "format_trace",
    "export",
    "AsyncJsonlExporter",
    "AsyncPrometheusExporter",
    "AsyncCsvExporter",
    "TelemetryCapture",
    "TelemetryMerge",
    "current_capture",
    "RunManifest",
    "RunRegistry",
    "DEFAULT_REGISTRY",
    "ObsServer",
    "scrape",
    "render_tail",
]
