"""Live observability endpoint over the stdlib HTTP server.

:class:`ObsServer` exposes a running :class:`~repro.obs.Observability`
facade on three routes, scrape-compatible and dependency-free:

* ``/metrics`` — the registry in Prometheus text exposition (the same
  :func:`~repro.obs.export.prometheus_text` the file exporters use);
* ``/healthz`` — a small JSON liveness document (enabled flag, event /
  metric / trace counts, uptime);
* ``/runs`` — the JSON run registry (see :mod:`repro.obs.manifest`).

The server runs on a daemon thread beside the sweep, so ``/metrics`` is
scrapeable *mid-run*; the sweep thread writes the registry while scrapes
read it, and the registry's collect() snapshots its structure under the
registry lock, so a scrape can never observe a mid-mutation dict.

The module also powers ``python -m repro obs tail``: :func:`scrape` +
:func:`render_tail` turn one ``/metrics`` snapshot into a human sweep
status line-set (cells done, workers joined/lost, requeues, utilization,
p50/p95/p99 cell wall times), with :func:`bucket_quantile` estimating
percentiles from the histogram's cumulative buckets.
"""

import json
import threading
import time
import urllib.request

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.common.errors import ConfigurationError
from repro.obs.export import parse_prometheus_text, prometheus_text

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsServer(object):
    """Serve an :class:`~repro.obs.Observability` facade over HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`address` (or
    :meth:`url`) after :meth:`start`.  ``runs`` is an optional
    :class:`~repro.obs.manifest.RunRegistry`; by default the module-level
    registry every :class:`~repro.obs.manifest.RunManifest` joins is
    served.
    """

    def __init__(self, obs, host="127.0.0.1", port=0, runs=None):
        self.obs = obs
        self.host = host
        self.port = int(port)
        self.runs = runs
        self.address = None
        self._server = None
        self._thread = None
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------
    def start(self):
        """Bind and serve on a daemon thread.  Returns self."""
        owner = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: D102 — silence stderr
                pass

            def do_GET(self):
                try:
                    owner._handle(self)
                except Exception:  # noqa: BLE001 — a scrape must not
                    # take the server thread down with it
                    try:
                        self.send_error(500)
                    except Exception:  # noqa: BLE001 — peer gone
                        pass

        try:
            server = ThreadingHTTPServer((self.host, self.port), Handler)
        except OSError as error:
            raise ConfigurationError(
                "cannot serve observability on {}:{}: {}".format(
                    self.host, self.port, error)) from error
        server.daemon_threads = True
        self._server = server
        self.address = server.server_address[:2]
        self._started = time.monotonic()
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="obs-server", daemon=True)
        self._thread.start()
        return self

    def close(self):
        """Stop serving and release the port."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()
        return False

    def url(self, path="/metrics"):
        if self.address is None:
            raise ConfigurationError("server not started")
        return "http://{}:{}{}".format(self.address[0], self.address[1],
                                       path)

    # -- payloads ------------------------------------------------------------
    def metrics_text(self):
        """The registry as Prometheus text.

        Safe against concurrent registry mutation by construction:
        :meth:`~repro.obs.metrics.MetricsRegistry.collect` snapshots the
        family/child structure under the registry lock before rendering,
        so a sweep thread creating series mid-scrape can never tear the
        iteration (the old retry-on-RuntimeError loop is gone).
        """
        return prometheus_text(self.obs.registry)

    def healthz(self):
        return {
            "status": "ok",
            "enabled": bool(self.obs.enabled),
            "events": len(self.obs.recorder),
            "metrics": len(self.obs.registry),
            "traces": len(self.obs.tracer),
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    def runs_payload(self):
        registry = self.runs
        if registry is None:
            from repro.obs.manifest import DEFAULT_REGISTRY
            registry = DEFAULT_REGISTRY
        return {"runs": registry.rows()}

    # -- request handling ----------------------------------------------------
    def _handle(self, request):
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = self.metrics_text().encode("utf-8")
            content_type = _PROM_CONTENT_TYPE
        elif path == "/healthz":
            body = json.dumps(self.healthz(), sort_keys=True).encode()
            content_type = "application/json"
        elif path == "/runs":
            body = json.dumps(self.runs_payload(), sort_keys=True,
                              default=str).encode()
            content_type = "application/json"
        else:
            request.send_error(404, "unknown path {!r}".format(path))
            return
        request.send_response(200)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    def __repr__(self):
        return "ObsServer(address={}, running={})".format(
            self.address, self._server is not None)


# -- tail: one scrape -> a human status block --------------------------------
def scrape(url, timeout=5.0):
    """Fetch a URL's body as text (stdlib only)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def bucket_quantile(buckets, q):
    """Estimate a quantile from cumulative ``(upper, count)`` buckets.

    ``buckets`` are ascending with ``float("inf")`` last (the parsed form
    of a Prometheus histogram's ``le`` series).  Linear interpolation
    inside the winning bucket; the +Inf bucket degrades to the last
    finite upper bound.  Returns None for an empty histogram.
    """
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = q * total
    previous_upper = 0.0
    previous_count = 0.0
    for upper, count in buckets:
        if count >= target:
            if upper == float("inf"):
                return previous_upper
            span = count - previous_count
            if span <= 0:
                return float(upper)
            fraction = (target - previous_count) / span
            return previous_upper + (float(upper) - previous_upper) \
                * fraction
        if upper != float("inf"):
            previous_upper = float(upper)
        previous_count = count
    return previous_upper


def _series(samples, name):
    """``[(labels_dict, value)]`` for every sample of ``name``."""
    out = []
    for key, value in samples.items():
        if key[0] == name:
            out.append((dict(key[1:]), value))
    return out


def _scalar(samples, name, default=None):
    value = samples.get((name,))
    return default if value is None else value


def _histogram_buckets(samples, name):
    buckets = []
    for labels, value in _series(samples, name + "_bucket"):
        token = labels.get("le")
        if token is None:
            continue
        upper = float("inf") if token == "+Inf" else float(token)
        buckets.append((upper, value))
    buckets.sort(key=lambda pair: pair[0])
    return buckets


def render_tail(samples):
    """Render one parsed ``/metrics`` snapshot as sweep status lines.

    ``samples`` is :func:`~repro.obs.export.parse_prometheus_text`
    output.  Returns a newline-joined block; degrades gracefully when a
    sweep hasn't started (or the endpoint serves a non-sweep facade).
    """
    lines = []
    done = _scalar(samples, "sweep_cells_total")
    inflight_now = _scalar(samples, "sweep_cells_inflight")
    if done is None and inflight_now is not None:
        done = 0.0  # sweep started, first cell still in flight
    if done is not None:
        inflight = _scalar(samples, "sweep_cells_inflight", 0.0)
        failed = _scalar(samples, "sweep_cell_failures_total", 0.0)
        requeued = _scalar(samples, "sweep_chunks_requeued_total", 0.0)
        lines.append(
            "cells: {:.0f} done ({:.0f} failed), {:.0f} in flight, "
            "{:.0f} chunks requeued".format(done, failed, max(0.0,
                                            inflight), requeued))
    joined = _scalar(samples, "sweep_workers_joined_total")
    utilization = _scalar(samples, "sweep_worker_utilization")
    if joined is not None or utilization is not None:
        lost = _scalar(samples, "sweep_workers_lost_total", 0.0)
        parts = []
        if joined is not None:
            parts.append("{:.0f} joined, {:.0f} lost".format(joined, lost))
        if utilization is not None:
            parts.append("utilization {:.0%}".format(utilization))
        lines.append("workers: " + ", ".join(parts))
    buckets = _histogram_buckets(samples, "sweep_cell_wall_ms")
    if buckets and buckets[-1][1] > 0:
        quantiles = []
        for q, tag in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            estimate = bucket_quantile(buckets, q)
            if estimate is not None:
                quantiles.append("{} {:.0f}ms".format(tag, estimate))
        if quantiles:
            lines.append("cell wall: " + "  ".join(quantiles))
    shipped = _series(samples, "sweep_shipped_events_total")
    if shipped:
        dropped = {labels.get("worker"): value for labels, value
                   in _series(samples, "sweep_telemetry_dropped_total")}
        parts = []
        for labels, value in sorted(shipped,
                                    key=lambda s: s[0].get("worker", "")):
            worker = labels.get("worker", "?")
            note = "{}={:.0f}ev".format(worker, value)
            if dropped.get(worker):
                note += "(+{:.0f} dropped)".format(dropped[worker])
            parts.append(note)
        lines.append("shipped: " + ", ".join(parts))
    if not lines:
        return "no sweep metrics yet"
    return "\n".join(lines)
