"""Instrumentation hooks: a lightweight pub/sub event bus.

Every instrumented component (zones, host pools, the cloud facade, the
sampling poller, the retry engine, the controller) holds a bus reference
that defaults to :data:`NULL_BUS` — a disabled singleton whose ``emit`` is
a no-op.  Emission sites guard with ``if bus.enabled:`` so the benchmark
hot paths (vectorized ``place_batch``, ``route_burst``) pay a single
attribute check when observability is off.

Subscribers are plain callables receiving :class:`Event` objects; they can
listen to one event name or to everything.  :class:`EventRecorder` is the
standard bounded sink used by :class:`~repro.obs.Observability`.
"""

import collections

from repro.common.errors import ConfigurationError


class Event(object):
    """One observed fact: a name, a sim-clock timestamp, and fields."""

    __slots__ = ("name", "timestamp", "fields")

    def __init__(self, name, timestamp, fields):
        self.name = name
        self.timestamp = float(timestamp)
        self.fields = fields

    def to_dict(self):
        """JSON-safe flat dict (pairs with the JSONL exporter)."""
        payload = {"event": self.name, "timestamp": self.timestamp}
        payload.update(self.fields)
        return payload

    def __repr__(self):
        return "Event({!r} @ {:.3f} {})".format(self.name, self.timestamp,
                                                self.fields)


class NullBus(object):
    """The zero-cost default: emission is a no-op, subscription an error.

    Subscribing to the null bus would silently observe nothing, which is
    always a wiring mistake — attach a real :class:`EventBus` first.
    """

    enabled = False

    def emit(self, name, timestamp, **fields):
        return None

    def emit_many(self, events):
        """Batch emission no-op: the iterable is never even iterated,
        so hot paths can hand over a generator at zero cost."""
        return 0

    def subscribe(self, callback, name=None):
        raise ConfigurationError(
            "cannot subscribe to the null bus; attach an EventBus first")

    def __repr__(self):
        return "NullBus()"


NULL_BUS = NullBus()


class EventBus(object):
    """Synchronous pub/sub: emitters fire, subscribers observe in order.

    ``enabled`` can be toggled to pause emission without detaching the bus
    (the overhead benchmark measures exactly this configuration).
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)
        self._all = []
        self._named = {}
        self._emitted = 0

    @property
    def emitted(self):
        """Events emitted (not counting those dropped while disabled)."""
        return self._emitted

    # -- subscription ------------------------------------------------------
    def subscribe(self, callback, name=None):
        """Register ``callback`` for ``name`` (or every event when None).

        Returns a zero-argument unsubscribe function.
        """
        if not callable(callback):
            raise ConfigurationError("subscriber must be callable")
        if name is None:
            self._all.append(callback)
            return lambda: self._all.remove(callback)
        listeners = self._named.setdefault(name, [])
        listeners.append(callback)
        return lambda: listeners.remove(callback)

    def subscriber_count(self, name=None):
        if name is None:
            return len(self._all) + sum(
                len(listeners) for listeners in self._named.values())
        return len(self._named.get(name, ()))

    # -- emission ----------------------------------------------------------
    def emit(self, name, timestamp, **fields):
        """Deliver an event to every matching subscriber; returns it.

        Returns None when the bus is disabled (mirrors :class:`NullBus`).
        """
        if not self.enabled:
            return None
        event = Event(name, timestamp, fields)
        self._emitted += 1
        for callback in self._all:
            callback(event)
        for callback in self._named.get(name, ()):
            callback(event)
        return event

    def emit_many(self, events):
        """Deliver a batch of ``(name, timestamp, fields_dict)`` tuples.

        The batch counterpart of :meth:`emit` for producers that already
        hold their facts columnarly (the vectorized poll path, exporters
        replaying a drained queue).  Returns the number of events
        delivered; a disabled bus returns 0 without touching the
        iterable, mirroring :meth:`NullBus.emit_many` — emission sites
        can build ``events`` lazily and pay nothing when observability
        is off.
        """
        if not self.enabled:
            return 0
        delivered = 0
        all_subs = self._all
        named = self._named
        for name, timestamp, fields in events:
            event = Event(name, timestamp, fields)
            delivered += 1
            for callback in all_subs:
                callback(event)
            for callback in named.get(name, ()):
                callback(event)
        self._emitted += delivered
        return delivered

    def pause(self):
        self.enabled = False

    def resume(self):
        self.enabled = True

    def __repr__(self):
        return "EventBus(enabled={}, subscribers={}, emitted={})".format(
            self.enabled, self.subscriber_count(), self._emitted)


class EventRecorder(object):
    """Bounded in-memory event sink with per-name counts.

    The counts survive ring-buffer eviction, so ``counts()`` reflects the
    whole run even when only the tail of the event stream is retained.
    """

    def __init__(self, bus=None, capacity=20000, names=None):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._events = collections.deque(maxlen=int(capacity))
        self._counts = {}
        self._names = frozenset(names) if names is not None else None
        self._unsubscribe = None
        if bus is not None:
            self._unsubscribe = bus.subscribe(self.on_event)

    def on_event(self, event):
        if self._names is not None and event.name not in self._names:
            return
        self._events.append(event)
        self._counts[event.name] = self._counts.get(event.name, 0) + 1

    def __len__(self):
        return len(self._events)

    def events(self, name=None):
        if name is None:
            return list(self._events)
        return [event for event in self._events if event.name == name]

    def counts(self):
        """Total observed events per name (eviction-proof)."""
        return dict(self._counts)

    def count(self, name):
        return self._counts.get(name, 0)

    def clear(self):
        self._events.clear()
        self._counts.clear()

    def detach(self):
        """Stop observing the bus (keeps recorded events)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __repr__(self):
        return "EventRecorder(events={}, names={})".format(
            len(self), len(self._counts))
