"""Request-lifecycle tracing with sim-clock timestamps.

A :class:`Tracer` builds parent/child span trees over the routing path —
router decision → dispatch → AZ placement attempts → retry holds →
billing — and retains a bounded number of completed traces in memory.

Because the simulator's clock does not advance *during* an invocation,
span durations are derived from the modeled latencies: the caller finishes
a span at ``start + latency`` rather than at a wall-clock reading.  All
timestamps are seconds of simulated time.
"""

import collections
import itertools

from repro.common.errors import ConfigurationError


class Span(object):
    """One timed operation within a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "end", "tags")

    def __init__(self, trace_id, span_id, parent_id, name, start, tags):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = float(start)
        self.end = None
        self.tags = tags

    @property
    def is_open(self):
        return self.end is None

    @property
    def duration(self):
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self, timestamp):
        if self.end is not None:
            raise ConfigurationError(
                "span {!r} already finished".format(self.name))
        timestamp = float(timestamp)
        if timestamp < self.start:
            raise ConfigurationError(
                "span {!r} cannot end before it starts".format(self.name))
        self.end = timestamp
        return self

    def tag(self, **tags):
        self.tags.update(tags)
        return self

    def to_dict(self):
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
        }

    def __repr__(self):
        return "Span({!r} trace={} id={} parent={})".format(
            self.name, self.trace_id, self.span_id, self.parent_id)


class Trace(object):
    """A root span and its descendants, in start order."""

    def __init__(self, trace_id, root):
        self.trace_id = trace_id
        self.spans = [root]

    @property
    def root(self):
        return self.spans[0]

    def add(self, span):
        self.spans.append(span)

    def span(self, span_id):
        for span in self.spans:
            if span.span_id == span_id:
                return span
        raise ConfigurationError(
            "trace {} has no span {}".format(self.trace_id, span_id))

    def children(self, span_id):
        return [s for s in self.spans if s.parent_id == span_id]

    @property
    def complete(self):
        """True when every span has finished."""
        return all(span.end is not None for span in self.spans)

    @property
    def duration(self):
        return self.root.duration

    def __len__(self):
        return len(self.spans)

    def __repr__(self):
        return "Trace(id={}, spans={}, complete={})".format(
            self.trace_id, len(self), self.complete)


class Tracer(object):
    """Creates spans and retains the most recent completed traces.

    The store is bounded (``max_traces``); older traces are evicted FIFO.
    Traces are retained from creation (not completion) so an abandoned
    trace is still inspectable.
    """

    def __init__(self, max_traces=256):
        if max_traces < 1:
            raise ConfigurationError("max_traces must be >= 1")
        self._traces = collections.deque(maxlen=int(max_traces))
        self._by_id = {}
        self._next_trace_id = itertools.count(1)
        self._next_span_id = itertools.count(1)

    # -- span creation ------------------------------------------------------
    def start_trace(self, name, timestamp, **tags):
        """Open a new root span (and the trace that owns it)."""
        trace_id = next(self._next_trace_id)
        root = Span(trace_id, next(self._next_span_id), None, name,
                    timestamp, tags)
        trace = Trace(trace_id, root)
        if len(self._traces) == self._traces.maxlen:
            evicted = self._traces[0]
            self._by_id.pop(evicted.trace_id, None)
        self._traces.append(trace)
        self._by_id[trace_id] = trace
        return root

    def start_span(self, name, parent, timestamp, **tags):
        """Open a child span under ``parent`` (any span of a live trace)."""
        if parent is None:
            raise ConfigurationError(
                "child spans need a parent; use start_trace for roots")
        trace = self._by_id.get(parent.trace_id)
        if trace is None:
            raise ConfigurationError(
                "trace {} was evicted; cannot extend it".format(
                    parent.trace_id))
        span = Span(parent.trace_id, next(self._next_span_id),
                    parent.span_id, name, timestamp, tags)
        trace.add(span)
        return span

    def graft(self, span_dicts, parent, shift=0.0):
        """Re-home exported span dicts (``Span.to_dict()``) under ``parent``.

        Used by telemetry merging: a sweep worker's spans arrive as plain
        dicts and are re-created in this tracer's id space, attached to the
        live trace that owns ``parent``.  Foreign parent links are remapped
        through the new ids; spans whose parent is unknown (the foreign
        roots) attach directly to ``parent``.  ``shift`` rebases the
        foreign clock onto this tracer's timeline — durations are
        preserved exactly.  Returns the new spans in input order.
        """
        if parent is None:
            raise ConfigurationError("graft needs a live parent span")
        trace = self._by_id.get(parent.trace_id)
        if trace is None:
            raise ConfigurationError(
                "trace {} was evicted; cannot graft onto it".format(
                    parent.trace_id))
        id_map = {}
        grafted = []
        for payload in span_dicts:
            parent_id = id_map.get(payload.get("parent_id"), parent.span_id)
            span = Span(parent.trace_id, next(self._next_span_id), parent_id,
                        payload["name"], float(payload["start"]) + shift,
                        dict(payload.get("tags") or {}))
            if payload.get("end") is not None:
                span.end = float(payload["end"]) + shift
            id_map[payload["span_id"]] = span.span_id
            trace.add(span)
            grafted.append(span)
        return grafted

    # -- retrieval ----------------------------------------------------------
    def traces(self, complete_only=False):
        traces = list(self._traces)
        if complete_only:
            traces = [t for t in traces if t.complete]
        return traces

    def trace(self, trace_id):
        try:
            return self._by_id[trace_id]
        except KeyError:
            raise ConfigurationError(
                "unknown (or evicted) trace {}".format(trace_id))

    def last_trace(self, complete_only=True):
        """The most recent (complete) trace, or None."""
        for trace in reversed(self._traces):
            if not complete_only or trace.complete:
                return trace
        return None

    def __len__(self):
        return len(self._traces)

    def __repr__(self):
        return "Tracer(traces={})".format(len(self))


def format_trace(trace, indent="  "):
    """Render a trace as an indented tree with durations in ms.

    >>> # trace 3: request (12.4ms)
    >>> #   decide (0.0ms)
    >>> #   dispatch (12.4ms)
    >>> #     placement (11.1ms)
    """
    lines = []

    def render(span, depth):
        duration = span.duration
        timing = ("{:.1f}ms".format(duration * 1000.0)
                  if duration is not None else "open")
        tags = ""
        if span.tags:
            tags = "  [" + ", ".join(
                "{}={}".format(k, span.tags[k])
                for k in sorted(span.tags)) + "]"
        lines.append("{}{} ({}){}".format(indent * depth, span.name,
                                          timing, tags))
        for child in trace.children(span.span_id):
            render(child, depth + 1)

    lines.append("trace {}: {} spans, {}".format(
        trace.trace_id, len(trace),
        "complete" if trace.complete else "incomplete"))
    render(trace.root, 1)
    return "\n".join(lines)
