"""Run flight recorder: durable per-run artifact directories.

A :class:`RunManifest` turns one sweep / campaign / chaos run into a
directory of deterministic replay-and-diff artifacts:

* ``manifest.json`` — kind, seed, grid hash, config, git describe,
  wall-clock bounds, status, and artifact inventory;
* ``events.jsonl`` — the run's recorded event stream (one JSON object
  per line, via the standard JSONL exporter);
* ``metrics.prom`` — the final registry snapshot in Prometheus text;
* ``trace.json`` — every retained trace as span dicts.

Lifecycle: :meth:`RunManifest.begin` writes a ``status: "running"``
manifest immediately (a crashed run leaves evidence), the run proceeds,
and :meth:`RunManifest.finalize` writes the artifacts and flips the
status.  :meth:`RunManifest.load` reads a directory back;
:meth:`events` / :meth:`metrics` / :meth:`traces` reload the artifacts
for forensics, so a recorded run round-trips without the process that
produced it.

Every manifest also joins a :class:`RunRegistry` (module default:
:data:`DEFAULT_REGISTRY`) which backs the live endpoint's ``/runs``
route.
"""

import json
import os
import subprocess
import time

from repro.common.errors import ConfigurationError
from repro.obs.export import (
    events_to_jsonl,
    parse_prometheus_text,
    prometheus_text,
    read_events_jsonl,
)

MANIFEST_VERSION = 1
MANIFEST_FILE = "manifest.json"
EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.prom"
TRACE_FILE = "trace.json"
#: The sweep engine's crash-safe chunk journal lives in the same run
#: directory (see :mod:`repro.engine.journal`); named here so manifest
#: consumers know the full artifact inventory.
CHUNKS_FILE = "chunks.jsonl"


def git_describe(cwd=None):
    """``git describe --always --dirty`` of the source tree, or None.

    Best-effort provenance: a missing git binary, a non-repo install, or
    a timeout all degrade to None rather than failing the run.
    """
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd, capture_output=True, text=True, timeout=5.0)
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


class RunRegistry(object):
    """An in-process index of the manifests this process has begun."""

    def __init__(self):
        self._runs = []

    def register(self, manifest):
        self._runs.append(manifest)
        return manifest

    def rows(self):
        """JSON-safe descriptions, oldest first (feeds ``/runs``)."""
        return [manifest.describe() for manifest in self._runs]

    def __len__(self):
        return len(self._runs)

    def __repr__(self):
        return "RunRegistry(runs={})".format(len(self))


#: The registry ``RunManifest.begin`` joins by default; served by
#: :class:`~repro.obs.serve.ObsServer` at ``/runs``.
DEFAULT_REGISTRY = RunRegistry()


class RunManifest(object):
    """One run's artifact directory (see the module docstring)."""

    def __init__(self, directory, data):
        self.directory = directory
        self.data = data

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    def begin(cls, directory, kind, seed=None, config=None, grid_hash=None,
              registry=DEFAULT_REGISTRY):
        """Create the run directory and its ``status: "running"`` manifest."""
        directory = os.path.abspath(directory)
        os.makedirs(directory, exist_ok=True)
        manifest = cls(directory, {
            "version": MANIFEST_VERSION,
            "kind": str(kind),
            "seed": seed,
            "config": dict(config) if config else {},
            "grid_hash": grid_hash,
            "git": git_describe(),
            "started_unix": time.time(),
            "finished_unix": None,
            "status": "running",
            "summary": None,
            "artifacts": {},
        })
        manifest._write()
        if registry is not None:
            registry.register(manifest)
        return manifest

    def update(self, **fields):
        """Merge fields into the manifest and rewrite it."""
        self.data.update(fields)
        self._write()
        return self

    def install_guard(self):
        """Stamp the run ``status: "interrupted"`` if it never finalizes.

        Installs an :mod:`atexit` hook plus a chaining SIGINT/SIGTERM
        handler; whichever fires first while the manifest still says
        ``running`` rewrites it as ``interrupted`` — so a Ctrl-C'd or
        killed (catchable-signal) run is distinguishable from a crashed
        one (``running``) and from a clean one (``complete``).  A
        ``kill -9`` leaves ``running``, which is itself the evidence.
        Finalizing disarms the guard.  Returns self.
        """
        import atexit
        import signal

        def stamp():
            if self.data.get("status") == "running":
                self.data["status"] = "interrupted"
                self.data["finished_unix"] = time.time()
                try:
                    self._write()
                except OSError:
                    pass

        atexit.register(stamp)
        self._guard = stamp
        previous_handlers = {}

        def handler(signum, frame):
            stamp()
            previous = previous_handlers.get(signum)
            if callable(previous):
                previous(signum, frame)
            else:
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous_handlers[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):
                continue  # not the main thread, or unsupported
        return self

    def finalize(self, obs=None, summary=None, status="complete"):
        """Write the artifact files and close the manifest.

        ``obs`` supplies the artifacts (recorder → events, registry →
        metrics, tracer → traces); pass None to finalize metadata only.
        """
        artifacts = {}
        if obs is not None:
            events = obs.recorder.events()
            with open(self.path(EVENTS_FILE), "w") as handle:
                handle.write(events_to_jsonl(events))
            artifacts[EVENTS_FILE] = len(events)
            with open(self.path(METRICS_FILE), "w") as handle:
                handle.write(prometheus_text(obs.registry))
            artifacts[METRICS_FILE] = len(obs.registry)
            traces = [[span.to_dict() for span in trace.spans]
                      for trace in obs.tracer.traces()]
            with open(self.path(TRACE_FILE), "w") as handle:
                json.dump({"traces": traces}, handle, sort_keys=True)
            artifacts[TRACE_FILE] = sum(len(spans) for spans in traces)
        self.data["artifacts"].update(artifacts)
        self.data["finished_unix"] = time.time()
        self.data["status"] = str(status)
        if summary is not None:
            self.data["summary"] = summary
        self._write()
        return self

    # -- persistence ---------------------------------------------------------
    def path(self, name):
        return os.path.join(self.directory, name)

    def _write(self):
        with open(self.path(MANIFEST_FILE), "w") as handle:
            json.dump(self.data, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")

    @classmethod
    def load(cls, directory):
        """Read a run directory back (raises on a missing manifest)."""
        directory = os.path.abspath(directory)
        manifest_path = os.path.join(directory, MANIFEST_FILE)
        try:
            with open(manifest_path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            raise ConfigurationError(
                "cannot load run manifest from {}: {}".format(
                    directory, error)) from error
        return cls(directory, data)

    # -- artifact readers ----------------------------------------------------
    def events(self):
        """The recorded event dicts (empty if never finalized with obs)."""
        path = self.path(EVENTS_FILE)
        if not os.path.exists(path):
            return []
        return read_events_jsonl(path)

    def metrics_text(self):
        path = self.path(METRICS_FILE)
        if not os.path.exists(path):
            return ""
        with open(path) as handle:
            return handle.read()

    def metrics(self):
        """The final metric samples, parsed back from ``metrics.prom``."""
        return parse_prometheus_text(self.metrics_text())

    def traces(self):
        """Retained traces as lists of span dicts."""
        path = self.path(TRACE_FILE)
        if not os.path.exists(path):
            return []
        with open(path) as handle:
            return json.load(handle)["traces"]

    # -- views ---------------------------------------------------------------
    def describe(self):
        """One JSON-safe row for the run registry / ``/runs``."""
        return {
            "directory": self.directory,
            "kind": self.data.get("kind"),
            "status": self.data.get("status"),
            "seed": self.data.get("seed"),
            "grid_hash": self.data.get("grid_hash"),
            "started_unix": self.data.get("started_unix"),
            "finished_unix": self.data.get("finished_unix"),
        }

    def __repr__(self):
        return "RunManifest(kind={!r}, status={!r}, dir={!r})".format(
            self.data.get("kind"), self.data.get("status"),
            self.directory)
