"""Cross-process telemetry shipping: capture in workers, merge at home.

The sweep engine runs cells in other processes (a local pool or remote
socket workers); without this module every event, metric, and span those
cells produce dies with the worker.  Two halves fix that:

* :class:`TelemetryCapture` lives **in the worker**.  It owns a private
  bus / registry / tracer (no bridge — metrics are regenerated at the
  coordinator from the replayed events, so nothing is counted twice),
  buffers what the cell emits, and :meth:`drain`\\ s a bounded, picklable
  payload per cell.  Buffers never grow without bound: past
  ``max_events`` the capture counts drops instead of appending.

* :class:`TelemetryMerge` lives **on the coordinator**.  It replays each
  payload's events onto the parent bus (stamping ``worker``/``chunk``
  fields), folds shipped metric deltas into the parent registry under a
  ``worker`` label, and grafts worker span trees under a per-chunk span
  of the coordinator's "sweep" trace — so a distributed run yields one
  coherent trace/metric view identical in shape to a local run.

Workers activate a capture ambiently (``with capture:``) so task code
that builds its own private cloud via ``CloudSpec.build`` picks up the
capture bus with zero API changes.  Payloads are plain dicts of plain
types: safe to pickle across the process pool or the socket protocol's
``TELEMETRY`` frame.
"""

import os
import threading
import time

from repro.common.errors import ConfigurationError
from repro.obs.hooks import EventBus
from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM, MetricsRegistry
from repro.obs.trace import Tracer

#: Telemetry payload schema version (bump on incompatible change).
PAYLOAD_VERSION = 1

#: Default per-drain event buffer bound; overflow increments
#: ``dropped_events`` (shipped and surfaced as a counter) instead of
#: growing the buffer.
DEFAULT_MAX_EVENTS = 5000

#: Reservoir samples shipped per histogram (buckets carry the full
#: distribution regardless).
SHIPPED_RESERVOIR = 256

#: Millisecond-scale buckets for per-cell wall times (the default bucket
#: ladder is in seconds and tops out far too low for multi-second cells).
WALL_MS_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0)

_ACTIVE = threading.local()


def current_capture():
    """The capture activated on this thread, or None.

    Consulted by :meth:`repro.engine.spec.CloudSpec.build` so worker-side
    task code attaches the capture bus to the clouds it builds without
    any parameter threading.
    """
    return getattr(_ACTIVE, "capture", None)


class TelemetryCapture(object):
    """Worker-side bounded buffer of events, metric deltas, and spans.

    The capture's bus has a single subscriber (the buffer) and **no**
    event→metric bridge: shipped metrics are only those written directly
    into :attr:`registry` (the per-cell wall-time series below), while
    bridged metrics are regenerated from the replayed events on the
    coordinator.  This split is what makes the merge double-count-proof.
    """

    def __init__(self, worker_id=None, max_events=DEFAULT_MAX_EVENTS,
                 max_traces=64):
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.worker_id = worker_id or "pid-{}".format(os.getpid())
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.max_events = int(max_events)
        self.max_traces = int(max_traces)
        self.tracer = Tracer(max_traces=self.max_traces)
        self.dropped_events = 0
        self._events = []
        self._cell_span = None
        self._epoch = time.perf_counter()
        self._previous = None
        self.bus.subscribe(self._buffer)

    # -- wiring --------------------------------------------------------------
    def install(self, cloud):
        """Attach the capture bus to ``cloud`` (zones + host pools)."""
        cloud.attach_bus(self.bus)
        return self

    def __enter__(self):
        """Activate ambiently: clouds built on this thread capture here."""
        self._previous = current_capture()
        _ACTIVE.capture = self
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _ACTIVE.capture = self._previous
        self._previous = None
        return False

    # -- buffering -----------------------------------------------------------
    def _now(self):
        return time.perf_counter() - self._epoch

    def _buffer(self, event):
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append((event.name, event.timestamp,
                             dict(event.fields)))

    # -- per-cell lifecycle --------------------------------------------------
    def begin_cell(self, index, task=None):
        """Open the wall-clock span that brackets one sweep cell."""
        tags = {"index": index}
        if task is not None:
            tags["task"] = type(task).__name__
        self._cell_span = self.tracer.start_trace("cell", self._now(),
                                                  **tags)
        return self._cell_span

    def end_cell(self, ok, wall_ms):
        """Close the cell span and record the worker-side cell metrics."""
        wall_ms = float(wall_ms)
        self.registry.counter("sweep_worker_cells_total").inc()
        self.registry.histogram("sweep_worker_cell_wall_ms",
                                buckets=WALL_MS_BUCKETS).observe(wall_ms)
        if not ok:
            self.registry.counter("sweep_worker_cell_failures_total").inc()
        span = self._cell_span
        if span is not None:
            span.tag(ok=bool(ok), wall_ms=round(wall_ms, 3))
            span.finish(max(self._now(), span.start))
            self._cell_span = None
        return self

    # -- shipping ------------------------------------------------------------
    def drain(self, cell=None):
        """Snapshot-and-reset: everything buffered since the last drain.

        Returns a plain-dict payload (see :data:`PAYLOAD_VERSION`) that
        pickles cleanly; the capture is left empty and reusable.
        """
        events, self._events = self._events, []
        dropped, self.dropped_events = self.dropped_events, 0
        metrics = []
        for name, kind, labels, metric in self.registry.collect():
            if kind == HISTOGRAM:
                state = metric.state(max_reservoir=SHIPPED_RESERVOIR)
            else:
                state = metric.value
            metrics.append((name, kind, tuple(sorted(labels.items())),
                            state))
        self.registry.clear()
        traces = []
        for trace in self.tracer.traces(complete_only=True):
            traces.append([span.to_dict() for span in trace.spans])
        self.tracer = Tracer(max_traces=self.max_traces)
        return {
            "v": PAYLOAD_VERSION,
            "worker": self.worker_id,
            "cell": cell,
            "events": events,
            "metrics": metrics,
            "traces": traces,
            "dropped_events": dropped,
        }

    def __repr__(self):
        return ("TelemetryCapture(worker={!r}, events={}, dropped={})"
                .format(self.worker_id, len(self._events),
                        self.dropped_events))


class TelemetryMerge(object):
    """Coordinator-side replay of shipped telemetry onto a parent facade.

    One merge instance serves a whole sweep: payloads arrive per chunk
    (in completion order), events re-enter the parent bus with
    ``worker``/``chunk`` fields added, metric deltas land in the parent
    registry under a ``worker`` label, and spans are grafted beneath a
    per-``(worker, chunk)`` span of :attr:`root_span`.  Call
    :meth:`finish` once when the sweep ends to close the open spans.
    """

    def __init__(self, obs, clock=None, root_span=None):
        self.obs = obs
        self.root_span = root_span
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._chunk_spans = {}
        self.chunks_merged = 0
        self.events_merged = 0
        self.metrics_merged = 0
        self.spans_merged = 0
        self.events_dropped = 0

    def merge(self, payload, worker=None, chunk=None):
        """Replay one drained payload; returns self."""
        if not isinstance(payload, dict) or payload.get("v") != \
                PAYLOAD_VERSION:
            raise ConfigurationError(
                "unrecognized telemetry payload: {!r}".format(
                    type(payload).__name__))
        worker = worker or payload.get("worker") or "unknown"
        if chunk is None:
            chunk = payload.get("cell")
        bus = self.obs.bus
        registry = self.obs.registry

        for name, timestamp, fields in payload["events"]:
            self.events_merged += 1
            stamped = dict(fields)
            stamped.setdefault("worker", worker)
            if chunk is not None:
                stamped.setdefault("chunk", chunk)
            bus.emit(name, timestamp, **stamped)

        for name, kind, label_items, state in payload["metrics"]:
            self.metrics_merged += 1
            labels = dict(label_items)
            labels.setdefault("worker", worker)
            if kind == COUNTER:
                registry.counter(name, **labels).inc(state)
            elif kind == GAUGE:
                registry.gauge(name, **labels).set(state)
            elif kind == HISTOGRAM:
                registry.histogram(
                    name, buckets=tuple(state["buckets"]),
                    **labels).merge_state(state)
            else:
                raise ConfigurationError(
                    "unknown shipped metric kind {!r}".format(kind))

        span_count = sum(len(t) for t in payload["traces"])
        if payload["traces"]:
            self._graft_traces(payload["traces"], worker, chunk)
        self.spans_merged += span_count

        dropped = int(payload.get("dropped_events", 0))
        self.events_dropped += dropped
        self.chunks_merged += 1
        bus.emit("sweep.telemetry", self._clock(), worker=worker,
                 chunk=chunk, events=len(payload["events"]),
                 metrics=len(payload["metrics"]), spans=span_count,
                 dropped=dropped)
        if dropped:
            bus.emit("sweep.telemetry_dropped", self._clock(),
                     worker=worker, chunk=chunk, dropped=dropped)
        return self

    def _graft_traces(self, trace_dicts, worker, chunk):
        starts = [t[0]["start"] for t in trace_dicts if t]
        if not starts:
            return
        parent, high_water = self._chunk_parent(worker, chunk)
        # Worker span clocks are worker-local; rebase the batch so its
        # earliest root lands at the parent span's start (durations and
        # relative order within the batch are preserved exactly).
        base = min(starts)
        shift = parent.start - base
        tracer = self.obs.tracer
        for span_dicts in trace_dicts:
            for span in tracer.graft(span_dicts, parent, shift=shift):
                if span.end is not None and span.end > high_water[0]:
                    high_water[0] = span.end

    def _chunk_parent(self, worker, chunk):
        key = (worker, chunk)
        entry = self._chunk_spans.get(key)
        if entry is None:
            now = self._clock()
            if self.root_span is not None:
                span = self.obs.tracer.start_span(
                    "chunk", self.root_span, now, worker=worker,
                    chunk=chunk)
            else:
                span = self.obs.tracer.start_trace(
                    "chunk", now, worker=worker, chunk=chunk)
            entry = self._chunk_spans[key] = (span, [now])
        return entry

    def finish(self):
        """Close every open chunk span (and the root, if merge owns one).

        Chunk spans end at the latest grafted child end (or their own
        start for empty chunks); the sweep root ends at the current
        clock.  Safe to call once; returns self.
        """
        for span, high_water in self._chunk_spans.values():
            if span.is_open:
                span.finish(max(high_water[0], span.start))
        self._chunk_spans.clear()
        if self.root_span is not None and self.root_span.is_open:
            self.root_span.finish(max(self._clock(),
                                      self.root_span.start))
        return self

    def __repr__(self):
        return ("TelemetryMerge(chunks={}, events={}, metrics={}, "
                "spans={}, dropped={})".format(
                    self.chunks_merged, self.events_merged,
                    self.metrics_merged, self.spans_merged,
                    self.events_dropped))
