"""Exporters: JSONL event logs, Prometheus text, and CSV rows.

Three consumers, three formats:

* **JSONL** — one event per line, for offline analysis and replay;
* **Prometheus text exposition** — a point-in-time snapshot of the
  metrics registry, scrape-compatible;
* **CSV rows** — flat dicts that pair with ``repro.reporting.write_csv``.

``parse_prometheus_text`` inverts the snapshot for round-trip tests (and
for diffing two snapshots without a Prometheus server).
"""

import json

from repro.common.errors import ConfigurationError
from repro.obs.metrics import COUNTER, GAUGE, HISTOGRAM


# -- JSONL events ------------------------------------------------------------
def _json_default(value):
    """Last-resort encoder for non-JSON-native event field values.

    Events are open dicts: a ``Money``, ``Decimal``, set, or exception
    leaking into a field must degrade to its string form, not crash the
    whole export.
    """
    return str(value)


def events_to_jsonl(events):
    """Serialize events (``Event`` objects or dicts) to JSONL text.

    Field values outside JSON's native types are rendered via ``str``
    so one odd field can never lose an entire event log.
    """
    lines = []
    for event in events:
        payload = event.to_dict() if hasattr(event, "to_dict") else event
        lines.append(json.dumps(payload, sort_keys=True,
                                default=_json_default))
    return "\n".join(lines) + ("\n" if lines else "")


def write_events_jsonl(path, events):
    with open(path, "w") as handle:
        handle.write(events_to_jsonl(events))
    return path


def read_events_jsonl(path):
    """Load a JSONL event log back into a list of dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- Prometheus text ---------------------------------------------------------
def _format_labels(labels):
    if not labels:
        return ""
    body = ",".join('{}="{}"'.format(key, labels[key])
                    for key in sorted(labels))
    return "{" + body + "}"


def _format_value(value):
    # Prometheus exposition spells the specials +Inf / -Inf / NaN;
    # Python's repr ("inf", "-inf", "nan") is not a valid token.
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    return repr(value)


def prometheus_text(registry):
    """Render a registry snapshot in the Prometheus text format."""
    lines = []
    last_name = None
    for name, kind, labels, metric in registry.collect():
        if name != last_name:
            lines.append("# TYPE {} {}".format(name, kind))
            last_name = name
        if kind in (COUNTER, GAUGE):
            lines.append("{}{} {}".format(name, _format_labels(labels),
                                          _format_value(metric.value)))
        elif kind == HISTOGRAM:
            for upper, cumulative in metric.cumulative_buckets():
                bucket_labels = dict(labels)
                bucket_labels["le"] = (upper if upper == "+Inf"
                                       else repr(float(upper)))
                lines.append("{}_bucket{} {}".format(
                    name, _format_labels(bucket_labels),
                    _format_value(cumulative)))
            lines.append("{}_sum{} {}".format(name, _format_labels(labels),
                                              _format_value(metric.sum)))
            lines.append("{}_count{} {}".format(
                name, _format_labels(labels), _format_value(metric.count)))
        else:
            raise ConfigurationError("unknown metric kind {!r}".format(kind))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text):
    """Parse exposition text back to ``{(name, (label, value), ...): float}``.

    Inverse of :func:`prometheus_text` for round-trip tests; handles only
    the subset this module emits.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        labels = ()
        name = series
        if "{" in series:
            name, _, label_body = series.partition("{")
            label_body = label_body.rstrip("}")
            pairs = []
            for item in label_body.split(","):
                key, _, raw = item.partition("=")
                pairs.append((key, raw.strip('"')))
            labels = tuple(sorted(pairs))
        samples[(name,) + labels] = _parse_value(value)
    return samples


def _parse_value(token):
    """Inverse of :func:`_format_value`, specials included."""
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)


# -- CSV rows ----------------------------------------------------------------
def metrics_to_rows(registry):
    """Flatten a registry into homogeneous CSV rows.

    One row per child metric; histogram rows carry count/mean/p50/p95/p99.
    Pairs with ``repro.reporting.write_csv``.
    """
    rows = []
    for name, kind, labels, metric in registry.collect():
        row = {
            "metric": name,
            "kind": kind,
            "labels": ";".join("{}={}".format(key, labels[key])
                               for key in sorted(labels)),
        }
        if kind == HISTOGRAM:
            empty = metric.count == 0
            row.update({
                "value": metric.sum,
                "count": metric.count,
                "mean": metric.mean,
                "p50": 0.0 if empty else metric.p50,
                "p95": 0.0 if empty else metric.p95,
                "p99": 0.0 if empty else metric.p99,
            })
        else:
            row.update({"value": metric.value, "count": 1, "mean":
                        metric.value, "p50": 0.0, "p95": 0.0, "p99": 0.0})
        rows.append(row)
    return rows


def traces_to_rows(traces):
    """Flatten traces into CSV rows (one row per span)."""
    rows = []
    for trace in traces:
        for span in trace.spans:
            rows.append({
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id if span.parent_id else 0,
                "name": span.name,
                "start": span.start,
                "end": span.end if span.end is not None else "",
                "tags": ";".join("{}={}".format(k, span.tags[k])
                                 for k in sorted(span.tags)),
            })
    return rows
