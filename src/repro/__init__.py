"""repro — serverless sky computing: infrastructure assessment and
performance-aware routing.

A full reproduction of *"Sky Computing for Serverless: Infrastructure
Assessment to Support Performance Enhancement"* (Cordingly, Chen, Hung,
Lloyd) on a simulated multi-provider FaaS substrate.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import build_sky, SamplingCampaign, SkyMesh

    cloud = build_sky(seed=42)
    account = cloud.create_account("research", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1b")
    campaign = SamplingCampaign(cloud, endpoints)
    profile = campaign.run().ground_truth()
    print(profile.shares())
"""

from repro.cloudsim import (
    Cloud,
    CloudAccount,
    CPU_CATALOG,
    build_global_catalog,
)
from repro.cloudsim.catalog import EX3_ZONES, EX4_ZONES
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    CircuitBreaker,
    ExponentialBackoff,
    HedgePolicy,
    HybridPolicy,
    RegionalPolicy,
    ResilienceConfig,
    RetryEngine,
    RetryPolicy,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyController,
    SmartRouter,
    WorkloadRunner,
    ZoneHealthTracker,
    ZoneRanker,
)
from repro.faults import (
    Brownout,
    ColdStartStorm,
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    NetworkPartition,
    ThrottlingBurst,
    TransientFaults,
    ZoneOutage,
    build_preset,
)
from repro.dynfunc import (
    DynamicFunctionRuntime,
    UniversalDynamicFunctionHandler,
    build_payload,
)
from repro.engine import (
    CampaignTask,
    CloudSpec,
    Grid,
    ProgressiveTask,
    StudyTask,
    SweepEngine,
    SweepProgress,
    TemporalTask,
    run_sweep,
)
from repro.obs import EventBus, MetricsRegistry, Observability, Tracer
from repro.saaf import Inspector, report_from_invocation
from repro.sampling import (
    CPUCharacterization,
    DailyCampaignSeries,
    HourlySeries,
    Poller,
    ProgressiveAnalysis,
    SamplingCampaign,
)
from repro.skymesh import ExperimentRunner, SkyMesh
from repro.workloads import all_workloads, workload_by_name

__version__ = "1.0.0"

# ``build_sky`` is the friendlier name for the catalog builder.
build_sky = build_global_catalog

__all__ = [
    "__version__",
    "build_sky",
    "build_global_catalog",
    "Cloud",
    "CloudAccount",
    "CPU_CATALOG",
    "EX3_ZONES",
    "EX4_ZONES",
    "BaselinePolicy",
    "Brownout",
    "CharacterizationStore",
    "CircuitBreaker",
    "ColdStartStorm",
    "ExponentialBackoff",
    "FaultInjector",
    "FaultSchedule",
    "HedgePolicy",
    "HybridPolicy",
    "LatencySpike",
    "NetworkPartition",
    "RegionalPolicy",
    "ResilienceConfig",
    "RetryEngine",
    "RetryPolicy",
    "RetryRoutingPolicy",
    "RoutingStudy",
    "SkyController",
    "SmartRouter",
    "ThrottlingBurst",
    "TransientFaults",
    "WorkloadRunner",
    "ZoneHealthTracker",
    "ZoneOutage",
    "ZoneRanker",
    "build_preset",
    "DynamicFunctionRuntime",
    "UniversalDynamicFunctionHandler",
    "build_payload",
    "CampaignTask",
    "CloudSpec",
    "Grid",
    "ProgressiveTask",
    "StudyTask",
    "SweepEngine",
    "SweepProgress",
    "TemporalTask",
    "run_sweep",
    "EventBus",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "Inspector",
    "report_from_invocation",
    "CPUCharacterization",
    "DailyCampaignSeries",
    "HourlySeries",
    "Poller",
    "ProgressiveAnalysis",
    "SamplingCampaign",
    "ExperimentRunner",
    "SkyMesh",
    "all_workloads",
    "workload_by_name",
]
