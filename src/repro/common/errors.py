"""Exception hierarchy for the repro library.

All library exceptions derive from :class:`ReproError` so callers can catch a
single base type.  Errors that model *cloud platform* failures (quota,
saturation) carry enough structure for the sampling layer to distinguish
"platform exhausted" from "caller misconfigured".
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class UnknownRegionError(ConfigurationError):
    """A region name does not exist in the provider catalog."""

    def __init__(self, region):
        super().__init__("unknown region: {!r}".format(region))
        self.region = region


class UnknownZoneError(ConfigurationError):
    """An availability-zone name does not exist in the provider catalog."""

    def __init__(self, zone):
        super().__init__("unknown availability zone: {!r}".format(zone))
        self.zone = zone


class DeploymentError(ReproError):
    """A function deployment failed or a deployment id is unknown."""


class InvocationError(ReproError):
    """A function invocation failed.

    ``reason`` is a short machine-readable string.  The full vocabulary:

    * ``"handler_error"`` — user code raised inside the FI.  Not worth
      retrying or failing over: the bug follows the request to any zone.
    * ``"throttled"`` — the per-account concurrent-request quota was hit
      (:class:`QuotaExceededError`).  Worth retrying after backoff, and
      worth failing over when the account spans providers.
    * ``"no_capacity"`` — zone-wide saturation, no free FI slots
      (:class:`SaturationError`).  Retrying in the *same* zone is futile
      on short timescales; fail over to another zone instead.
    * ``"transient"`` — a short-lived platform or network fault: a
      control-plane hiccup, a partition, injected chaos
      (:class:`TransientFaultError`).  Worth retrying with backoff, and
      failing over if it persists.

    :data:`RETRYABLE_REASONS` and :data:`FAILOVER_REASONS` encode which
    reasons the resilient client path may retry in place and which
    justify dropping the zone for the current request.
    """

    def __init__(self, message, reason="handler_error"):
        super().__init__(message)
        self.reason = reason


class QuotaExceededError(InvocationError):
    """The per-account concurrent request quota was exceeded."""

    def __init__(self, message="concurrent request quota exceeded"):
        super().__init__(message, reason="throttled")


class SaturationError(InvocationError):
    """The availability zone has no capacity left to create new FIs."""

    def __init__(self, message="availability zone has no free capacity"):
        super().__init__(message, reason="no_capacity")


class TransientFaultError(InvocationError):
    """A short-lived invocation failure (network blip, control-plane
    hiccup, injected chaos).  Safe to retry with backoff."""

    def __init__(self, message="transient invocation fault"):
        super().__init__(message, reason="transient")


#: Reasons the client may retry in the same zone after backing off.
RETRYABLE_REASONS = frozenset(("transient", "throttled"))

#: Reasons that justify failing the request over to another zone.
FAILOVER_REASONS = frozenset(("transient", "throttled", "no_capacity"))


class PayloadError(ReproError):
    """A dynamic-function payload could not be built or decoded."""


class CharacterizationError(ReproError):
    """A CPU characterization is empty, stale, or otherwise unusable."""


class TransportError(ReproError):
    """A distributed-sweep transport failed (socket error, truncated
    frame, lost peer).  Raised by :mod:`repro.engine.protocol` and
    :mod:`repro.engine.remote`; always an infrastructure fault, never a
    task bug."""


class TransportTimeout(TransportError):
    """A transport receive timed out (no frame, no heartbeat)."""


class AuthenticationError(TransportError):
    """A sweep peer failed the HMAC challenge-response handshake (wrong
    or missing shared token, bad magic, unsupported protocol version).
    Raised before any pickled frame from the peer is deserialized."""


class SweepFailure(tuple):
    """One failed sweep cell: unpacks as ``(index, error_type, message)``.

    ``chunk_failure`` marks failures where the *infrastructure* lost the
    whole chunk (a dead worker, a broken pool, a dropped connection)
    rather than the cell's own code raising — reports use it to separate
    platform loss from task bugs.
    """

    def __new__(cls, index, error_type, message, chunk_failure=False):
        self = tuple.__new__(cls, (index, error_type, message))
        self.chunk_failure = bool(chunk_failure)
        return self

    @property
    def index(self):
        return self[0]

    @property
    def error_type(self):
        return self[1]

    @property
    def message(self):
        return self[2]

    def __reduce__(self):
        return (SweepFailure, (self[0], self[1], self[2],
                               self.chunk_failure))


class SweepError(ReproError):
    """One or more cells of a parallel experiment sweep failed.

    ``failures`` is a list of :class:`SweepFailure` entries (each unpacks
    as a ``(cell_index, error_type, message)`` tuple) ordered by cell
    index, so the report is deterministic regardless of which worker hit
    the failure first.  Entries with ``chunk_failure=True`` were lost to
    infrastructure (dead worker, broken pool, dropped transport), not to
    the cell's own code.
    """

    def __init__(self, failures):
        normalized = [failure if isinstance(failure, SweepFailure)
                      else SweepFailure(*failure) for failure in failures]
        self.failures = sorted(normalized)
        lines = ["{} sweep cell(s) failed:".format(len(self.failures))]
        for failure in self.failures:
            suffix = "  [chunk lost]" if failure.chunk_failure else ""
            lines.append("  cell {}: {}: {}{}".format(
                failure.index, failure.error_type, failure.message,
                suffix))
        super().__init__("\n".join(lines))

    def chunk_failures(self):
        """The subset of failures caused by infrastructure loss."""
        return [f for f in self.failures if f.chunk_failure]

    def task_failures(self):
        """The subset of failures raised by the cells' own code."""
        return [f for f in self.failures if not f.chunk_failure]
