"""Exception hierarchy for the repro library.

All library exceptions derive from :class:`ReproError` so callers can catch a
single base type.  Errors that model *cloud platform* failures (quota,
saturation) carry enough structure for the sampling layer to distinguish
"platform exhausted" from "caller misconfigured".
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class UnknownRegionError(ConfigurationError):
    """A region name does not exist in the provider catalog."""

    def __init__(self, region):
        super().__init__("unknown region: {!r}".format(region))
        self.region = region


class UnknownZoneError(ConfigurationError):
    """An availability-zone name does not exist in the provider catalog."""

    def __init__(self, zone):
        super().__init__("unknown availability zone: {!r}".format(zone))
        self.zone = zone


class DeploymentError(ReproError):
    """A function deployment failed or a deployment id is unknown."""


class InvocationError(ReproError):
    """A function invocation failed.

    ``reason`` is a short machine-readable string; the cloud simulator uses
    ``"throttled"`` (per-account concurrency quota), ``"no_capacity"``
    (zone-wide saturation), and ``"handler_error"`` (user code raised).
    """

    def __init__(self, message, reason="handler_error"):
        super().__init__(message)
        self.reason = reason


class QuotaExceededError(InvocationError):
    """The per-account concurrent request quota was exceeded."""

    def __init__(self, message="concurrent request quota exceeded"):
        super().__init__(message, reason="throttled")


class SaturationError(InvocationError):
    """The availability zone has no capacity left to create new FIs."""

    def __init__(self, message="availability zone has no free capacity"):
        super().__init__(message, reason="no_capacity")


class PayloadError(ReproError):
    """A dynamic-function payload could not be built or decoded."""


class CharacterizationError(ReproError):
    """A CPU characterization is empty, stale, or otherwise unusable."""
