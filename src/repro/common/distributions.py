"""Categorical distributions and the error metrics the paper reports.

A *CPU characterization* is a categorical distribution over CPU model names.
The paper compares intermediate characterizations against a ground truth
using **absolute percentage error (APE)**: the sum of absolute differences
between the estimated and true share of each category, expressed in percent.
(With this definition, "95 % characterization accuracy" corresponds to
APE ≤ 5 %.)
"""

from collections import Counter

import numpy as np

from repro.common.errors import CharacterizationError


class CategoricalDistribution(object):
    """An immutable categorical distribution over string-labelled categories.

    Built either from raw observation counts or directly from shares.
    Supports the arithmetic the sampling layer needs: merging counts,
    normalized shares, sampling, and distance metrics.
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, counts):
        """``counts`` maps category -> non-negative count (int or float)."""
        cleaned = {}
        for category, count in counts.items():
            if count < 0:
                raise CharacterizationError(
                    "negative count for category {!r}".format(category))
            if count > 0:
                cleaned[str(category)] = float(count)
        self._counts = cleaned
        self._total = float(sum(cleaned.values()))

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_observations(cls, observations):
        """Build from an iterable of category labels.

        >>> d = CategoricalDistribution.from_observations(["a", "a", "b"])
        >>> round(d.share("a"), 3)
        0.667
        """
        return cls(Counter(observations))

    @classmethod
    def from_shares(cls, shares):
        """Build from category -> probability (will be normalized)."""
        return cls(shares)

    # -- accessors -----------------------------------------------------------
    @property
    def total(self):
        """Total observation weight behind this distribution."""
        return self._total

    @property
    def categories(self):
        """Sorted tuple of category names with non-zero mass."""
        return tuple(sorted(self._counts))

    def count(self, category):
        return self._counts.get(category, 0.0)

    def share(self, category):
        """Fraction of mass on ``category`` (0.0 if absent or empty)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(category, 0.0) / self._total

    def shares(self):
        """Dict of category -> normalized share."""
        return {c: self.share(c) for c in self._counts}

    def counts(self):
        """Copy of the raw counts."""
        return dict(self._counts)

    def mode(self):
        """The most frequent category (ties broken alphabetically)."""
        if not self._counts:
            raise CharacterizationError("empty distribution has no mode")
        return min(self._counts, key=lambda c: (-self._counts[c], c))

    def is_empty(self):
        return self._total == 0

    # -- algebra --------------------------------------------------------------
    def merge(self, other):
        """Pool the observation counts of two distributions."""
        merged = Counter(self._counts)
        merged.update(other.counts())
        return CategoricalDistribution(merged)

    def expectation(self, value_of, default=None):
        """Expected value of ``value_of(category)`` under this distribution.

        ``default`` is used for categories where ``value_of`` returns None.
        """
        if self._total == 0:
            raise CharacterizationError(
                "cannot take expectation of empty distribution")
        acc = 0.0
        for category in self._counts:
            value = value_of(category)
            if value is None:
                if default is None:
                    raise CharacterizationError(
                        "no value for category {!r}".format(category))
                value = default
            acc += self.share(category) * value
        return acc

    def sample(self, rng, size=None):
        """Draw category labels according to the distribution's shares."""
        if self._total == 0:
            raise CharacterizationError("cannot sample empty distribution")
        labels = self.categories
        probs = np.array([self.share(c) for c in labels])
        probs = probs / probs.sum()
        return rng.choice(labels, size=size, p=probs)

    def sample_counts(self, rng, n):
        """Draw ``n`` observations at once; returns category -> count.

        One vectorized ``rng.multinomial`` replaces ``n`` label draws, so
        classifying a 100k-request batch costs one RNG call.  A
        single-category distribution is deterministic and consumes no
        randomness — callers relying on a fixed stream layout (the batch
        poll's cold/warm split) can depend on that.
        """
        if self._total == 0:
            raise CharacterizationError("cannot sample empty distribution")
        if n < 0:
            raise CharacterizationError("sample size must be non-negative")
        labels = self.categories
        if len(labels) == 1:
            return {labels[0]: int(n)}
        probs = np.array([self.share(c) for c in labels])
        probs = probs / probs.sum()
        counts = rng.multinomial(int(n), probs).tolist()
        return {label: count for label, count in zip(labels, counts)
                if count}

    # -- comparisons -----------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, CategoricalDistribution):
            return NotImplemented
        mine, theirs = self.shares(), other.shares()
        keys = set(mine) | set(theirs)
        return all(abs(mine.get(k, 0.0) - theirs.get(k, 0.0)) < 1e-12
                   for k in keys)

    def __hash__(self):
        return hash(tuple(sorted(
            (c, round(s, 12)) for c, s in self.shares().items())))

    def __repr__(self):
        shares = ", ".join("{}={:.1%}".format(c, self.share(c))
                           for c in self.categories)
        return "CategoricalDistribution({})".format(shares)


def absolute_percentage_error(estimate, truth):
    """APE between two distributions, in percent (0-200).

    Defined as ``100 * sum_c |p_est(c) - p_true(c)|`` over the union of
    categories, the metric the paper plots in Figures 5-8.  An estimate that
    matches the ground truth exactly scores 0; totally disjoint supports
    score 200.
    """
    if truth.is_empty():
        raise CharacterizationError("ground-truth distribution is empty")
    if estimate.is_empty():
        raise CharacterizationError("estimated distribution is empty")
    est, tru = estimate.shares(), truth.shares()
    keys = set(est) | set(tru)
    return 100.0 * sum(abs(est.get(k, 0.0) - tru.get(k, 0.0)) for k in keys)


def total_variation_distance(left, right):
    """Total variation distance (half the L1 distance) between shares."""
    return absolute_percentage_error(left, right) / 200.0
