"""Shared building blocks: identifiers, units, errors, RNG, distributions.

Everything in :mod:`repro` sits on top of this package.  It deliberately has
no dependencies on the simulator or the routing system so that any module can
import it without cycles.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    DeploymentError,
    InvocationError,
    QuotaExceededError,
    SaturationError,
    UnknownRegionError,
    UnknownZoneError,
    PayloadError,
    CharacterizationError,
)
from repro.common.ids import (
    AccountId,
    DeploymentId,
    FunctionInstanceId,
    HostId,
    RequestId,
    ZoneId,
    make_id_factory,
)
from repro.common.units import (
    MB,
    GB,
    MILLIS,
    SECONDS,
    MINUTES,
    HOURS,
    DAYS,
    Money,
    gb_seconds,
    mb_to_gb,
)
from repro.common.rng import derive_rng, spawn_children
from repro.common.distributions import (
    CategoricalDistribution,
    absolute_percentage_error,
    total_variation_distance,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DeploymentError",
    "InvocationError",
    "QuotaExceededError",
    "SaturationError",
    "UnknownRegionError",
    "UnknownZoneError",
    "PayloadError",
    "CharacterizationError",
    "AccountId",
    "DeploymentId",
    "FunctionInstanceId",
    "HostId",
    "RequestId",
    "ZoneId",
    "make_id_factory",
    "MB",
    "GB",
    "MILLIS",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "DAYS",
    "Money",
    "gb_seconds",
    "mb_to_gb",
    "derive_rng",
    "spawn_children",
    "CategoricalDistribution",
    "absolute_percentage_error",
    "total_variation_distance",
]
