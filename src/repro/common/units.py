"""Units and money.

Time is expressed in **seconds of simulated time** (floats) everywhere in the
library; these constants make call sites self-describing.  Memory is in
**megabytes** (the unit FaaS platforms configure) with helpers to convert to
the GB-seconds billing unit.
"""

# -- time ------------------------------------------------------------------
MILLIS = 1e-3
SECONDS = 1.0
MINUTES = 60.0
HOURS = 3600.0
DAYS = 86400.0

# -- memory ----------------------------------------------------------------
MB = 1
GB = 1024  # megabytes per gigabyte, matching FaaS console conventions


def mb_to_gb(memory_mb):
    """Convert a memory setting in MB to GB (1 GB = 1024 MB).

    >>> mb_to_gb(2048)
    2.0
    """
    return memory_mb / float(GB)


def gb_seconds(memory_mb, duration_s):
    """Compute the GB-seconds consumed by an invocation.

    This is the billing unit used by AWS Lambda and similar platforms:
    allocated memory (GB) multiplied by billed duration (seconds).

    >>> gb_seconds(1024, 2.0)
    2.0
    """
    return mb_to_gb(memory_mb) * duration_s


class Money(object):
    """US-dollar amount with exact-ish arithmetic and friendly formatting.

    Costs in this library are tiny (micro-dollars per request) and get summed
    millions of times, so ``Money`` stores a float but formats and compares
    at micro-dollar resolution to avoid noise in test assertions.
    """

    __slots__ = ("usd",)

    RESOLUTION = 1e-9

    def __init__(self, usd=0.0):
        self.usd = float(usd)

    # arithmetic -----------------------------------------------------------
    def __add__(self, other):
        return Money(self.usd + _usd_of(other))

    __radd__ = __add__

    def __sub__(self, other):
        return Money(self.usd - _usd_of(other))

    def __mul__(self, factor):
        return Money(self.usd * factor)

    __rmul__ = __mul__

    def __truediv__(self, divisor):
        if isinstance(divisor, Money):
            return self.usd / divisor.usd
        return Money(self.usd / divisor)

    def __neg__(self):
        return Money(-self.usd)

    # comparisons ----------------------------------------------------------
    def __eq__(self, other):
        return abs(self.usd - _usd_of(other)) < self.RESOLUTION

    def __lt__(self, other):
        return self.usd < _usd_of(other) - self.RESOLUTION

    def __le__(self, other):
        return self == other or self < other

    def __gt__(self, other):
        return _usd_of(other) < self.usd - self.RESOLUTION

    def __ge__(self, other):
        return self == other or self > other

    def __hash__(self):
        return hash(round(self.usd, 9))

    # misc -----------------------------------------------------------------
    def __float__(self):
        return self.usd

    def __repr__(self):
        return "Money({:.9f})".format(self.usd)

    def __str__(self):
        if abs(self.usd) >= 0.01:
            return "${:,.2f}".format(self.usd)
        return "${:.6f}".format(self.usd)


def _usd_of(value):
    if isinstance(value, Money):
        return value.usd
    return float(value)
