"""Lightweight typed identifiers used across the simulator and router.

Identifiers are plain strings (cheap, hashable, printable) wrapped in
``NewType``-style aliases for documentation, plus a deterministic factory so
simulation runs produce stable ids for a given seed.
"""

import itertools

# Semantic aliases.  We intentionally keep these as ``str`` at runtime: ids
# cross module boundaries constantly and must stay trivially serializable.
AccountId = str
DeploymentId = str
FunctionInstanceId = str
HostId = str
RequestId = str
ZoneId = str


def make_id_factory(prefix):
    """Return a callable producing ``prefix-000001`` style sequential ids.

    Sequential ids keep simulation output deterministic and diffable, which
    matters for reproducible benchmarks.

    >>> new_host = make_id_factory("host")
    >>> new_host()
    'host-000001'
    >>> new_host()
    'host-000002'
    """
    counter = itertools.count(1)

    def factory():
        return "{}-{:06d}".format(prefix, next(counter))

    return factory


def zone_of_region(region_name, zone_suffix):
    """Compose an AZ id from a region and a suffix letter.

    >>> zone_of_region("us-east-2", "a")
    'us-east-2a'
    """
    return "{}{}".format(region_name, zone_suffix)


def region_of_zone(zone_id):
    """Strip the trailing zone letter from an AZ id.

    >>> region_of_zone("us-east-2a")
    'us-east-2'

    Zones that do not end in a single letter (e.g. IBM/DO regions that have
    no per-zone subdivision in this model) are returned unchanged.
    """
    if zone_id and zone_id[-1].isalpha() and zone_id[-2:-1].isdigit():
        return zone_id[:-1]
    return zone_id
