"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  These helpers derive independent child
generators from a parent so that adding randomness to one component never
perturbs another (the classic "seed stability" property needed for
reproducible benchmarks).
"""

import hashlib

import numpy as np


def derive_rng(parent, *tokens):
    """Derive a child generator from ``parent`` keyed by ``tokens``.

    The same parent seed and token sequence always yields the same child
    stream, independent of how many other children were derived and in what
    order.

    ``parent`` may be a :class:`numpy.random.Generator`, an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if parent is None:
        return np.random.default_rng()
    if isinstance(parent, (int, np.integer)):
        base = int(parent)
    elif isinstance(parent, np.random.Generator):
        # Use the generator's own state hash as the base so two different
        # generators produce different children for the same tokens.
        state = parent.bit_generator.state
        base = _stable_hash(repr(sorted(state["state"].items())
                                 if isinstance(state.get("state"), dict)
                                 else state))
    else:
        raise TypeError("cannot derive rng from {!r}".format(type(parent)))
    mixed = _stable_hash("|".join([str(base)] + [str(t) for t in tokens]))
    return np.random.default_rng(mixed)


def spawn_children(parent, count, *tokens):
    """Derive ``count`` independent child generators.

    >>> kids = spawn_children(42, 3, "hosts")
    >>> len(kids)
    3
    """
    return [derive_rng(parent, i, *tokens) for i in range(count)]


def _stable_hash(text):
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
