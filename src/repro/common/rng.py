"""Deterministic random-number plumbing.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  These helpers derive independent child
generators from a parent so that adding randomness to one component never
perturbs another (the classic "seed stability" property needed for
reproducible benchmarks).
"""

import hashlib

import numpy as np


def spawn_seed(parent_seed, *tokens):
    """Derive a child integer seed from ``parent_seed`` keyed by ``tokens``.

    This is the spawn-key scheme behind every derived stream in the
    library: the child seed is a SHA-256 mix of the parent seed and the
    token path, so it is stable across processes, platforms, and Python
    hash randomization, and independent of how many sibling streams were
    derived or in what order.  The parallel experiment engine keys each
    grid cell's cloud seed with this function, which is what makes sweep
    results byte-identical regardless of worker count.
    """
    return _stable_hash(
        "|".join([str(int(parent_seed))] + [str(t) for t in tokens]))


def derive_rng(parent, *tokens):
    """Derive a child generator from ``parent`` keyed by ``tokens``.

    The same parent seed and token sequence always yields the same child
    stream, independent of how many other children were derived and in what
    order.

    ``parent`` may be a :class:`numpy.random.Generator`, an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if parent is None:
        return np.random.default_rng()
    if isinstance(parent, (int, np.integer)):
        base = int(parent)
    elif isinstance(parent, np.random.Generator):
        # Use the generator's own state hash as the base so two different
        # generators produce different children for the same tokens.
        state = parent.bit_generator.state
        base = _stable_hash(repr(sorted(state["state"].items())
                                 if isinstance(state.get("state"), dict)
                                 else state))
    else:
        raise TypeError("cannot derive rng from {!r}".format(type(parent)))
    return np.random.default_rng(spawn_seed(base, *tokens))


def spawn_children(parent, count, *tokens):
    """Derive ``count`` independent child generators.

    >>> kids = spawn_children(42, 3, "hosts")
    >>> len(kids)
    3
    """
    return [derive_rng(parent, i, *tokens) for i in range(count)]


def _stable_hash(text):
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
