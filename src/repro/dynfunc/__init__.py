"""Dynamic functions: generic pre-deployed FaaS functions (paper §3.2).

A *dynamic function* is a generic execution environment deployed once to
every zone; the **workload source code travels in the request payload**
(compressed + base64), is cached on the FI's ephemeral filesystem keyed by
payload hash, and is executed by the resident Python interpreter.  This lets
the sky mesh run any workload anywhere without redeployment.

Components:

* :mod:`payload` — build/encode/decode payloads (code, files, arguments),
  with the paper's size envelope (≤5 MB) and decode-cost model (<1 ms for
  code, ≤70 ms for a maximal payload);
* :mod:`runtime` — the in-FI runtime: decode, hash-keyed caching, and real
  ``exec`` of the supplied source (used by tests and examples);
* :mod:`handler` — the simulator-side handler that accounts for decode
  overhead, payload caching per FI, and the in-function CPU check used by
  the retry strategies.
"""

from repro.dynfunc.payload import (
    DynamicPayload,
    build_payload,
    decode_payload,
    payload_decode_seconds,
    MAX_PAYLOAD_BYTES,
)
from repro.dynfunc.runtime import DynamicFunctionRuntime, ExecutionResult
from repro.dynfunc.handler import (
    CPU_CHECK_SECONDS,
    DynamicFunctionHandler,
    UniversalDynamicFunctionHandler,
)

__all__ = [
    "DynamicPayload",
    "build_payload",
    "decode_payload",
    "payload_decode_seconds",
    "MAX_PAYLOAD_BYTES",
    "DynamicFunctionRuntime",
    "ExecutionResult",
    "DynamicFunctionHandler",
    "UniversalDynamicFunctionHandler",
    "CPU_CHECK_SECONDS",
]
