"""The in-FI dynamic-function runtime.

This is the code that would be deployed as the generic function body: it
receives a payload, decodes and caches it on the ephemeral filesystem, and
executes the supplied handler.  It runs real Python — tests and examples use
it to execute the Table-1 workloads end-to-end.
"""

import time

from repro.common.errors import PayloadError
from repro.dynfunc.payload import DynamicPayload, decode_payload


class ExecutionResult(object):
    """Outcome of one dynamic-function execution."""

    __slots__ = ("value", "cached", "decode_seconds", "execute_seconds",
                 "sha256")

    def __init__(self, value, cached, decode_seconds, execute_seconds,
                 sha256):
        self.value = value
        self.cached = cached
        self.decode_seconds = decode_seconds
        self.execute_seconds = execute_seconds
        self.sha256 = sha256

    def __repr__(self):
        return ("ExecutionResult(cached={}, decode={:.4f}s, "
                "execute={:.4f}s)".format(self.cached, self.decode_seconds,
                                          self.execute_seconds))


class DynamicFunctionRuntime(object):
    """One FI's dynamic-function environment with a payload cache.

    Each FI keeps the decoded source and files of previously seen payloads
    keyed by their hash; a second request with the same payload skips the
    decode/decompress step entirely (paper §3.2).
    """

    def __init__(self, ephemeral_limit_bytes=512 * 1024 * 1024):
        self._cache = {}
        self._cache_bytes = 0
        self._ephemeral_limit = ephemeral_limit_bytes

    @property
    def cached_payloads(self):
        return len(self._cache)

    def handle(self, payload, context=None):
        """Decode (or reuse) a payload and execute its entry point.

        ``context`` is passed through to the handler as its second argument
        (mirroring FaaS handler signatures ``handler(event, context)``).
        """
        if isinstance(payload, dict):
            payload = DynamicPayload.from_dict(payload)
        started = time.perf_counter()
        cached = payload.sha256 in self._cache
        if cached:
            source, files = self._cache[payload.sha256]
            decode_seconds = time.perf_counter() - started
        else:
            source, files = decode_payload(payload)
            self._store(payload.sha256, source, files)
            decode_seconds = time.perf_counter() - started

        namespace = {"__name__": "dynamic_function",
                     "__dynamic_files__": files}
        try:
            exec(compile(source, "<dynamic-function>", "exec"), namespace)
        except Exception as exc:
            raise PayloadError("payload source failed to load: {}".format(exc))
        entry = namespace.get(payload.entry)
        if entry is None or not callable(entry):
            raise PayloadError(
                "payload entry point {!r} not found".format(payload.entry))

        exec_started = time.perf_counter()
        value = entry(payload.args, context)
        execute_seconds = time.perf_counter() - exec_started
        return ExecutionResult(value, cached, decode_seconds,
                               execute_seconds, payload.sha256)

    def _store(self, sha256, source, files):
        size = len(source) + sum(len(f) for f in files.values())
        # Evict oldest entries when the ephemeral filesystem fills up.
        while (self._cache_bytes + size > self._ephemeral_limit
               and self._cache):
            _, (old_source, old_files) = self._cache.popitem()
            self._cache_bytes -= (len(old_source)
                                  + sum(len(f) for f in old_files.values()))
        self._cache[sha256] = (source, files)
        self._cache_bytes += size
