"""Dynamic-function payloads: code and data shipped in the request.

FaaSET's tooling "can take files, compress, encode, and automatically
generate the payload for a request to a dynamic function" (paper §3.2).
A payload bundles:

* ``code`` — the workload's Python source (zlib + base64);
* ``files`` — auxiliary data files (same encoding), unpacked to the FI's
  ephemeral filesystem;
* ``entry`` — the handler symbol to call;
* ``args`` — JSON-serializable arguments for the handler;
* ``sha256`` — content hash, the FI-side cache key.
"""

import base64
import hashlib
import json
import zlib

from repro.common.errors import PayloadError

# The paper evaluates payloads up to 5 MB ("Even for a maximum payload input
# size of 5 MB, the decode time remains minimal (at most 70 ms)").
MAX_PAYLOAD_BYTES = 5 * 1024 * 1024

# Decode-cost model endpoints: ~1 ms for a small code-only payload,
# ~70 ms for a maximal 5 MB payload.
_BASE_DECODE_SECONDS = 1e-3
_DECODE_SECONDS_PER_BYTE = (70e-3 - _BASE_DECODE_SECONDS) / MAX_PAYLOAD_BYTES


class DynamicPayload(object):
    """An encoded dynamic-function payload."""

    __slots__ = ("code_b64", "files_b64", "entry", "args", "sha256",
                 "banned_cpus")

    def __init__(self, code_b64, files_b64, entry, args, sha256,
                 banned_cpus=()):
        self.code_b64 = code_b64
        self.files_b64 = dict(files_b64)
        self.entry = entry
        self.args = args
        self.sha256 = sha256
        self.banned_cpus = tuple(banned_cpus)

    @property
    def encoded_bytes(self):
        """Total size of the encoded payload body."""
        total = len(self.code_b64)
        for blob in self.files_b64.values():
            total += len(blob)
        return total

    def to_dict(self):
        """Wire format: what would be POSTed to the function URL."""
        return {
            "code": self.code_b64,
            "files": dict(self.files_b64),
            "entry": self.entry,
            "args": self.args,
            "sha256": self.sha256,
            "banned_cpus": list(self.banned_cpus),
        }

    @classmethod
    def from_dict(cls, data):
        try:
            return cls(data["code"], data.get("files", {}),
                       data.get("entry", "handler"), data.get("args"),
                       data["sha256"], data.get("banned_cpus", ()))
        except KeyError as missing:
            raise PayloadError(
                "payload missing field {}".format(missing))

    def with_banned_cpus(self, banned_cpus):
        """Copy of this payload carrying a banned-CPU list (retry method)."""
        return DynamicPayload(self.code_b64, self.files_b64, self.entry,
                              self.args, self.sha256, tuple(banned_cpus))

    def __repr__(self):
        return "DynamicPayload(entry={!r}, bytes={}, files={})".format(
            self.entry, self.encoded_bytes, len(self.files_b64))


def _encode_blob(raw):
    return base64.b64encode(zlib.compress(raw, 6)).decode("ascii")


def _decode_blob(blob):
    try:
        return zlib.decompress(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:
        raise PayloadError("cannot decode payload blob: {}".format(exc))


def build_payload(source_code, files=None, entry="handler", args=None):
    """Compress and encode a workload into a :class:`DynamicPayload`.

    ``files`` maps filename -> bytes.  Raises :class:`PayloadError` if the
    encoded payload exceeds the 5 MB envelope.
    """
    if not source_code or not source_code.strip():
        raise PayloadError("source code must be non-empty")
    files = files or {}
    code_b64 = _encode_blob(source_code.encode("utf-8"))
    files_b64 = {}
    digest = hashlib.sha256(source_code.encode("utf-8"))
    for name in sorted(files):
        raw = files[name]
        if isinstance(raw, str):
            raw = raw.encode("utf-8")
        files_b64[name] = _encode_blob(raw)
        digest.update(name.encode("utf-8"))
        digest.update(raw)
    digest.update(json.dumps(args, sort_keys=True,
                             default=str).encode("utf-8"))
    payload = DynamicPayload(code_b64, files_b64, entry, args,
                             digest.hexdigest())
    if payload.encoded_bytes > MAX_PAYLOAD_BYTES:
        raise PayloadError(
            "payload is {} bytes; the envelope is {}".format(
                payload.encoded_bytes, MAX_PAYLOAD_BYTES))
    return payload


def decode_payload(payload):
    """Decode a payload back to ``(source_code, files)``.

    ``payload`` may be a :class:`DynamicPayload` or its wire dict.
    """
    if isinstance(payload, dict):
        payload = DynamicPayload.from_dict(payload)
    source = _decode_blob(payload.code_b64).decode("utf-8")
    files = {name: _decode_blob(blob)
             for name, blob in payload.files_b64.items()}
    return source, files


def payload_decode_seconds(payload):
    """Modelled decode+decompress+store time for a payload (paper §3.2)."""
    return (_BASE_DECODE_SECONDS
            + payload.encoded_bytes * _DECODE_SECONDS_PER_BYTE)
