"""Simulator-side handlers for dynamic functions.

Inside the simulator we do not execute workload source per request (EX-5
profiles each workload 10,000 times per zone); instead these handlers
combine:

* the workload's calibrated per-CPU runtime model (Figure 9 factors);
* payload decode overhead, skipped when the FI has the payload cached;
* the in-function **CPU check** used by the retry strategies: if the FI's
  CPU is on the payload's banned list, the function returns immediately
  (a few milliseconds) instead of running the workload.

Two flavours:

* :class:`DynamicFunctionHandler` — bound to one workload model (a mesh
  deployment dedicated to a single function);
* :class:`UniversalDynamicFunctionHandler` — the true dynamic function: a
  generic endpoint that resolves the workload model *from the payload*, so
  one deployment can run anything
  (:func:`repro.workloads.registry.resolve_runtime_model` is the standard
  resolver).
"""

import numpy as np

from repro.common.errors import ConfigurationError, PayloadError
from repro.cloudsim.handlers import Handler, ScaledWorkloadHandler
from repro.dynfunc.payload import DynamicPayload, payload_decode_seconds

# Cost of reading /proc/cpuinfo and comparing against the banned list.
CPU_CHECK_SECONDS = 5e-3

# Cost of a payload-hash comparison when the FI already has the data cached.
CACHE_HIT_SECONDS = 1e-4


class _DynamicOverheadBase(Handler):
    """Shared payload bookkeeping: decode overhead, cache, CPU check."""

    def __init__(self, default_payload=None):
        self.default_payload = default_payload
        self._seen_hashes = set()

    def _payload_of(self, payload):
        if payload is None:
            return self.default_payload
        if isinstance(payload, dict):
            return DynamicPayload.from_dict(payload)
        return payload

    def _decode_overhead(self, payload):
        if payload.sha256 in self._seen_hashes:
            return CACHE_HIT_SECONDS
        self._seen_hashes.add(payload.sha256)
        return payload_decode_seconds(payload)

    def _model_for(self, payload):
        raise NotImplementedError

    def duration_on(self, cpu_key, rng, payload=None):
        payload = self._payload_of(payload)
        overhead = 0.0
        if payload is not None:
            overhead = self._decode_overhead(payload)
            if cpu_key is not None and cpu_key in payload.banned_cpus:
                # CPU-based decision logic: refuse to run the workload.
                return overhead + CPU_CHECK_SECONDS
        model = self._model_for(payload)
        if cpu_key is None:
            # Occupancy estimate (batch polls pass cpu_key=None before
            # placement picks real CPUs).  Models keyed strictly by CPU
            # have no factor for None; fall back to the reference-CPU
            # mean, consuming no RNG — both batch-poll paths make this
            # call identically, so the stream contract holds.
            try:
                return overhead + model.duration_on(None, rng)
            except ConfigurationError:
                return overhead + self._reference_duration(model)
        return overhead + model.duration_on(cpu_key, rng)

    @staticmethod
    def _reference_duration(model):
        scale = 1.0
        while isinstance(model, ScaledWorkloadHandler):
            scale *= model.scale
            model = model.inner
        return scale * model.base_seconds

    def durations_on(self, cpu_key, rng, count, payload=None):
        """Vectorized batch draw, loop-equivalent to ``duration_on``.

        Only the first request of a batch can pay the full decode
        overhead (it marks the hash seen for the rest); every later one
        is a cache hit.  A banned CPU short-circuits before the model,
        consuming no RNG — exactly like ``count`` scalar calls — so the
        batch-poll RNG stream contract holds for dynamic deployments.
        """
        payload = self._payload_of(payload)
        overheads = None
        if payload is not None:
            overheads = np.full(count, CACHE_HIT_SECONDS, dtype=np.float64)
            if count:
                overheads[0] = self._decode_overhead(payload)
            if cpu_key is not None and cpu_key in payload.banned_cpus:
                return overheads + CPU_CHECK_SECONDS
        model = self._model_for(payload)
        runtimes = model.durations_on(cpu_key, rng, count)
        if overheads is not None:
            runtimes = overheads + runtimes
        return runtimes

    def respond(self, cpu_key, payload=None):
        payload = self._payload_of(payload)
        declined = (payload is not None and cpu_key is not None
                    and cpu_key in payload.banned_cpus)
        model = self._model_for(payload)
        return {
            "workload": model.name,
            "cpu": cpu_key,
            "executed": not declined,
        }


class DynamicFunctionHandler(_DynamicOverheadBase):
    """A dynamic function bound to one workload model."""

    def __init__(self, workload_model, default_payload=None):
        if workload_model is None:
            raise ConfigurationError("workload_model is required")
        super(DynamicFunctionHandler, self).__init__(default_payload)
        self.workload_model = workload_model

    def _model_for(self, payload):
        return self.workload_model

    def mean_duration_on(self, cpu_key):
        """Noise-free workload runtime (no payload overhead)."""
        return self.workload_model.mean_duration_on(cpu_key)

    @property
    def name(self):
        return self.workload_model.name


class UniversalDynamicFunctionHandler(_DynamicOverheadBase):
    """The generic sky-mesh endpoint: any workload, chosen by payload.

    ``model_resolver(payload)`` maps a payload to a runtime model
    (:class:`~repro.cloudsim.handlers.ModeledWorkloadHandler`).
    """

    name = "dynamic"

    def __init__(self, model_resolver, default_payload=None):
        if model_resolver is None:
            raise ConfigurationError("model_resolver is required")
        super(UniversalDynamicFunctionHandler, self).__init__(
            default_payload)
        self._resolver = model_resolver

    def _model_for(self, payload):
        if payload is None:
            raise PayloadError(
                "a universal dynamic function needs a payload to know "
                "what to run")
        return self._resolver(payload)
