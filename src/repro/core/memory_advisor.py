"""Memory-setting advice: predict cost and runtime across the mesh ladder.

The SAAF lineage the paper builds on includes predicting the performance
and cost of functions across configurations.  Given a zone's CPU
characterization and a workload, the advisor sweeps the provider's memory
ladder and predicts, per rung:

* expected runtime — Figure-9 CPU factors weighted by the zone mix, times
  the memory-dependent CPU-allocation slowdown;
* expected billed cost — runtime × memory × the provider's GB-second rate
  plus the per-request fee.

It then recommends a rung per objective: ``cheapest``, ``fastest``, or
``balanced`` (minimum cost × runtime product).
"""

from repro.common.errors import ConfigurationError
from repro.workloads.memory import memory_speed_factor


class MemoryRecommendation(object):
    """Predictions for every rung plus the per-objective picks."""

    def __init__(self, workload_name, zone_id, predictions):
        if not predictions:
            raise ConfigurationError("no memory settings evaluated")
        self.workload_name = workload_name
        self.zone_id = zone_id
        # memory_mb -> {"runtime_s": float, "cost_usd": float}
        self.predictions = dict(predictions)

    def ladder(self):
        return sorted(self.predictions)

    def runtime_at(self, memory_mb):
        return self.predictions[memory_mb]["runtime_s"]

    def cost_at(self, memory_mb):
        return self.predictions[memory_mb]["cost_usd"]

    @property
    def cheapest(self):
        return min(self.ladder(), key=lambda m: (self.cost_at(m), m))

    @property
    def fastest(self):
        return min(self.ladder(), key=lambda m: (self.runtime_at(m), m))

    @property
    def balanced(self):
        return min(self.ladder(),
                   key=lambda m: (self.cost_at(m) * self.runtime_at(m),
                                  m))

    def pick(self, objective="balanced"):
        try:
            return getattr(self, objective)
        except AttributeError:
            raise ConfigurationError(
                "unknown objective {!r}; use cheapest/fastest/"
                "balanced".format(objective))

    def to_rows(self):
        return [{
            "memory_mb": memory_mb,
            "runtime_s": round(self.runtime_at(memory_mb), 4),
            "cost_usd": self.cost_at(memory_mb),
        } for memory_mb in self.ladder()]

    def __repr__(self):
        return ("MemoryRecommendation({}@{}: cheapest={}MB, fastest={}MB, "
                "balanced={}MB)".format(self.workload_name, self.zone_id,
                                        self.cheapest, self.fastest,
                                        self.balanced))


class MemoryAdvisor(object):
    """Sweeps the memory ladder against a zone characterization."""

    def __init__(self, cloud, store):
        self.cloud = cloud
        self.store = store

    def recommend(self, workload, zone_id, ladder=None, arch="x86_64",
                  now=None):
        profile = self.store.get(zone_id, now=now)
        provider = self.cloud.region_of_zone(zone_id).provider
        if ladder is None:
            ladder = provider.memory_options_mb
        factors = workload.cpu_factors()
        mix_factor = profile.distribution.expectation(factors.get)
        predictions = {}
        for memory_mb in ladder:
            memory_mb = provider.validate_memory(memory_mb)
            runtime = (workload.base_seconds * mix_factor
                       * memory_speed_factor(memory_mb,
                                             vcpus=workload.vcpus))
            bill = provider.billing.bill(memory_mb, runtime, arch=arch,
                                         requests=1)
            predictions[memory_mb] = {
                "runtime_s": runtime,
                "cost_usd": float(bill.total),
            }
        return MemoryRecommendation(workload.name, zone_id, predictions)
