"""Carbon- and latency-aware routing policies (§3.4's heritage).

The paper extends a carbon-aware router into a performance-aware one.
This module keeps the original objectives available and adds a
multi-objective policy that trades off:

* **cost** — the expected workload runtime factor (the paper's metric);
* **carbon** — normalized grid intensity of the zone's region;
* **latency** — client round-trip time.

Scores are weighted sums over normalized terms; a weight of zero removes
an objective.  ``CarbonAwarePolicy`` is the prior-work special case
(carbon only, bounded latency).
"""

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.core.policies import RoutingDecision, RoutingPolicy


class MultiObjectivePolicy(RoutingPolicy):
    """Route to the zone minimizing a weighted cost/carbon/latency score."""

    name = "multi_objective"

    def __init__(self, cloud, carbon_model, cost_weight=1.0,
                 carbon_weight=0.0, latency_weight=0.0, max_rtt=None,
                 reference_rtt=0.15):
        if min(cost_weight, carbon_weight, latency_weight) < 0:
            raise ConfigurationError("weights must be non-negative")
        if cost_weight + carbon_weight + latency_weight == 0:
            raise ConfigurationError("at least one weight must be positive")
        self.cloud = cloud
        self.carbon_model = carbon_model
        self.cost_weight = float(cost_weight)
        self.carbon_weight = float(carbon_weight)
        self.latency_weight = float(latency_weight)
        self.max_rtt = max_rtt
        self.reference_rtt = float(reference_rtt)

    def _score(self, view, zone_id):
        region = self.cloud.region_of_zone(zone_id)
        score = 0.0
        if self.cost_weight:
            score += self.cost_weight * view.ranker.expected_factor(
                zone_id, view.factors, now=view.now)
        if self.carbon_weight:
            score += (self.carbon_weight
                      * self.carbon_model.normalized_intensity(
                          region.name, view.now, lon=region.geo.lon))
        if self.latency_weight:
            if view.client is None:
                raise ConfigurationError(
                    "latency weighting needs a client location")
            rtt = self.cloud.network.round_trip(view.client, region.geo)
            score += self.latency_weight * rtt / self.reference_rtt
        return score

    def _admissible(self, view, zone_id):
        if zone_id not in view.characterizations:
            return self.cost_weight == 0
        return True

    def decide(self, view):
        best_zone, best_score = None, None
        for zone_id in view.candidate_zones:
            if not self._admissible(view, zone_id):
                continue
            if self.max_rtt is not None and view.client is not None:
                region = self.cloud.region_of_zone(zone_id)
                rtt = self.cloud.network.round_trip(view.client,
                                                    region.geo)
                if rtt > self.max_rtt:
                    continue
            try:
                score = self._score(view, zone_id)
            except CharacterizationError:
                continue
            if best_score is None or score < best_score:
                best_zone, best_score = zone_id, score
        if best_zone is None:
            raise CharacterizationError(
                "no zone satisfies the routing constraints")
        return RoutingDecision(best_zone)


class CarbonAwarePolicy(MultiObjectivePolicy):
    """The prior-work router: lowest carbon intensity within a latency
    bound, ignoring hardware performance."""

    name = "carbon_aware"

    def __init__(self, cloud, carbon_model, max_rtt=0.2):
        super(CarbonAwarePolicy, self).__init__(
            cloud, carbon_model, cost_weight=0.0, carbon_weight=1.0,
            latency_weight=0.0, max_rtt=max_rtt)
