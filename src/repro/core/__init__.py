"""The serverless sky computing core: characterization-driven smart routing.

This package implements the paper's contribution on top of the substrates:

* :mod:`characterization_store` — zone CPU profiles with staleness tracking
  and passive (polling-free) refinement;
* :mod:`retry` — the in-function CPU check + hold + re-issue retry engine,
  with the paper's *retry slow* and *focus fastest* variants;
* :mod:`policies` — routing policies: Baseline, Regional, Retry, and the
  Hybrid region-hopping policy;
* :mod:`optimizer` — expected-runtime ranking of zones for a workload;
* :mod:`router` — the SmartRouter tying policy, mesh, and retry together;
* :mod:`runner` — burst execution with a cost/latency ledger;
* :mod:`study` — multi-day routing studies (the EX-5 evaluation harness);
* :mod:`metrics` — savings summaries versus a baseline.
"""

from repro.core.characterization_store import CharacterizationStore
from repro.core.health import ZoneHealthTracker
from repro.core.resilience import (
    BreakerOpenError,
    CircuitBreaker,
    ExponentialBackoff,
    HedgePolicy,
    ResilienceConfig,
    ResilientOutcome,
)
from repro.core.retry import RetryPolicy, RetryEngine, RetriedInvocation
from repro.core.slo import SLOSelector, StrategyForecast
from repro.core.optimizer import ZoneRanker
from repro.core.policies import (
    RoutingDecision,
    RoutingPolicy,
    BaselinePolicy,
    CheapestCostPolicy,
    RegionalPolicy,
    RetryRoutingPolicy,
    HybridPolicy,
)
from repro.core.controller import SkyController
from repro.core.dispatcher import BurstDispatcher, LatencyDistribution
from repro.core.memory_advisor import MemoryAdvisor, MemoryRecommendation
from repro.core.telemetry import RoutingTelemetry
from repro.core.green import CarbonAwarePolicy, MultiObjectivePolicy
from repro.core.router import SmartRouter, RoutedRequest
from repro.core.runner import (
    BatchedBurstResult,
    BurstResult,
    CPURuntimeProfile,
    WorkloadRunner,
)
from repro.core.study import RoutingStudy, StudyResult
from repro.core.metrics import (
    cost_savings_pct,
    cumulative_savings_pct,
    daily_savings_pct,
    summarize_savings,
)

__all__ = [
    "BreakerOpenError",
    "CharacterizationStore",
    "CircuitBreaker",
    "ExponentialBackoff",
    "HedgePolicy",
    "ResilienceConfig",
    "ResilientOutcome",
    "ZoneHealthTracker",
    "RetryPolicy",
    "RetryEngine",
    "RetriedInvocation",
    "SLOSelector",
    "StrategyForecast",
    "ZoneRanker",
    "RoutingDecision",
    "RoutingPolicy",
    "BaselinePolicy",
    "CheapestCostPolicy",
    "RegionalPolicy",
    "RetryRoutingPolicy",
    "HybridPolicy",
    "SkyController",
    "BurstDispatcher",
    "LatencyDistribution",
    "MemoryAdvisor",
    "MemoryRecommendation",
    "RoutingTelemetry",
    "CarbonAwarePolicy",
    "MultiObjectivePolicy",
    "SmartRouter",
    "RoutedRequest",
    "BatchedBurstResult",
    "BurstResult",
    "CPURuntimeProfile",
    "WorkloadRunner",
    "RoutingStudy",
    "StudyResult",
    "cost_savings_pct",
    "cumulative_savings_pct",
    "daily_savings_pct",
    "summarize_savings",
]
