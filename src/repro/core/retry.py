"""The retry method (paper §3.5, Figure 10).

When a request lands, the dynamic function first checks the FI's CPU
against a **banned list** carried in the payload.  On a banned CPU it
returns immediately (a few ms); the client then *holds* that FI busy for
~150 ms (so the platform cannot route the re-issued request back onto it)
and fires a fresh request.  Two tunings from the paper:

* **retry slow** — ban the two slowest CPUs observed in the zone;
* **focus fastest** — ban everything except the single fastest CPU.

Each retry costs the CPU-check runtime plus the hold — billed — so the win
depends on the zone's CPU mix (the trade-off EX-5 quantifies).
"""

from repro.common.errors import ConfigurationError, InvocationError
from repro.common.units import Money
from repro.cloudsim.cpu import fastest_cpu, slowest_cpus

DEFAULT_HOLD_SECONDS = 0.150
DEFAULT_MAX_RETRIES = 10


class RetryPolicy(object):
    """Which CPUs to refuse, and how hard to try."""

    __slots__ = ("banned_cpus", "max_retries", "hold_seconds")

    def __init__(self, banned_cpus, max_retries=DEFAULT_MAX_RETRIES,
                 hold_seconds=DEFAULT_HOLD_SECONDS):
        self.banned_cpus = frozenset(banned_cpus)
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if hold_seconds < 0:
            raise ConfigurationError("hold_seconds must be >= 0")
        self.max_retries = int(max_retries)
        self.hold_seconds = float(hold_seconds)

    # -- the paper's two variants ------------------------------------------------
    @classmethod
    def retry_slow(cls, cpu_keys, factors, n_slowest=2, **kwargs):
        """Ban the ``n_slowest`` CPUs among ``cpu_keys``.

        ``factors`` maps cpu_key -> relative runtime (higher = slower), so
        "slowest" means the largest factors.
        """
        cpu_keys = list(cpu_keys)
        if len(cpu_keys) <= n_slowest:
            raise ConfigurationError(
                "cannot ban {} of {} CPUs".format(n_slowest, len(cpu_keys)))
        banned = slowest_cpus(cpu_keys, n_slowest,
                              speed_of=lambda key: -factors[key])
        return cls(banned, **kwargs)

    @classmethod
    def focus_fastest(cls, cpu_keys, factors, **kwargs):
        """Ban every CPU except the fastest (smallest runtime factor)."""
        cpu_keys = list(cpu_keys)
        if not cpu_keys:
            raise ConfigurationError("no CPUs to choose from")
        keep = fastest_cpu(cpu_keys, speed_of=lambda key: -factors[key])
        return cls([key for key in cpu_keys if key != keep], **kwargs)

    def is_banned(self, cpu_key):
        return cpu_key in self.banned_cpus

    def __repr__(self):
        return "RetryPolicy(banned={}, max_retries={}, hold={}ms)".format(
            sorted(self.banned_cpus), self.max_retries,
            int(self.hold_seconds * 1000))


class RetriedInvocation(object):
    """The outcome of an invocation run under a retry policy.

    When the platform fails mid-loop (saturation, throttle, injected
    fault) the engine returns a *failed* outcome — ``executed`` False,
    ``error`` set, ``final`` None — that still accounts every completed
    attempt and every dollar of hold cost instead of losing them in a
    raised exception.
    """

    __slots__ = ("final", "attempts", "hold_cost", "executed", "error")

    def __init__(self, final, attempts, hold_cost, executed, error=None):
        self.final = final
        self.attempts = list(attempts)
        self.hold_cost = hold_cost
        self.executed = executed
        self.error = error

    @property
    def failed(self):
        return self.error is not None

    @property
    def retries(self):
        return max(0, len(self.attempts) - 1)

    @property
    def cpu_key(self):
        return self.final.cpu_key if self.final is not None else None

    @property
    def total_cost(self):
        return sum((inv.bill.total for inv in self.attempts),
                   Money(0)) + self.hold_cost

    @property
    def total_latency(self):
        """Client-observed latency: every attempt's round trip plus holds.

        The client only re-issues after the declined response returns, and
        holds overlap the re-issue, so holds bound the inter-attempt gap.
        """
        latency = sum(inv.latency_s for inv in self.attempts)
        return latency

    @property
    def billed_runtime(self):
        return sum(inv.runtime_s for inv in self.attempts)

    def __repr__(self):
        if self.failed:
            return ("RetriedInvocation(FAILED {}, attempts={}, "
                    "hold_cost={})".format(self.error.reason,
                                           len(self.attempts),
                                           self.hold_cost))
        return "RetriedInvocation(cpu={}, retries={}, cost={})".format(
            self.cpu_key, self.retries, self.total_cost)


class RetryEngine(object):
    """Drives invoke → CPU check → hold → re-issue loops."""

    def __init__(self, cloud):
        self.cloud = cloud

    def invoke(self, deployment, policy, payload=None, client=None,
               bill_category="invocation", tracer=None, parent=None):
        """Run one request under ``policy``; returns RetriedInvocation.

        If the retry budget is exhausted the final attempt executes on
        whatever CPU it got (the paper's behaviour: retries trade cost for
        placement quality but never drop work).

        If the platform errors mid-loop (saturation, throttle, transient
        fault) the engine returns a **failed** :class:`RetriedInvocation`
        — ``error`` set, ``executed`` False — preserving the attempts and
        hold cost already spent rather than losing them in the raise.

        ``tracer``/``parent`` (both optional) attach a ``placement`` child
        span per attempt and a ``retry-hold`` span per hold, timestamped
        with modeled latencies on the sim clock.
        """
        if payload is None and hasattr(deployment.handler,
                                       "default_payload"):
            payload = deployment.handler.default_payload
        bus = self.cloud.bus
        attempts = []
        hold_cost = Money(0)
        elapsed = 0.0  # modeled client-side time since the first attempt
        for attempt in range(policy.max_retries + 1):
            last_chance = attempt == policy.max_retries
            banned = () if last_chance else sorted(policy.banned_cpus)
            attempt_payload = payload
            if payload is not None and hasattr(payload, "with_banned_cpus"):
                attempt_payload = payload.with_banned_cpus(banned)
            start = self.cloud.clock.now + elapsed
            try:
                invocation = self.cloud.invoke(
                    deployment, payload=attempt_payload,
                    force_new=attempt > 0, client=client,
                    bill_category=bill_category)
            except InvocationError as error:
                if bus.enabled:
                    bus.emit("retry.abort", self.cloud.clock.now,
                             zone=deployment.zone_id, attempt=attempt,
                             reason=error.reason)
                return RetriedInvocation(None, attempts, hold_cost,
                                         executed=False, error=error)
            attempts.append(invocation)
            elapsed += invocation.latency_s
            accepted = (last_chance
                        or invocation.cpu_key not in policy.banned_cpus)
            if tracer is not None and parent is not None:
                span = tracer.start_span("placement", parent, start,
                                         attempt=attempt,
                                         cpu=invocation.cpu_key,
                                         banned=not accepted)
                span.finish(start + invocation.latency_s)
            if accepted:
                return RetriedInvocation(invocation, attempts, hold_cost,
                                         executed=True)
            if bus.enabled:
                bus.emit("retry.attempt", self.cloud.clock.now,
                         zone=deployment.zone_id, cpu=invocation.cpu_key,
                         attempt=attempt)
            # Banned CPU: hold the FI so the re-issue lands elsewhere.
            if policy.hold_seconds > 0:
                bill = self.cloud.hold(deployment, invocation,
                                       policy.hold_seconds,
                                       bill_category="retry-hold")
                hold_cost = hold_cost + bill.total
                if tracer is not None and parent is not None:
                    hold_start = self.cloud.clock.now + elapsed
                    tracer.start_span(
                        "retry-hold", parent, hold_start,
                        cpu=invocation.cpu_key,
                        cost_usd=float(bill.total)).finish(
                            hold_start + policy.hold_seconds)
                if bus.enabled:
                    bus.emit("retry.hold", self.cloud.clock.now,
                             zone=deployment.zone_id,
                             cpu=invocation.cpu_key,
                             hold_s=policy.hold_seconds,
                             cost_usd=float(bill.total))
        raise AssertionError("unreachable: loop always returns")
