"""Savings metrics: how the paper reports EX-5.

All savings are expressed as a percentage of the baseline's cost:
``100 * (baseline - strategy) / baseline``.  The paper reports *cumulative*
savings over the two-week horizon, the *maximum single-day* savings, and
the all-function mean ± standard deviation.
"""

import math

from repro.common.errors import ConfigurationError


def cost_savings_pct(baseline_cost, strategy_cost):
    """Percent saved versus the baseline (negative = strategy cost more)."""
    baseline = float(baseline_cost)
    if baseline <= 0:
        raise ConfigurationError("baseline cost must be positive")
    return 100.0 * (baseline - float(strategy_cost)) / baseline


def daily_savings_pct(baseline_daily, strategy_daily):
    """Per-day savings; the two series must be the same length."""
    if len(baseline_daily) != len(strategy_daily):
        raise ConfigurationError("daily cost series lengths differ")
    return [cost_savings_pct(base, cost)
            for base, cost in zip(baseline_daily, strategy_daily)]


def cumulative_savings_pct(baseline_daily, strategy_daily):
    """Savings of the summed series (the paper's headline number)."""
    return cost_savings_pct(sum(float(c) for c in baseline_daily),
                            sum(float(c) for c in strategy_daily))


def max_daily_savings_pct(baseline_daily, strategy_daily):
    return max(daily_savings_pct(baseline_daily, strategy_daily))


def summarize_savings(daily_costs, baseline="baseline"):
    """Per-strategy savings summary from ``{strategy: [daily cost]}``.

    Returns ``{strategy: {"cumulative_pct", "max_daily_pct",
    "mean_daily_pct"}}`` for every non-baseline strategy.
    """
    if baseline not in daily_costs:
        raise ConfigurationError(
            "no baseline series named {!r}".format(baseline))
    base = daily_costs[baseline]
    summary = {}
    for name, series in daily_costs.items():
        if name == baseline:
            continue
        per_day = daily_savings_pct(base, series)
        summary[name] = {
            "cumulative_pct": cumulative_savings_pct(base, series),
            "max_daily_pct": max(per_day),
            "mean_daily_pct": sum(per_day) / len(per_day),
        }
    return summary


def mean_std(values):
    """Mean and (population) standard deviation of a list of numbers."""
    values = [float(v) for v in values]
    if not values:
        raise ConfigurationError("no values given")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)
