"""Multi-day routing studies: the EX-5 evaluation harness.

A :class:`RoutingStudy` replays the paper's two-week protocol for one
workload:

1. every "day" (22-hour cadence, like EX-4), refresh each candidate zone's
   characterization with a short sampling campaign;
2. run one burst of invocations per routing strategy (baseline, retry
   variants, regional, hybrid) against the mesh;
3. record per-day costs, chosen zones, and retry counts.

The result feeds Figures 10 and 11: cumulative and maximum-daily savings of
each strategy versus the fixed-zone baseline, plus the sampling spend
(the paper's $2.80 total).
"""

from repro.common.errors import ConfigurationError
from repro.common.units import HOURS, MINUTES, Money
from repro.core.metrics import summarize_savings
from repro.core.router import SmartRouter
from repro.core.runner import WorkloadRunner
from repro.sampling.campaign import SamplingCampaign


class StudyResult(object):
    """Everything a routing study measured."""

    def __init__(self, workload_name, days, policy_names):
        self.workload_name = workload_name
        self.days = days
        self.policy_names = list(policy_names)
        self.daily_costs = {name: [] for name in policy_names}
        self.daily_retries = {name: [] for name in policy_names}
        self.zones_chosen = {name: [] for name in policy_names}
        self.sampling_cost = Money(0)

    def record_burst(self, policy_name, burst):
        self.daily_costs[policy_name].append(float(burst.total_cost))
        self.daily_retries[policy_name].append(burst.total_retries)
        self.zones_chosen[policy_name].append(burst.zone_id)

    def cumulative_cost(self, policy_name):
        return sum(self.daily_costs[policy_name])

    def savings_summary(self, baseline="baseline"):
        """Savings of every strategy vs. the baseline (see metrics)."""
        return summarize_savings(self.daily_costs, baseline=baseline)

    def retry_fraction(self, policy_name, burst_size):
        total = sum(self.daily_retries[policy_name])
        return total / float(burst_size * len(
            self.daily_retries[policy_name]))

    def __repr__(self):
        return "StudyResult({!r}, days={}, policies={})".format(
            self.workload_name, self.days, self.policy_names)


class RoutingStudy(object):
    """Runs one workload under several policies over a multi-day horizon."""

    def __init__(self, cloud, mesh, store, workload, candidate_zones,
                 sampling_endpoints, days=14, cadence_hours=22.0,
                 burst_size=1000, polls_per_day=6, poll_requests=1000,
                 memory_mb=2048, arch="x86_64", function_name="dynamic",
                 client=None):
        """``sampling_endpoints`` maps zone_id -> list of sampling
        deployments (each zone needs at least ``polls_per_day``)."""
        if days < 1:
            raise ConfigurationError("study needs at least one day")
        for zone_id in candidate_zones:
            if zone_id not in sampling_endpoints:
                raise ConfigurationError(
                    "no sampling endpoints for zone {!r}".format(zone_id))
        self.cloud = cloud
        self.mesh = mesh
        self.store = store
        self.workload = workload
        self.candidate_zones = list(candidate_zones)
        self.sampling_endpoints = dict(sampling_endpoints)
        self.days = int(days)
        self.cadence_hours = float(cadence_hours)
        self.burst_size = int(burst_size)
        self.polls_per_day = int(polls_per_day)
        self.poll_requests = int(poll_requests)
        self.memory_mb = memory_mb
        self.arch = arch
        self.function_name = function_name
        self.client = client
        self._runner = WorkloadRunner(cloud)

    @classmethod
    def from_names(cls, cloud, workload_name, candidate_zones,
                   sampling_count=10, account_id="study", memory_mb=2048,
                   **kwargs):
        """Build a study from primitive names on a fresh ``cloud``.

        Creates the account, the per-zone sampling endpoint sets, and the
        dynamic-function mesh the CLI's ``study`` subcommand always built
        by hand — and which the parallel engine's :class:`StudyTask` needs
        to rebuild *inside* a worker process, where only names and numbers
        arrive.  ``kwargs`` pass through to the constructor (``days``,
        ``burst_size``, ``polls_per_day``, ...).
        """
        from repro.core.characterization_store import CharacterizationStore
        from repro.dynfunc import UniversalDynamicFunctionHandler
        from repro.skymesh import SkyMesh
        from repro.workloads import resolve_runtime_model, workload_by_name

        candidate_zones = list(candidate_zones)
        if not candidate_zones:
            raise ConfigurationError("study needs candidate zones")
        provider = cloud.region_of_zone(candidate_zones[0]).provider.name
        account = cloud.create_account(account_id, provider)
        mesh = SkyMesh(cloud)
        endpoints = {}
        for zone_id in candidate_zones:
            endpoints[zone_id] = mesh.deploy_sampling_endpoints(
                account, zone_id, count=sampling_count)
            mesh.register(cloud.deploy(
                account, zone_id, "dynamic", memory_mb,
                handler=UniversalDynamicFunctionHandler(
                    resolve_runtime_model)))
        return cls(cloud, mesh, CharacterizationStore(),
                   workload_by_name(workload_name), candidate_zones,
                   endpoints, memory_mb=memory_mb, **kwargs)

    def _refresh_characterizations(self, result):
        for zone_id in self.candidate_zones:
            campaign = SamplingCampaign(
                self.cloud, self.sampling_endpoints[zone_id],
                n_requests=self.poll_requests,
                max_polls=self.polls_per_day, inter_poll_gap=1.0)
            outcome = campaign.run()
            self.store.put(outcome.ground_truth())
            result.sampling_cost = result.sampling_cost + outcome.total_cost
            self.cloud.clock.advance(30.0)
        # Let the sampling FIs' keep-alives lapse before the workload
        # bursts, so characterization traffic does not crowd them out.
        self.cloud.clock.advance(10 * MINUTES)

    def _make_router(self, policy):
        return SmartRouter(
            self.cloud, self.mesh, self.store, policy, self.workload,
            self.candidate_zones, memory_mb=self.memory_mb, arch=self.arch,
            function_name=self.function_name, client=self.client)

    def run(self, policies):
        """Execute the study; ``policies`` is a list of RoutingPolicy.

        Policy names must be unique (they key the result series).
        """
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "duplicate policy names: {}".format(names))
        result = StudyResult(self.workload.name, self.days, names)
        for day in range(self.days):
            day_start = self.cloud.clock.now
            self._refresh_characterizations(result)
            for policy in policies:
                router = self._make_router(policy)
                decision = router.decide()
                deployment = self.mesh.endpoint(
                    decision.zone_id, self.memory_mb, self.arch,
                    self.function_name)
                burst = self._runner.run_batched_burst(
                    deployment, self.workload, self.burst_size,
                    retry_policy=decision.retry_policy,
                    policy_name=policy.name)
                result.record_burst(policy.name, burst)
                # Space strategies out past the keep-alive window so bursts
                # do not inherit each other's warm FIs.
                self.cloud.clock.advance(10 * MINUTES)
            if day != self.days - 1:
                self.cloud.clock.advance_to(
                    day_start + self.cadence_hours * HOURS)
        return result
