"""Burst execution with a cost/latency ledger (the EX-5 measurement tool).

Two paths:

* :meth:`WorkloadRunner.run_burst` — drives a :class:`SmartRouter` for a
  burst of requests and aggregates costs, latencies, retries, and the CPU
  histogram;
* :meth:`WorkloadRunner.profile_workload` — the EX-5 baseline profiling
  step: run a workload many times in one fixed zone and report per-CPU
  runtime statistics (the data behind Figure 9).  A vectorized fast path
  handles the paper's 10,000-repetition scale.
"""

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import Money


class BurstResult(object):
    """Aggregated outcome of one burst under one routing strategy."""

    def __init__(self, workload_name, policy_name, requests):
        if not requests:
            raise ConfigurationError("burst produced no requests")
        self.workload_name = workload_name
        self.policy_name = policy_name
        self.n = len(requests)
        self.total_cost = sum((r.cost for r in requests), Money(0))
        self.total_billed_runtime = sum(r.billed_runtime_s
                                        for r in requests)
        self.total_retries = sum(r.retries for r in requests)
        self.mean_latency = sum(r.latency_s for r in requests) / self.n
        self.zones = sorted({r.zone_id for r in requests})
        self.cpu_counts = {}
        for request in requests:
            self.cpu_counts[request.cpu_key] = self.cpu_counts.get(
                request.cpu_key, 0) + 1

    @property
    def cost_per_invocation(self):
        return self.total_cost / self.n

    @property
    def retry_fraction(self):
        """Fraction of requests that needed at least one retry."""
        return self.total_retries / float(self.n)

    def __repr__(self):
        return ("BurstResult({}/{}: n={}, cost={}, retries={}, "
                "zones={})".format(self.workload_name, self.policy_name,
                                   self.n, self.total_cost,
                                   self.total_retries, self.zones))


class CPURuntimeProfile(object):
    """Per-CPU runtime statistics for one workload in one zone."""

    def __init__(self, workload_name, zone_id, samples):
        """``samples`` maps cpu_key -> list/array of runtimes (seconds)."""
        self.workload_name = workload_name
        self.zone_id = zone_id
        self._samples = {cpu: np.asarray(list(runs), dtype=float)
                         for cpu, runs in samples.items() if len(runs)}

    def cpu_keys(self):
        return sorted(self._samples)

    def count(self, cpu_key):
        return int(self._samples[cpu_key].size)

    def mean_runtime(self, cpu_key):
        return float(self._samples[cpu_key].mean())

    def normalized_to(self, baseline_cpu):
        """Mean runtime per CPU normalized to ``baseline_cpu`` (Figure 9)."""
        if baseline_cpu not in self._samples:
            raise ConfigurationError(
                "baseline CPU {!r} was never observed".format(baseline_cpu))
        base = self.mean_runtime(baseline_cpu)
        return {cpu: self.mean_runtime(cpu) / base
                for cpu in self.cpu_keys()}

    def overall_mean(self):
        total = np.concatenate(list(self._samples.values()))
        return float(total.mean())

    def __repr__(self):
        return "CPURuntimeProfile({}@{}, cpus={})".format(
            self.workload_name, self.zone_id, self.cpu_keys())


class WorkloadRunner(object):
    """Executes bursts and profiling runs against the simulated sky."""

    def __init__(self, cloud):
        self.cloud = cloud

    # -- routed bursts -----------------------------------------------------------
    def run_burst(self, router, n_requests, decide_once=True):
        requests = router.route_burst(n_requests, decide_once=decide_once)
        return BurstResult(router.workload.name, router.policy.name,
                           requests)

    # -- baseline profiling ---------------------------------------------------------
    def profile_workload(self, deployment, workload, repetitions,
                         batch_size=1000):
        """Run ``workload`` ``repetitions`` times in ``deployment``'s zone.

        Uses the batched placement path: each batch lands on FIs sampled
        from the zone's live CPU mix, and per-request runtimes are drawn
        from the workload's runtime model — the vectorized equivalent of
        10,000 sequential dynamic-function invocations.
        """
        if repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        from repro.workloads.memory import memory_speed_factor
        model = workload.runtime_model()
        factors = workload.cpu_factors()
        memory_scale = memory_speed_factor(deployment.memory_mb,
                                           vcpus=workload.vcpus)
        samples = {}
        remaining = repetitions
        rng = self.cloud.rng
        mean_duration = workload.base_seconds * memory_scale
        while remaining > 0:
            n = min(batch_size, remaining)
            result, _ = self.cloud.place_batch(
                deployment, n, mean_duration, bill_category="profiling")
            if result.served == 0:
                raise ConfigurationError(
                    "zone {} refused the profiling batch".format(
                        deployment.zone_id))
            for cpu_key, count in result.request_cpu_counts.items():
                noise = np.exp(rng.normal(0.0, model.noise_sigma,
                                          size=count))
                runtimes = (workload.base_seconds * memory_scale
                            * factors[cpu_key] * noise)
                samples.setdefault(cpu_key, []).extend(runtimes.tolist())
            remaining -= result.served
            # Space batches out so profiling does not saturate the zone.
            self.cloud.clock.advance(
                deployment.provider.keepalive + mean_duration + 1.0)
        return CPURuntimeProfile(workload.name, deployment.zone_id,
                                 samples)

    def profile_many(self, deployment, workloads, repetitions,
                     batch_size=1000):
        """Profile several workloads back-to-back in one zone."""
        return {workload.name: self.profile_workload(deployment, workload,
                                                     repetitions,
                                                     batch_size=batch_size)
                for workload in workloads}

    # -- batched bursts (the EX-5 scale path) ------------------------------------
    def run_batched_burst(self, deployment, workload, n_requests,
                          retry_policy=None, policy_name="baseline",
                          bill_category="burst"):
        """Execute a burst with batch semantics and exact per-CPU billing.

        This is the vectorized equivalent of ``n_requests`` concurrent
        dynamic-function invocations under an optional retry policy: each
        *round* places the still-unsatisfied requests as one batch; requests
        landing on banned CPUs are billed the CPU check plus the 150 ms
        hold and re-issued in the next round; the final round (retry budget
        exhausted) runs wherever it lands.  Returns a
        :class:`BatchedBurstResult`.
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        from repro.dynfunc.handler import CPU_CHECK_SECONDS
        from repro.workloads.memory import memory_speed_factor
        billing = deployment.provider.billing
        memory, arch = deployment.memory_mb, deployment.arch
        model = workload.runtime_model()
        factors = workload.cpu_factors()
        memory_scale = memory_speed_factor(memory, vcpus=workload.vcpus)
        base_seconds = workload.base_seconds * memory_scale
        rng = self.cloud.rng

        banned = frozenset() if retry_policy is None else (
            retry_policy.banned_cpus)
        max_rounds = 1 if retry_policy is None else (
            retry_policy.max_retries + 1)
        hold_s = 0.0 if retry_policy is None else retry_policy.hold_seconds

        from repro.cloudsim.billing import InvocationBill
        ledger_bill = InvocationBill.zero()
        total_cost = Money(0)
        total_billed_runtime = 0.0
        total_retries = 0
        failed = 0
        cpu_counts = {}
        pending = n_requests
        for round_index in range(max_rounds):
            if pending <= 0:
                break
            last_round = round_index == max_rounds - 1
            active_ban = frozenset() if last_round else banned
            result, _ = self.cloud.place_batch(
                deployment, pending, base_seconds,
                bill_category=bill_category, charge=False)
            failed += result.failed
            carried = 0
            for cpu_key, count in sorted(result.request_cpu_counts.items()):
                if cpu_key in active_ban:
                    # Declined: CPU check + hold, billed, then re-issued.
                    billed_s = count * (CPU_CHECK_SECONDS + hold_s)
                    bill = _exact_bill(billing, memory, arch, billed_s,
                                       count)
                    ledger_bill = ledger_bill + bill
                    total_cost = total_cost + bill.total
                    total_billed_runtime += billed_s
                    total_retries += count
                    carried += count
                else:
                    noise = np.exp(rng.normal(0.0, model.noise_sigma,
                                              size=count))
                    runtimes = base_seconds * factors[cpu_key] * noise
                    billed_s = float(runtimes.sum())
                    bill = _exact_bill(billing, memory, arch, billed_s,
                                       count)
                    ledger_bill = ledger_bill + bill
                    total_cost = total_cost + bill.total
                    total_billed_runtime += billed_s
                    cpu_counts[cpu_key] = cpu_counts.get(cpu_key,
                                                         0) + count
            pending = carried
        deployment.account.record_bill(ledger_bill, category=bill_category)
        executed = sum(cpu_counts.values())
        return BatchedBurstResult(
            workload_name=workload.name,
            policy_name=policy_name,
            zone_id=deployment.zone_id,
            n=n_requests,
            executed=executed,
            failed=failed,
            total_cost=total_cost,
            total_billed_runtime=total_billed_runtime,
            total_retries=total_retries,
            cpu_counts=cpu_counts,
        )


class BatchedBurstResult(object):
    """Aggregate outcome of one batched burst."""

    __slots__ = ("workload_name", "policy_name", "zone_id", "n", "executed",
                 "failed", "total_cost", "total_billed_runtime",
                 "total_retries", "cpu_counts")

    def __init__(self, workload_name, policy_name, zone_id, n, executed,
                 failed, total_cost, total_billed_runtime, total_retries,
                 cpu_counts):
        self.workload_name = workload_name
        self.policy_name = policy_name
        self.zone_id = zone_id
        self.n = n
        self.executed = executed
        self.failed = failed
        self.total_cost = total_cost
        self.total_billed_runtime = total_billed_runtime
        self.total_retries = total_retries
        self.cpu_counts = dict(cpu_counts)

    @property
    def cost_per_invocation(self):
        return self.total_cost / max(1, self.executed)

    @property
    def retry_fraction(self):
        return self.total_retries / float(self.n)

    def __repr__(self):
        return ("BatchedBurstResult({}/{} @ {}: n={}, cost={}, "
                "retries={})".format(self.workload_name, self.policy_name,
                                     self.zone_id, self.n, self.total_cost,
                                     self.total_retries))


def _exact_bill(billing, memory_mb, arch, total_seconds, requests):
    """Bill ``requests`` invocations totalling ``total_seconds`` runtime."""
    from repro.cloudsim.billing import InvocationBill
    from repro.common.units import gb_seconds
    compute = Money(billing.rate_for(arch)
                    * gb_seconds(memory_mb, total_seconds))
    request_fee = Money(billing.per_request * requests)
    return InvocationBill(compute, request_fee, total_seconds, requests)
