"""SLO-aware strategy selection (the §4.6 trade-off, operationalized).

"This added latency makes the approach particularly well suited for
asynchronous background tasks ... In cases where only a small number of
parallel invocations are issued, the opportunity ... is reduced."

Given a latency SLO (a percentile bound) and candidate routing
strategies, :class:`SLOSelector` predicts each strategy's latency
distribution and cost from the zone characterization, discards strategies
that would violate the SLO, and returns the cheapest survivor — making
the paper's "use retries for batch, not for interactive" guidance a
mechanical decision.
"""

import math

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.core.retry import RetryPolicy
from repro.dynfunc.handler import CPU_CHECK_SECONDS


def default_slo_s(workload, multiplier=3.0, floor_s=0.25):
    """A serving-plane default latency SLO for ``workload``.

    A request is "within SLO" when it finishes inside a small multiple of
    the workload's calibrated baseline runtime; the floor keeps very short
    functions from declaring every cold start a violation.  The serving
    gateway uses this when the operator does not pass an explicit bound.
    """
    if multiplier <= 0:
        raise ConfigurationError("multiplier must be positive")
    return max(float(multiplier) * float(workload.base_seconds),
               float(floor_s))


class StrategyForecast(object):
    """Predicted cost and latency for one (zone, retry) strategy."""

    __slots__ = ("name", "zone_id", "retry_policy", "expected_cost_usd",
                 "expected_latency_s", "latency_p95_s", "expected_retries")

    def __init__(self, name, zone_id, retry_policy, expected_cost_usd,
                 expected_latency_s, latency_p95_s, expected_retries):
        self.name = name
        self.zone_id = zone_id
        self.retry_policy = retry_policy
        self.expected_cost_usd = expected_cost_usd
        self.expected_latency_s = expected_latency_s
        self.latency_p95_s = latency_p95_s
        self.expected_retries = expected_retries

    def meets(self, latency_slo_s):
        return self.latency_p95_s <= latency_slo_s

    def __repr__(self):
        return ("StrategyForecast({}, ${:.6f}, p95={:.2f}s)".format(
            self.name, self.expected_cost_usd, self.latency_p95_s))


class SLOSelector(object):
    """Pick the cheapest strategy whose predicted p95 fits the SLO."""

    def __init__(self, cloud, store, rtt_s=0.02):
        self.cloud = cloud
        self.store = store
        self.rtt_s = float(rtt_s)

    # -- forecasting -----------------------------------------------------------
    def forecast(self, workload, zone_id, retry_policy=None, name=None,
                 memory_mb=2048, arch="x86_64", now=None):
        """Predict one strategy's cost and latency analytically."""
        profile = self.store.get(zone_id, now=now)
        provider = self.cloud.region_of_zone(zone_id).provider
        factors = workload.cpu_factors()
        shares = profile.shares()

        if retry_policy is None:
            allowed = dict(shares)
            expected_retries = 0.0
            hold_s = 0.0
        else:
            allowed = {cpu: share for cpu, share in shares.items()
                       if cpu not in retry_policy.banned_cpus}
            allowed_mass = sum(allowed.values())
            if allowed_mass <= 0:
                raise CharacterizationError(
                    "strategy bans every CPU in {}".format(zone_id))
            expected_retries = min((1.0 - allowed_mass) / allowed_mass,
                                   retry_policy.max_retries)
            hold_s = retry_policy.hold_seconds
        allowed_mass = sum(allowed.values())
        mean_factor = sum(factors[cpu] * share
                          for cpu, share in allowed.items()) / allowed_mass

        runtime = workload.base_seconds * mean_factor
        retry_overhead_s = expected_retries * (CPU_CHECK_SECONDS + hold_s)
        billed_s = runtime + retry_overhead_s
        # billed_s is already the *total* compute time across attempts, so
        # bill it once and add the per-request fee per attempt.
        from repro.common.units import gb_seconds
        expected_cost = (provider.billing.rate_for(arch)
                         * gb_seconds(memory_mb, billed_s)
                         + provider.billing.per_request
                         * (1 + expected_retries))
        mean_latency = (runtime + (1 + expected_retries) * self.rtt_s
                        + retry_overhead_s)

        # p95: runtime spread over the allowed CPUs plus the retry-count
        # tail (geometric: the 95th percentile of retries).
        max_factor = max(factors[cpu] for cpu in allowed)
        runtime_p95 = workload.base_seconds * max_factor
        if retry_policy is None or allowed_mass >= 1.0:
            retries_p95 = 0.0
        else:
            miss = 1.0 - allowed_mass
            retries_p95 = min(
                math.ceil(math.log(0.05) / math.log(miss)) if miss > 0
                else 0.0,
                retry_policy.max_retries)
        latency_p95 = (runtime_p95
                       + (1 + retries_p95) * self.rtt_s
                       + retries_p95 * (CPU_CHECK_SECONDS + hold_s))

        return StrategyForecast(
            name=name or ("baseline" if retry_policy is None else "retry"),
            zone_id=zone_id,
            retry_policy=retry_policy,
            expected_cost_usd=float(expected_cost),
            expected_latency_s=mean_latency,
            latency_p95_s=latency_p95,
            expected_retries=expected_retries,
        )

    def candidate_forecasts(self, workload, zone_ids, now=None):
        """The standard strategy menu over the candidate zones."""
        forecasts = []
        factors = workload.cpu_factors()
        for zone_id in zone_ids:
            profile = self.store.try_get(zone_id, now=now)
            if profile is None:
                continue
            cpus = profile.cpu_keys()
            forecasts.append(self.forecast(
                workload, zone_id, None,
                name="direct@{}".format(zone_id), now=now))
            if len(cpus) >= 2:
                for variant, retry in (
                        ("retry_slow", RetryPolicy.retry_slow(
                            cpus, factors,
                            n_slowest=min(2, len(cpus) - 1))),
                        ("focus_fastest", RetryPolicy.focus_fastest(
                            cpus, factors))):
                    forecasts.append(self.forecast(
                        workload, zone_id, retry,
                        name="{}@{}".format(variant, zone_id), now=now))
        if not forecasts:
            raise CharacterizationError(
                "no characterized zones among {}".format(list(zone_ids)))
        return forecasts

    # -- selection ----------------------------------------------------------------
    def select(self, workload, zone_ids, latency_slo_s, now=None):
        """Cheapest strategy meeting the p95 SLO.

        Raises :class:`ConfigurationError` when nothing fits — the caller
        must relax the SLO or accept the fastest strategy explicitly.
        """
        forecasts = self.candidate_forecasts(workload, zone_ids, now=now)
        feasible = [f for f in forecasts if f.meets(latency_slo_s)]
        if not feasible:
            fastest = min(forecasts, key=lambda f: f.latency_p95_s)
            raise ConfigurationError(
                "no strategy meets a {:.2f}s p95 SLO; the fastest "
                "available is {} at {:.2f}s".format(
                    latency_slo_s, fastest.name, fastest.latency_p95_s))
        return min(feasible, key=lambda f: (f.expected_cost_usd, f.name))
