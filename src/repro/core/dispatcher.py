"""Client-side burst dispatch with latency accounting (§4.6 trade-off).

The retry method trades latency for cost: every declined placement adds a
round trip plus the 150 ms hold before the re-issue.  The paper argues the
approach suits asynchronous batch workloads; this module quantifies it — a
:class:`BurstDispatcher` replays a burst with bounded client concurrency
and produces the full client-observed latency distribution alongside the
cost ledger, so users can see both sides of the trade.
"""

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.dynfunc.handler import CPU_CHECK_SECONDS


class LatencyDistribution(object):
    """Summary statistics over per-request client latencies."""

    def __init__(self, latencies_s):
        if len(latencies_s) == 0:
            raise ConfigurationError("no latencies recorded")
        self._values = np.sort(np.asarray(latencies_s, dtype=float))

    def __len__(self):
        return int(self._values.size)

    @property
    def mean(self):
        return float(self._values.mean())

    def percentile(self, pct):
        return float(np.percentile(self._values, pct))

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p95(self):
        return self.percentile(95)

    @property
    def p99(self):
        return self.percentile(99)

    @property
    def max(self):
        return float(self._values[-1])

    def summary(self):
        return {
            "mean_s": round(self.mean, 4),
            "p50_s": round(self.p50, 4),
            "p95_s": round(self.p95, 4),
            "p99_s": round(self.p99, 4),
            "max_s": round(self.max, 4),
        }

    def __repr__(self):
        return "LatencyDistribution(n={}, p50={:.3f}s, p95={:.3f}s)".format(
            len(self), self.p50, self.p95)


class DispatchResult(object):
    """Cost plus client-observed latency for one dispatched burst."""

    __slots__ = ("n", "total_cost", "latency", "retries", "makespan_s",
                 "cpu_counts")

    def __init__(self, n, total_cost, latency, retries, makespan_s,
                 cpu_counts):
        self.n = n
        self.total_cost = total_cost
        self.latency = latency
        self.retries = retries
        self.makespan_s = makespan_s
        self.cpu_counts = cpu_counts

    def __repr__(self):
        return ("DispatchResult(n={}, cost={}, p95={:.2f}s, "
                "makespan={:.1f}s)".format(self.n, self.total_cost,
                                           self.latency.p95,
                                           self.makespan_s))


class BurstDispatcher(object):
    """Dispatches a burst with bounded client concurrency.

    The dispatcher mirrors how the paper's clients work: up to
    ``concurrency`` requests in flight; a declined (banned-CPU) response
    triggers an immediate re-issue after the hold window.  Latency per
    logical request = network RTT per attempt + check/hold time per
    declined round + the final workload runtime.
    """

    def __init__(self, cloud, concurrency=100):
        if concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        self.cloud = cloud
        self.concurrency = int(concurrency)

    def dispatch(self, deployment, workload, n_requests, retry_policy=None,
                 client=None, rtt_s=None):
        """Run ``n_requests`` with analytic concurrency/latency modelling.

        Placement and billing reuse the batched fast path semantics; the
        client model adds queueing (bounded concurrency) and per-attempt
        round trips.  Returns a :class:`DispatchResult`.
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        if rtt_s is None:
            if client is not None:
                region = self.cloud.region_of_zone(deployment.zone_id)
                rtt_s = self.cloud.network.round_trip(client, region.geo)
            else:
                rtt_s = 0.02
        from repro.workloads.memory import memory_speed_factor
        model = workload.runtime_model()
        factors = workload.cpu_factors()
        base_seconds = workload.base_seconds * memory_speed_factor(
            deployment.memory_mb, vcpus=workload.vcpus)
        rng = self.cloud.rng
        billing = deployment.provider.billing
        banned = frozenset() if retry_policy is None else (
            retry_policy.banned_cpus)
        hold_s = 0.0 if retry_policy is None else retry_policy.hold_seconds
        max_rounds = 1 if retry_policy is None else (
            retry_policy.max_retries + 1)

        latencies = []
        total_cost = Money(0)
        retries = 0
        cpu_counts = {}
        pending = [0.0] * n_requests  # accumulated latency per request
        round_index = 0
        while pending and round_index < max_rounds:
            last_round = round_index == max_rounds - 1
            active_ban = frozenset() if last_round else banned
            result, _ = self.cloud.place_batch(
                deployment, len(pending), base_seconds,
                bill_category="dispatch", charge=False)
            # Apportion the attempt outcomes over the pending requests.
            assignments = []
            for cpu_key in sorted(result.request_cpu_counts):
                assignments.extend(
                    [cpu_key] * result.request_cpu_counts[cpu_key])
            # Unserved requests retry in the next round unchanged.
            unserved = len(pending) - len(assignments)
            next_pending = [lat + rtt_s for lat in pending[:unserved]]
            served_latencies = pending[unserved:]
            for accumulated, cpu_key in zip(served_latencies, assignments):
                if cpu_key in active_ban:
                    billed = CPU_CHECK_SECONDS + hold_s
                    total_cost = total_cost + billing.bill(
                        deployment.memory_mb, billed,
                        deployment.arch).total
                    retries += 1
                    next_pending.append(accumulated + rtt_s + billed)
                else:
                    noise = float(np.exp(rng.normal(0.0,
                                                    model.noise_sigma)))
                    runtime = (base_seconds * factors[cpu_key]
                               * noise)
                    total_cost = total_cost + billing.bill(
                        deployment.memory_mb, runtime,
                        deployment.arch).total
                    latencies.append(accumulated + rtt_s + runtime)
                    cpu_counts[cpu_key] = cpu_counts.get(cpu_key, 0) + 1
            pending = next_pending
            round_index += 1

        if not latencies:
            raise ConfigurationError(
                "burst produced no completed requests (zone saturated?)")
        distribution = LatencyDistribution(latencies)
        # Makespan: waves of `concurrency` requests run back to back.
        waves = -(-n_requests // self.concurrency)
        makespan = waves * distribution.mean
        return DispatchResult(
            n=n_requests,
            total_cost=total_cost,
            latency=distribution,
            retries=retries,
            makespan_s=makespan,
            cpu_counts=cpu_counts,
        )
