"""Per-zone health tracking: breakers, error rates, latency reservoirs.

:class:`ZoneHealthTracker` is the client-side memory of how each zone has
been behaving recently.  It owns one :class:`~repro.core.resilience.CircuitBreaker`
per zone, a sliding window of success/failure outcomes, and a bounded
reservoir of observed latencies.  The router feeds it after every
invocation; :class:`~repro.core.policies.RoutingView` exposes it to
policies so routing degrades gracefully — a stale characterization of a
healthy zone beats fresh data from a browning-out one.
"""

from collections import deque

from repro.core.resilience import CircuitBreaker
from repro.obs.hooks import NULL_BUS
from repro.obs.metrics import quantile


class _ZoneRecord(object):
    __slots__ = ("breaker", "outcomes", "latencies")

    def __init__(self, breaker, max_samples):
        self.breaker = breaker
        # (timestamp, ok) pairs for the error-rate window.
        self.outcomes = deque(maxlen=max_samples)
        self.latencies = deque(maxlen=max_samples)


class ZoneHealthTracker(object):
    """Tracks per-zone health and gates routing through circuit breakers.

    Parameters
    ----------
    breaker_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.core.resilience.CircuitBreaker` per zone; defaults
        to ``CircuitBreaker()`` with stock thresholds.
    window_s:
        Sliding window (sim seconds) for :meth:`error_rate`.
    max_samples:
        Bound on retained outcome/latency samples per zone.
    bus:
        Event bus; breaker transitions emit ``breaker.transition``.
    """

    def __init__(self, breaker_factory=None, window_s=300.0, max_samples=256,
                 bus=NULL_BUS):
        self._breaker_factory = breaker_factory or CircuitBreaker
        self.window_s = float(window_s)
        self.max_samples = int(max_samples)
        self._bus = bus
        self._zones = {}
        # Count of breakers currently NOT closed.  The routing hot path
        # checks this to skip candidate filtering and the mutating
        # breaker gate entirely while every zone is healthy.
        self.tripped_breakers = 0

    def attach_bus(self, bus):
        self._bus = bus
        return bus

    def _record(self, zone_id):
        record = self._zones.get(zone_id)
        if record is None:
            breaker = self._breaker_factory()
            breaker.on_transition = self._transition_emitter(zone_id)
            record = _ZoneRecord(breaker, self.max_samples)
            self._zones[zone_id] = record
        return record

    def _transition_emitter(self, zone_id):
        def emit(now, old, new):
            self.tripped_breakers += ((new != CircuitBreaker.CLOSED)
                                      - (old != CircuitBreaker.CLOSED))
            bus = self._bus
            if bus.enabled:
                # "from" is a Python keyword, hence from_state.
                bus.emit("breaker.transition", now, zone=zone_id,
                         from_state=old, to=new)
        return emit

    # -- recording -----------------------------------------------------------
    def record_success(self, zone_id, now, latency_s=None):
        record = self._record(zone_id)
        record.outcomes.append((now, True))
        if latency_s is not None:
            record.latencies.append(latency_s)
        record.breaker.record_success(now)

    def record_failure(self, zone_id, now, reason="handler_error"):
        record = self._record(zone_id)
        record.outcomes.append((now, False))
        record.breaker.record_failure(now)

    # -- queries -------------------------------------------------------------
    def state(self, zone_id):
        record = self._zones.get(zone_id)
        return record.breaker.state if record else CircuitBreaker.CLOSED

    def breaker(self, zone_id):
        """The zone's breaker (created on first touch)."""
        return self._record(zone_id).breaker

    def allow(self, zone_id, now):
        """Mutating breaker gate for the zone about to be invoked."""
        return self._record(zone_id).breaker.allow(now)

    def would_allow(self, zone_id, now):
        record = self._zones.get(zone_id)
        return record.breaker.would_allow(now) if record else True

    def routable_zones(self, zone_ids, now):
        """Zones whose breakers would admit a request right now.

        Falls back to the full list when *every* breaker refuses —
        graceful degradation beats routing nowhere.  While every breaker
        is closed the input is returned unfiltered (and uncopied), so the
        no-fault routing path pays ~nothing for the gate.
        """
        if not self.tripped_breakers:
            return zone_ids
        open_for_business = [z for z in zone_ids if self.would_allow(z, now)]
        return open_for_business if open_for_business else list(zone_ids)

    def error_rate(self, zone_id, now):
        """Failure fraction over the sliding window ending at ``now``."""
        record = self._zones.get(zone_id)
        if record is None:
            return 0.0
        cutoff = float(now) - self.window_s
        total = failures = 0
        for timestamp, ok in record.outcomes:
            if timestamp >= cutoff:
                total += 1
                if not ok:
                    failures += 1
        return failures / float(total) if total else 0.0

    def latency_samples(self, zone_id):
        record = self._zones.get(zone_id)
        return list(record.latencies) if record else []

    def latency_percentile(self, zone_id, q):
        samples = self.latency_samples(zone_id)
        if not samples:
            return None
        return quantile(sorted(samples), q)

    def transitions(self):
        """All breaker transitions: ``[(zone_id, now, old, new), ...]``."""
        rows = []
        for zone_id in sorted(self._zones):
            for now, old, new in self._zones[zone_id].breaker.transitions:
                rows.append((zone_id, now, old, new))
        rows.sort(key=lambda r: r[1])
        return rows

    def snapshot(self, now):
        """``{zone_id: {state, error_rate, samples}}`` for reporting."""
        return {
            zone_id: {
                "state": record.breaker.state,
                "error_rate": self.error_rate(zone_id, now),
                "samples": len(record.outcomes),
            }
            for zone_id, record in sorted(self._zones.items())
        }

    def __repr__(self):
        return "ZoneHealthTracker(zones={})".format(len(self._zones))
