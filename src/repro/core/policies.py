"""Routing policies: Baseline, Regional, Retry, and Hybrid (paper §3.5).

A policy turns the router's current *view* (fresh characterizations, the
workload's runtime factors, candidate zones) into a
:class:`RoutingDecision`: which zone to hit, and optionally a
:class:`~repro.core.retry.RetryPolicy` to apply inside it.

* **Baseline** — a fixed zone, no retries (what a normal user does).
* **Regional** — route to the zone whose CPU mix minimizes expected
  runtime.  No retries; trades network latency (unbilled) for faster CPUs.
* **Retry** — stay in a fixed zone but refuse slow CPUs (*retry slow* bans
  the two slowest; *focus fastest* bans all but the best).
* **Hybrid** — region hopping: re-pick the best zone whenever
  characterizations refresh, then fine-tune with retries inside it.
"""

from repro.common.errors import ConfigurationError
from repro.core.retry import RetryPolicy


class RoutingDecision(object):
    """Where to send a request, and with what retry behaviour."""

    __slots__ = ("zone_id", "retry_policy")

    def __init__(self, zone_id, retry_policy=None):
        self.zone_id = zone_id
        self.retry_policy = retry_policy

    def __repr__(self):
        return "RoutingDecision({!r}, retry={})".format(
            self.zone_id, self.retry_policy)


class RoutingPolicy(object):
    """Base class: subclasses implement :meth:`decide`."""

    name = "abstract"

    def decide(self, view):
        """``view`` is a :class:`RoutingView`; returns a RoutingDecision."""
        raise NotImplementedError

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class RoutingView(object):
    """Everything a policy may consult when deciding.

    ``health`` (a :class:`~repro.core.health.ZoneHealthTracker`, or None)
    lets policies weigh recent zone behaviour: the router already filters
    ``candidate_zones`` through breaker state, and policies can further
    consult :meth:`zone_error_rate` to prefer a stale characterization of
    a healthy zone over fresh data from a browning-out one.
    """

    __slots__ = ("characterizations", "factors", "base_seconds", "ranker",
                 "candidate_zones", "client", "now", "health")

    def __init__(self, characterizations, factors, base_seconds, ranker,
                 candidate_zones, client=None, now=0.0, health=None):
        self.characterizations = characterizations
        self.factors = factors
        self.base_seconds = base_seconds
        self.ranker = ranker
        self.candidate_zones = list(candidate_zones)
        self.client = client
        self.now = now
        self.health = health

    def observed_cpus(self, zone_id):
        return self.characterizations[zone_id].cpu_keys()

    def zone_error_rate(self, zone_id):
        """Recent failure fraction for ``zone_id`` (0.0 without health)."""
        if self.health is None:
            return 0.0
        return self.health.error_rate(zone_id, self.now)


class BaselinePolicy(RoutingPolicy):
    """All requests to one fixed zone, run on whatever CPU shows up."""

    name = "baseline"

    def __init__(self, zone_id):
        self.zone_id = zone_id

    def decide(self, view):
        return RoutingDecision(self.zone_id)


class RegionalPolicy(RoutingPolicy):
    """Route to the zone with the best expected CPU mix (no retries)."""

    name = "regional"

    def __init__(self, max_rtt=None):
        self.max_rtt = max_rtt

    def decide(self, view):
        zone_id = view.ranker.best_zone(
            view.candidate_zones, view.factors, client=view.client,
            max_rtt=self.max_rtt, now=view.now)
        return RoutingDecision(zone_id)


class CheapestCostPolicy(RoutingPolicy):
    """Route to the zone with the lowest expected *dollars* per request.

    The sky-computing generalization of :class:`RegionalPolicy`: when the
    candidate set spans providers (AWS vs. IBM vs. DO), expected runtime
    alone is not enough — billing rates differ, so the router must compare
    ``rate × expected runtime`` instead.
    """

    name = "cheapest_cost"

    def __init__(self, memory_mb=2048, arch="x86_64", max_rtt=None):
        self.memory_mb = memory_mb
        self.arch = arch
        self.max_rtt = max_rtt

    def decide(self, view):
        ranked = view.ranker.rank_by_cost(
            view.candidate_zones, view.factors, view.base_seconds,
            self.memory_mb, arch=self.arch, client=view.client,
            max_rtt=self.max_rtt, now=view.now)
        if not ranked:
            raise ConfigurationError(
                "no routable zone for the cheapest-cost policy")
        return RoutingDecision(ranked[0])


class RetryRoutingPolicy(RoutingPolicy):
    """Fixed zone plus a banned-CPU retry strategy."""

    VARIANTS = ("retry_slow", "focus_fastest")

    def __init__(self, zone_id, variant="retry_slow", n_slowest=2,
                 max_retries=None, hold_seconds=None):
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                "unknown retry variant {!r}; pick one of {}".format(
                    variant, self.VARIANTS))
        self.zone_id = zone_id
        self.variant = variant
        self.n_slowest = n_slowest
        self._retry_kwargs = {}
        if max_retries is not None:
            self._retry_kwargs["max_retries"] = max_retries
        if hold_seconds is not None:
            self._retry_kwargs["hold_seconds"] = hold_seconds

    @property
    def name(self):
        return self.variant

    def _build_retry(self, view, zone_id):
        cpus = view.observed_cpus(zone_id)
        if len(cpus) < 2:
            return None  # homogeneous zone: nothing to refuse
        if self.variant == "focus_fastest":
            return RetryPolicy.focus_fastest(cpus, view.factors,
                                             **self._retry_kwargs)
        n_slowest = min(self.n_slowest, len(cpus) - 1)
        return RetryPolicy.retry_slow(cpus, view.factors,
                                      n_slowest=n_slowest,
                                      **self._retry_kwargs)

    def decide(self, view):
        return RoutingDecision(self.zone_id,
                               self._build_retry(view, self.zone_id))


class HybridPolicy(RetryRoutingPolicy):
    """Region hopping + in-zone retries (the paper's best strategy).

    Picks the zone whose mix minimizes expected runtime **including** the
    retry overhead the zone would incur, then applies the retry variant
    inside it.
    """

    def __init__(self, variant="retry_slow", n_slowest=2, max_retries=None,
                 hold_seconds=None, max_rtt=None):
        super(HybridPolicy, self).__init__(
            zone_id=None, variant=variant, n_slowest=n_slowest,
            max_retries=max_retries, hold_seconds=hold_seconds)
        self.max_rtt = max_rtt

    @property
    def name(self):
        return "hybrid_" + self.variant

    def decide(self, view):
        best_zone, best_score, best_retry = None, None, None
        for zone_id in view.candidate_zones:
            if zone_id not in view.characterizations:
                continue
            if (self.max_rtt is not None and view.client is not None
                    and view.ranker._rtt(zone_id, view.client)
                    > self.max_rtt):
                continue
            # Retries are only worth their holds where the zone's mix
            # rewards filtering — evaluate each zone both with and without
            # the retry strategy and keep whichever is cheaper.
            options = [(view.ranker.expected_factor(
                zone_id, view.factors, now=view.now), None)]
            retry = self._build_retry(view, zone_id)
            if retry is not None:
                options.append((view.ranker.expected_factor_with_retry(
                    zone_id, view.factors, retry,
                    base_seconds=view.base_seconds, now=view.now), retry))
            for score, option_retry in options:
                if best_score is None or score < best_score:
                    best_zone, best_score = zone_id, score
                    best_retry = option_retry
        if best_zone is None:
            raise ConfigurationError(
                "hybrid policy found no routable zone")
        return RoutingDecision(best_zone, best_retry)
