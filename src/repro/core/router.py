"""The SmartRouter: policy-driven request routing over the sky mesh.

For each request (or burst) the router builds a
:class:`~repro.core.policies.RoutingView` from the characterization store,
asks its policy for a :class:`RoutingDecision`, resolves the target mesh
deployment, and executes — directly or through the
:class:`~repro.core.retry.RetryEngine` when the decision carries a retry
policy.  Optionally it feeds every observed CPU back into the store
(*passive characterization*, the paper's future-work path).
"""

from repro.common.errors import (
    ConfigurationError,
    FAILOVER_REASONS,
    InvocationError,
    RETRYABLE_REASONS,
)
from repro.core.optimizer import ZoneRanker
from repro.core.policies import RoutingView
from repro.core.resilience import (
    BreakerOpenError,
    ResilienceConfig,
    ResilientOutcome,
)
from repro.core.retry import RetryEngine, RetriedInvocation


class RoutedRequest(object):
    """Uniform view over direct and retried invocations."""

    __slots__ = ("decision", "outcome")

    def __init__(self, decision, outcome):
        self.decision = decision
        self.outcome = outcome

    @property
    def zone_id(self):
        return self.decision.zone_id

    @property
    def cpu_key(self):
        return self.outcome.cpu_key

    @property
    def retries(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.retries
        return 0

    @property
    def cost(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.total_cost
        return self.outcome.bill.total

    @property
    def latency_s(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.total_latency
        return self.outcome.latency_s

    @property
    def billed_runtime_s(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.billed_runtime
        return self.outcome.runtime_s

    def __repr__(self):
        return "RoutedRequest(zone={}, cpu={}, retries={}, cost={})".format(
            self.zone_id, self.cpu_key, self.retries, self.cost)


class SmartRouter(object):
    """Routes one workload's requests according to a policy."""

    def __init__(self, cloud, mesh, store, policy, workload,
                 candidate_zones, memory_mb=2048, arch="x86_64",
                 function_name="dynamic", client=None, passive=False,
                 telemetry=None, obs=None, health=None, resilience=None):
        self.cloud = cloud
        self.mesh = mesh
        self.store = store
        self.policy = policy
        self.workload = workload
        self.candidate_zones = list(candidate_zones)
        if not self.candidate_zones:
            raise ConfigurationError("router needs candidate zones")
        self.memory_mb = memory_mb
        self.arch = arch
        self.function_name = function_name
        self.client = client
        self.passive = passive
        self.telemetry = telemetry
        self.obs = obs
        self.health = health
        self.resilience = resilience
        if health is not None:
            health.attach_bus(self._event_bus())
        self._ranker = ZoneRanker(store, cloud=cloud)
        self._retry_engine = RetryEngine(cloud)
        self._factors = workload.cpu_factors()
        self._payload = workload.payload()

    def _event_bus(self):
        """Where router-level events (failover, hedge, backoff) go."""
        obs = self.obs
        if obs is not None and obs.enabled:
            return obs.bus
        return self.cloud.bus

    # -- views ---------------------------------------------------------------------
    def current_view(self, now=None):
        now = self.cloud.clock.now if now is None else now
        candidates = self.candidate_zones
        if self.health is not None:
            candidates = self.health.routable_zones(candidates, now)
        return RoutingView(
            characterizations=self.store.view(self.candidate_zones,
                                              now=now),
            factors=self._factors,
            base_seconds=self.workload.base_seconds,
            ranker=self._ranker,
            candidate_zones=candidates,
            client=self.client,
            now=now,
            health=self.health,
        )

    def decide(self, now=None):
        """Ask the policy for a routing decision under the current view."""
        return self.policy.decide(self.current_view(now=now))

    def _deployment_for(self, zone_id):
        return self.mesh.endpoint(zone_id, self.memory_mb, self.arch,
                                  self.function_name)

    # -- execution -------------------------------------------------------------------
    def route(self, decision=None):
        """Route a single request; returns a :class:`RoutedRequest`.

        When the router carries an :class:`~repro.obs.Observability`, each
        call produces one trace — ``request`` → (``decide``) →
        ``dispatch`` (→ ``placement``/``retry-hold`` per retry attempt) →
        ``billing`` — on sim-clock timestamps, and when it carries a
        :class:`~repro.core.telemetry.RoutingTelemetry` the outcome is
        recorded there with the real sim-clock timestamp.
        """
        obs = self.obs
        tracer = obs.tracer if obs is not None and obs.enabled else None
        now = self.cloud.clock.now
        root = None
        if tracer is not None:
            root = tracer.start_trace("request", now,
                                      workload=self.workload.name,
                                      policy=self.policy.name)
        if decision is None:
            decision = self.decide()
            if root is not None:
                tracer.start_span("decide", root, now,
                                  zone=decision.zone_id).finish(now)
        deployment = self._deployment_for(decision.zone_id)
        dispatch = None
        if root is not None:
            dispatch = tracer.start_span("dispatch", root, now,
                                         zone=decision.zone_id)
        health = self.health
        try:
            if decision.retry_policy is not None:
                outcome = self._retry_engine.invoke(
                    deployment, decision.retry_policy, payload=self._payload,
                    client=self.client, tracer=tracer, parent=dispatch)
                if outcome.failed:
                    # Surface the structured partial outcome alongside the
                    # error so callers can account attempts and hold cost.
                    outcome.error.partial = outcome
                    raise outcome.error
            else:
                outcome = self.cloud.invoke(deployment, payload=self._payload,
                                            client=self.client)
        except InvocationError as error:
            if health is not None:
                health.record_failure(decision.zone_id, now,
                                      reason=error.reason)
            if root is not None:
                dispatch.finish(now).tag(error=error.reason)
                root.finish(now)
            raise
        request = RoutedRequest(decision, outcome)
        if health is not None:
            health.record_success(decision.zone_id, now,
                                  latency_s=request.latency_s)
        if root is not None:
            done = now + request.latency_s
            dispatch.finish(done).tag(cpu=request.cpu_key,
                                      retries=request.retries)
            tracer.start_span("billing", root, done,
                              cost_usd=float(request.cost)).finish(done)
            root.finish(done)
        if self.passive:
            self.store.record_observation(decision.zone_id,
                                          request.cpu_key,
                                          timestamp=self.cloud.clock.now)
        if self.telemetry is not None:
            self.telemetry.record(request, workload=self.workload.name,
                                  policy=self.policy.name, timestamp=now)
        return request

    def route_with_failover(self, max_zones=None):
        """Route one request, failing over across candidate zones.

        Sky computing's availability story: if the chosen zone is
        saturated, throttled, or transiently failing
        (:data:`~repro.common.errors.FAILOVER_REASONS`), drop it from this
        request's view and re-decide, until a zone serves the request or
        the candidates are exhausted (the last error propagates).  Handler
        errors propagate immediately — the bug follows the request to any
        zone.  ``max_zones`` bounds the attempts.
        """
        remaining = list(self.candidate_zones)
        attempts = max_zones if max_zones is not None else len(remaining)
        last_error = None
        original = self.candidate_zones
        bus = self._event_bus()
        try:
            for hop in range(attempts):
                if not remaining:
                    break
                self.candidate_zones = remaining
                decision = self.decide()
                try:
                    return self.route(decision)
                except InvocationError as error:
                    if error.reason not in FAILOVER_REASONS:
                        raise
                    last_error = error
                    remaining = [z for z in remaining
                                 if z != decision.zone_id]
                    if bus.enabled:
                        bus.emit("router.failover", self.cloud.clock.now,
                                 zone=decision.zone_id, reason=error.reason,
                                 hop=hop, remaining=len(remaining))
        finally:
            self.candidate_zones = original
        if last_error is not None:
            raise last_error
        raise ConfigurationError("no candidate zones left to fail over to")

    def _decide_over(self, zones):
        """Ask the policy to decide over a temporary candidate set."""
        original = self.candidate_zones
        self.candidate_zones = list(zones)
        try:
            return self.decide()
        finally:
            self.candidate_zones = original

    # -- resilient execution ---------------------------------------------------------
    def route_resilient(self, config=None):
        """Route one request through the full resilience stack.

        Per attempt: filter candidates through breaker state, decide, gate
        the chosen zone through its (mutating) breaker, invoke.  On a
        retryable error (:data:`~repro.common.errors.RETRYABLE_REASONS`)
        accrue a full-jitter backoff delay; on any failover-worthy error
        exclude the zone for this request and re-decide.  On success,
        optionally hedge per ``config.hedge``.  Requires ``health`` (a
        :class:`~repro.core.health.ZoneHealthTracker`); returns a
        :class:`~repro.core.resilience.ResilientOutcome`.
        """
        health = self.health
        if health is None:
            raise ConfigurationError(
                "route_resilient requires a ZoneHealthTracker; pass "
                "health= to the router")
        if config is None:
            config = self.resilience
            if config is None:
                config = ResilienceConfig()
        if not health.tripped_breakers:
            # Quiescent fast path: every breaker is closed, so candidate
            # filtering and the mutating gate are both no-ops — one
            # decide, one route, wrap.  This is what keeps the no-fault
            # overhead of the hardened path within the 5 % gate.
            now = self.cloud.clock.now
            decision = self.decide(now=now)
            try:
                request = self.route(decision)
            except InvocationError as error:
                return self._route_resilient_loop(config, error, decision)
            if config.hedge is None:
                return ResilientOutcome(request)
            return self._maybe_hedge(request, config, 1, 0.0, 0, now,
                                     self._event_bus())
        return self._route_resilient_loop(config, None, None)

    def _route_resilient_loop(self, config, error, decision):
        """The full per-attempt loop behind :meth:`route_resilient`.

        ``error``/``decision`` carry a failure the fast path already
        suffered; it is processed as attempt 0 (its sim side effects —
        billing, capacity — have already happened, so it must count
        against the attempt budget, not be replayed).
        """
        health = self.health
        bus = self._event_bus()
        clock = self.cloud.clock
        excluded = set()
        backoff_total = 0.0
        failovers = 0
        last_error = None
        attempt = 0
        now = clock.now
        while attempt < config.max_attempts:
            if error is None:
                now = clock.now
                zones = self.candidate_zones
                if excluded:
                    zones = [z for z in zones if z not in excluded]
                    if not zones:
                        # Every candidate failed this request already;
                        # degrade gracefully by reopening the full set
                        # rather than giving up with attempts in budget.
                        excluded.clear()
                        zones = self.candidate_zones
                routable = health.routable_zones(zones, now)
                if routable is self.candidate_zones:
                    decision = self.decide(now=now)
                else:
                    decision = self._decide_over(routable)
                    if not health.allow(decision.zone_id, now):
                        last_error = BreakerOpenError(decision.zone_id)
                        excluded.add(decision.zone_id)
                        failovers += 1
                        if bus.enabled:
                            bus.emit("router.failover", now,
                                     zone=decision.zone_id,
                                     reason="breaker_open", hop=attempt,
                                     remaining=len(zones) - 1)
                        attempt += 1
                        continue
                try:
                    request = self.route(decision)
                except InvocationError as caught:
                    error = caught
                else:
                    if config.hedge is None:
                        return ResilientOutcome(request,
                                                attempts=attempt + 1,
                                                backoff_s=backoff_total,
                                                failovers=failovers)
                    return self._maybe_hedge(request, config, attempt + 1,
                                             backoff_total, failovers,
                                             now, bus)
            if error.reason not in FAILOVER_REASONS:
                raise error
            last_error = error
            if error.reason in RETRYABLE_REASONS:
                delay = config.backoff.delay(attempt)
                backoff_total += delay
                if bus.enabled:
                    bus.emit("router.backoff", now, zone=decision.zone_id,
                             delay_s=delay, attempt=attempt,
                             reason=error.reason)
            if config.failover:
                excluded.add(decision.zone_id)
                failovers += 1
                if bus.enabled:
                    bus.emit("router.failover", now, zone=decision.zone_id,
                             reason=error.reason, hop=attempt,
                             remaining=(len(self.candidate_zones)
                                        - len(excluded)))
            elif error.reason not in RETRYABLE_REASONS:
                raise error
            error = None
            attempt += 1
        assert last_error is not None
        raise last_error

    def _maybe_hedge(self, request, config, attempts, backoff_s, failovers,
                     now, bus):
        """Wrap ``request`` in a ResilientOutcome, hedging if warranted."""
        hedge = config.hedge
        threshold = (hedge.threshold(self.health, request.zone_id)
                     if hedge is not None else None)
        if threshold is None or request.latency_s <= threshold:
            return ResilientOutcome(request, attempts=attempts,
                                    backoff_s=backoff_s,
                                    failovers=failovers)
        alternates = [z for z in self.candidate_zones
                      if z != request.zone_id]
        if alternates:
            alternates = self.health.routable_zones(alternates, now)
        if not alternates:
            return ResilientOutcome(request, attempts=attempts,
                                    backoff_s=backoff_s,
                                    failovers=failovers)
        decision = self._decide_over(alternates)
        try:
            hedge_request = self.route(decision)
        except InvocationError:
            if bus.enabled:
                bus.emit("router.hedge", now, zone=request.zone_id,
                         hedge_zone=decision.zone_id, won=False,
                         primary_latency_s=request.latency_s,
                         hedge_latency_s=None)
            return ResilientOutcome(request, attempts=attempts,
                                    backoff_s=backoff_s, hedged=True,
                                    hedge_won=False, failovers=failovers)
        # The hedge fires only once the primary has been in flight for
        # ``threshold`` seconds, so its effective completion time is
        # threshold + its own latency.
        hedge_total = threshold + hedge_request.latency_s
        won = hedge_total < request.latency_s
        effective = min(request.latency_s, hedge_total) + backoff_s
        if bus.enabled:
            bus.emit("router.hedge", now, zone=request.zone_id,
                     hedge_zone=hedge_request.zone_id, won=won,
                     primary_latency_s=request.latency_s,
                     hedge_latency_s=hedge_request.latency_s)
        return ResilientOutcome(request, hedge_request=hedge_request,
                                attempts=attempts, backoff_s=backoff_s,
                                hedged=True, hedge_won=won,
                                failovers=failovers, latency_s=effective)

    def route_burst(self, n_requests, decide_once=True):
        """Route a burst of ``n_requests``.

        ``decide_once`` (the default) makes one routing decision for the
        whole burst, matching how a batch dispatcher works; otherwise every
        request re-decides (useful when passive observations shift the view
        mid-burst).
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        decision = self.decide() if decide_once else None
        return [self.route(decision) for _ in range(n_requests)]

    def dispatch_batch(self, n_requests, decision=None, keep_latencies=False,
                       bill_category="serve"):
        """Resolve ``n_requests`` coalesced requests in one columnar poll.

        The batch counterpart of :meth:`route_burst`: one routing decision
        (or the caller's pre-made one), one deployment lookup, one
        :meth:`~repro.cloudsim.Cloud.poll_batch` with the workload payload
        threaded through — no per-request objects.  Returns
        ``(decision, BatchPollResult)``; zone health and passive
        observations are updated from the aggregate outcome so the serving
        gateway's steady-state traffic feeds the same routing view as the
        scalar path.
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        if decision is None:
            decision = self.decide()
        deployment = self._deployment_for(decision.zone_id)
        result = self.cloud.poll_batch(
            deployment, n_requests, bill_category=bill_category,
            payload=self._payload, keep_latencies=keep_latencies)
        now = self.cloud.clock.now
        health = self.health
        if health is not None:
            if result.served:
                health.record_success(decision.zone_id, now,
                                      latency_s=result.mean_latency_s)
            for _ in range(result.failed):
                health.record_failure(decision.zone_id, now,
                                      reason="saturated")
        if self.passive and result.served:
            # One aggregate timestamp per CPU group, mirroring what the
            # scalar path would have recorded request by request (the
            # store caps observations per CPU anyway).
            for cpu_key in result.request_cpu_counts:
                self.store.record_observation(decision.zone_id, cpu_key,
                                              timestamp=now)
        return decision, result

    def __repr__(self):
        return "SmartRouter(policy={}, workload={!r})".format(
            self.policy.name, self.workload.name)
