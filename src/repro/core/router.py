"""The SmartRouter: policy-driven request routing over the sky mesh.

For each request (or burst) the router builds a
:class:`~repro.core.policies.RoutingView` from the characterization store,
asks its policy for a :class:`RoutingDecision`, resolves the target mesh
deployment, and executes — directly or through the
:class:`~repro.core.retry.RetryEngine` when the decision carries a retry
policy.  Optionally it feeds every observed CPU back into the store
(*passive characterization*, the paper's future-work path).
"""

from repro.common.errors import ConfigurationError
from repro.core.optimizer import ZoneRanker
from repro.core.policies import RoutingView
from repro.core.retry import RetryEngine, RetriedInvocation


class RoutedRequest(object):
    """Uniform view over direct and retried invocations."""

    __slots__ = ("decision", "outcome")

    def __init__(self, decision, outcome):
        self.decision = decision
        self.outcome = outcome

    @property
    def zone_id(self):
        return self.decision.zone_id

    @property
    def cpu_key(self):
        return self.outcome.cpu_key

    @property
    def retries(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.retries
        return 0

    @property
    def cost(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.total_cost
        return self.outcome.bill.total

    @property
    def latency_s(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.total_latency
        return self.outcome.latency_s

    @property
    def billed_runtime_s(self):
        if isinstance(self.outcome, RetriedInvocation):
            return self.outcome.billed_runtime
        return self.outcome.runtime_s

    def __repr__(self):
        return "RoutedRequest(zone={}, cpu={}, retries={}, cost={})".format(
            self.zone_id, self.cpu_key, self.retries, self.cost)


class SmartRouter(object):
    """Routes one workload's requests according to a policy."""

    def __init__(self, cloud, mesh, store, policy, workload,
                 candidate_zones, memory_mb=2048, arch="x86_64",
                 function_name="dynamic", client=None, passive=False,
                 telemetry=None, obs=None):
        self.cloud = cloud
        self.mesh = mesh
        self.store = store
        self.policy = policy
        self.workload = workload
        self.candidate_zones = list(candidate_zones)
        if not self.candidate_zones:
            raise ConfigurationError("router needs candidate zones")
        self.memory_mb = memory_mb
        self.arch = arch
        self.function_name = function_name
        self.client = client
        self.passive = passive
        self.telemetry = telemetry
        self.obs = obs
        self._ranker = ZoneRanker(store, cloud=cloud)
        self._retry_engine = RetryEngine(cloud)
        self._factors = workload.cpu_factors()
        self._payload = workload.payload()

    # -- views ---------------------------------------------------------------------
    def current_view(self, now=None):
        now = self.cloud.clock.now if now is None else now
        return RoutingView(
            characterizations=self.store.view(self.candidate_zones,
                                              now=now),
            factors=self._factors,
            base_seconds=self.workload.base_seconds,
            ranker=self._ranker,
            candidate_zones=self.candidate_zones,
            client=self.client,
            now=now,
        )

    def decide(self, now=None):
        """Ask the policy for a routing decision under the current view."""
        return self.policy.decide(self.current_view(now=now))

    def _deployment_for(self, zone_id):
        return self.mesh.endpoint(zone_id, self.memory_mb, self.arch,
                                  self.function_name)

    # -- execution -------------------------------------------------------------------
    def route(self, decision=None):
        """Route a single request; returns a :class:`RoutedRequest`.

        When the router carries an :class:`~repro.obs.Observability`, each
        call produces one trace — ``request`` → (``decide``) →
        ``dispatch`` (→ ``placement``/``retry-hold`` per retry attempt) →
        ``billing`` — on sim-clock timestamps, and when it carries a
        :class:`~repro.core.telemetry.RoutingTelemetry` the outcome is
        recorded there with the real sim-clock timestamp.
        """
        obs = self.obs
        tracer = obs.tracer if obs is not None and obs.enabled else None
        now = self.cloud.clock.now
        root = None
        if tracer is not None:
            root = tracer.start_trace("request", now,
                                      workload=self.workload.name,
                                      policy=self.policy.name)
        if decision is None:
            decision = self.decide()
            if root is not None:
                tracer.start_span("decide", root, now,
                                  zone=decision.zone_id).finish(now)
        deployment = self._deployment_for(decision.zone_id)
        dispatch = None
        if root is not None:
            dispatch = tracer.start_span("dispatch", root, now,
                                         zone=decision.zone_id)
        if decision.retry_policy is not None:
            outcome = self._retry_engine.invoke(
                deployment, decision.retry_policy, payload=self._payload,
                client=self.client, tracer=tracer, parent=dispatch)
        else:
            outcome = self.cloud.invoke(deployment, payload=self._payload,
                                        client=self.client)
        request = RoutedRequest(decision, outcome)
        if root is not None:
            done = now + request.latency_s
            dispatch.finish(done).tag(cpu=request.cpu_key,
                                      retries=request.retries)
            tracer.start_span("billing", root, done,
                              cost_usd=float(request.cost)).finish(done)
            root.finish(done)
        if self.passive:
            self.store.record_observation(decision.zone_id,
                                          request.cpu_key,
                                          timestamp=self.cloud.clock.now)
        if self.telemetry is not None:
            self.telemetry.record(request, workload=self.workload.name,
                                  policy=self.policy.name, timestamp=now)
        return request

    def route_with_failover(self, max_zones=None):
        """Route one request, failing over across candidate zones.

        Sky computing's availability story: if the chosen zone is
        saturated, drop it from this request's view and re-decide, until a
        zone serves the request or the candidates are exhausted (the last
        error propagates).  ``max_zones`` bounds the attempts.
        """
        from repro.common.errors import SaturationError
        remaining = list(self.candidate_zones)
        attempts = max_zones if max_zones is not None else len(remaining)
        last_error = None
        original = self.candidate_zones
        try:
            for _ in range(attempts):
                if not remaining:
                    break
                self.candidate_zones = remaining
                try:
                    decision = self.decide()
                except Exception:
                    raise
                try:
                    return self.route(decision)
                except SaturationError as error:
                    last_error = error
                    remaining = [z for z in remaining
                                 if z != decision.zone_id]
        finally:
            self.candidate_zones = original
        if last_error is not None:
            raise last_error
        raise ConfigurationError("no candidate zones left to fail over to")

    def route_burst(self, n_requests, decide_once=True):
        """Route a burst of ``n_requests``.

        ``decide_once`` (the default) makes one routing decision for the
        whole burst, matching how a batch dispatcher works; otherwise every
        request re-decides (useful when passive observations shift the view
        mid-burst).
        """
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        decision = self.decide() if decide_once else None
        return [self.route(decision) for _ in range(n_requests)]

    def __repr__(self):
        return "SmartRouter(policy={}, workload={!r})".format(
            self.policy.name, self.workload.name)
