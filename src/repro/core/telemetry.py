"""Routing telemetry: observe what the router actually did.

A production sky router needs observability: which zones served traffic,
on which CPUs, with how many retries, at what cost and latency.
:class:`RoutingTelemetry` is a bounded in-memory sink the router (or any
caller) records :class:`~repro.core.router.RoutedRequest` outcomes into,
with per-zone/per-CPU summaries and CSV-ready export.
"""

import collections

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.obs.metrics import quantile


class TelemetryRecord(object):
    """One routed request, flattened."""

    __slots__ = ("timestamp", "workload", "policy", "zone_id", "cpu_key",
                 "retries", "cost_usd", "latency_s")

    def __init__(self, timestamp, workload, policy, zone_id, cpu_key,
                 retries, cost_usd, latency_s):
        self.timestamp = timestamp
        self.workload = workload
        self.policy = policy
        self.zone_id = zone_id
        self.cpu_key = cpu_key
        self.retries = retries
        self.cost_usd = cost_usd
        self.latency_s = latency_s

    def to_row(self):
        return {
            "timestamp": self.timestamp,
            "workload": self.workload,
            "policy": self.policy,
            "zone": self.zone_id,
            "cpu": self.cpu_key,
            "retries": self.retries,
            "cost_usd": self.cost_usd,
            "latency_s": self.latency_s,
        }


class RoutingTelemetry(object):
    """Bounded ring buffer of routing outcomes with aggregations."""

    def __init__(self, capacity=100000):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self._records = collections.deque(maxlen=int(capacity))

    def __len__(self):
        return len(self._records)

    # -- recording -------------------------------------------------------------
    def record(self, request, workload="", policy="", timestamp=0.0):
        """Record a :class:`RoutedRequest` (or compatible object).

        ``request.cost`` may be a plain float/int or a
        :class:`~repro.common.units.Money`; both are stored as USD floats.
        """
        cost = request.cost
        record = TelemetryRecord(
            timestamp=timestamp,
            workload=workload,
            policy=policy,
            zone_id=request.zone_id,
            cpu_key=request.cpu_key,
            retries=request.retries,
            cost_usd=cost.usd if isinstance(cost, Money) else float(cost),
            latency_s=request.latency_s,
        )
        self._records.append(record)
        return record

    def records(self):
        return list(self._records)

    def rows(self):
        """CSV-ready dict rows (pairs with ``repro.reporting.write_csv``)."""
        return [record.to_row() for record in self._records]

    # -- aggregations -------------------------------------------------------------
    def total_cost(self):
        return Money(sum(r.cost_usd for r in self._records))

    def total_retries(self):
        return sum(r.retries for r in self._records)

    def by_zone(self):
        """zone -> {requests, cost_usd, retries, mean/p50/p95/p99
        latency}."""
        return self._group(lambda r: r.zone_id)

    def by_cpu(self):
        """cpu -> {requests, cost_usd, retries, mean/p50/p95/p99
        latency}."""
        return self._group(lambda r: r.cpu_key)

    def by_policy(self):
        return self._group(lambda r: r.policy)

    def cpu_distribution(self):
        """Observed CPU mix across all recorded requests — usable as a
        passive characterization cross-check."""
        from repro.common.distributions import CategoricalDistribution
        counts = {}
        for record in self._records:
            counts[record.cpu_key] = counts.get(record.cpu_key, 0) + 1
        return CategoricalDistribution(counts)

    def _group(self, key_fn):
        groups = {}
        for record in self._records:
            bucket = groups.setdefault(key_fn(record), {
                "requests": 0, "cost_usd": 0.0, "retries": 0,
                "_latencies": [],
            })
            bucket["requests"] += 1
            bucket["cost_usd"] += record.cost_usd
            bucket["retries"] += record.retries
            bucket["_latencies"].append(record.latency_s)
        for bucket in groups.values():
            latencies = sorted(bucket.pop("_latencies"))
            bucket["mean_latency_s"] = sum(latencies) / len(latencies)
            bucket["p50_latency_s"] = quantile(latencies, 0.50)
            bucket["p95_latency_s"] = quantile(latencies, 0.95)
            bucket["p99_latency_s"] = quantile(latencies, 0.99)
        return groups

    def clear(self):
        self._records.clear()

    def __repr__(self):
        return "RoutingTelemetry(records={}, cost={})".format(
            len(self), self.total_cost())
