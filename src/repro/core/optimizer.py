"""Expected-runtime ranking of zones for a workload.

Given each zone's CPU characterization and a workload's per-CPU runtime
factors (Figure 9), the expected runtime factor of routing a request to a
zone is the characterization-weighted mean factor.  The regional and hybrid
policies route to the zone minimizing it, optionally bounded by client
round-trip latency (the prior-work distance heuristic the paper builds on).
"""

from repro.common.errors import CharacterizationError, ConfigurationError


class ZoneRanker(object):
    """Ranks candidate zones by expected workload runtime."""

    def __init__(self, store, cloud=None, network=None):
        self.store = store
        self.cloud = cloud
        self.network = network or (cloud.network if cloud else None)

    # -- scoring -------------------------------------------------------------
    def expected_factor(self, zone_id, factors, now=None):
        """Characterization-weighted mean runtime factor for the zone."""
        profile = self.store.get(zone_id, now=now)
        return profile.distribution.expectation(
            lambda cpu_key: factors.get(cpu_key))

    def expected_factor_with_retry(self, zone_id, factors, retry_policy,
                                   check_seconds=0.005, base_seconds=1.0,
                                   now=None):
        """Expected factor when a retry policy filters banned CPUs.

        Successful placements run at the allowed CPUs' mean factor; each
        retry adds (check + hold) time, converted into factor units via
        ``base_seconds`` (the workload's baseline runtime).
        """
        profile = self.store.get(zone_id, now=now)
        shares = profile.shares()
        allowed = {cpu: share for cpu, share in shares.items()
                   if cpu not in retry_policy.banned_cpus}
        allowed_mass = sum(allowed.values())
        if allowed_mass <= 0:
            raise CharacterizationError(
                "retry policy bans every CPU in {}".format(zone_id))
        mean_allowed = sum(factors[cpu] * share
                           for cpu, share in allowed.items()) / allowed_mass
        expected_retries = (1.0 - allowed_mass) / allowed_mass
        expected_retries = min(expected_retries, retry_policy.max_retries)
        overhead_s = expected_retries * (check_seconds
                                         + retry_policy.hold_seconds)
        return mean_allowed + overhead_s / base_seconds

    def expected_cost(self, zone_id, factors, base_seconds, memory_mb,
                      arch="x86_64", now=None):
        """Expected billed dollars per invocation in ``zone_id``.

        Unlike :meth:`expected_factor`, this folds in the zone provider's
        billing rates — the metric that matters when candidates span
        providers with different GB-second prices.
        """
        if self.cloud is None:
            raise ConfigurationError(
                "cost ranking needs a cloud for provider billing")
        factor = self.expected_factor(zone_id, factors, now=now)
        provider = self.cloud.region_of_zone(zone_id).provider
        bill = provider.billing.bill(memory_mb, base_seconds * factor,
                                     arch=arch, requests=1)
        return float(bill.total)

    def rank_by_cost(self, zone_ids, factors, base_seconds, memory_mb,
                     arch="x86_64", client=None, max_rtt=None, now=None):
        """Zones sorted by ascending expected dollars per invocation."""
        scored = []
        for zone_id in zone_ids:
            if client is not None and max_rtt is not None:
                if self._rtt(zone_id, client) > max_rtt:
                    continue
            try:
                cost = self.expected_cost(zone_id, factors, base_seconds,
                                          memory_mb, arch=arch, now=now)
            except CharacterizationError:
                continue
            scored.append((cost, zone_id))
        scored.sort()
        return [zone_id for _, zone_id in scored]

    # -- ranking --------------------------------------------------------------
    def rank(self, zone_ids, factors, client=None, max_rtt=None, now=None):
        """Zones sorted by ascending expected factor.

        Zones without a usable characterization are skipped; ``max_rtt``
        (seconds) drops zones too far from ``client``.
        """
        scored = []
        for zone_id in zone_ids:
            if client is not None and max_rtt is not None:
                if self._rtt(zone_id, client) > max_rtt:
                    continue
            try:
                score = self.expected_factor(zone_id, factors, now=now)
            except CharacterizationError:
                continue
            scored.append((score, zone_id))
        scored.sort()
        return [zone_id for _, zone_id in scored]

    def best_zone(self, zone_ids, factors, client=None, max_rtt=None,
                  now=None):
        ranked = self.rank(zone_ids, factors, client=client,
                           max_rtt=max_rtt, now=now)
        if not ranked:
            raise CharacterizationError(
                "no routable zone among {}".format(list(zone_ids)))
        return ranked[0]

    def _rtt(self, zone_id, client):
        if self.cloud is None or self.network is None:
            raise ConfigurationError(
                "latency-bounded ranking needs a cloud and network model")
        region = self.cloud.region_of_zone(zone_id)
        return self.network.round_trip(client, region.geo)
