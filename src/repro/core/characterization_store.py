"""The characterization store: the routing system's view of the sky.

Holds the latest active (poll-based) characterization per zone, tracks
staleness (EX-4 shows volatile zones go stale within a day), and supports
**passive characterization** — folding CPU observations from ordinary
routed workload invocations back into a zone's profile, the paper's
future-work path to eliminating polling cost entirely.
"""

from repro.common.errors import CharacterizationError
from repro.sampling.characterization import (
    CharacterizationBuilder,
    CPUCharacterization,
)


class CharacterizationStore(object):
    """Zone id -> freshest CPU characterization."""

    def __init__(self, staleness_limit=None):
        """``staleness_limit``: seconds after which a profile is considered
        stale (None = never expires)."""
        self.staleness_limit = staleness_limit
        self._active = {}
        self._passive = {}

    # -- active profiles ---------------------------------------------------------
    def put(self, characterization):
        """Store an active (poll-derived) characterization."""
        self._active[characterization.zone_id] = characterization
        return characterization

    def put_campaign(self, campaign_result):
        """Store the ground truth of a finished sampling campaign."""
        return self.put(campaign_result.ground_truth())

    def get(self, zone_id, now=None):
        """The zone's profile; raises if absent or stale.

        When passive observations exist for the zone they are merged with
        the active profile, weighted by observation counts.
        """
        active = self._active.get(zone_id)
        passive = self._passive.get(zone_id)
        if active is None and (passive is None or passive.is_empty()):
            raise CharacterizationError(
                "no characterization for zone {!r}".format(zone_id))
        if active is not None and now is not None and self.is_stale(
                zone_id, now):
            raise CharacterizationError(
                "characterization for {!r} is stale ({:.0f}s old)".format(
                    zone_id, active.age_at(now)))
        if active is None:
            return passive.snapshot()
        if passive is None or passive.is_empty():
            return active
        merged = active.distribution.merge(passive.snapshot().distribution)
        return CPUCharacterization(
            zone_id=zone_id,
            distribution=merged,
            samples=active.samples + passive.samples,
            polls=active.polls,
            cost=active.cost,
            created_at=active.created_at,
        )

    def try_get(self, zone_id, now=None):
        """Like :meth:`get` but returns None instead of raising."""
        try:
            return self.get(zone_id, now=now)
        except CharacterizationError:
            return None

    def is_stale(self, zone_id, now):
        if self.staleness_limit is None:
            return False
        active = self._active.get(zone_id)
        if active is None:
            return True
        return active.age_at(now) > self.staleness_limit

    def zones(self):
        return sorted(set(self._active) | set(self._passive))

    def view(self, zone_ids=None, now=None):
        """Snapshot ``{zone_id: characterization}`` for routing decisions."""
        zone_ids = self.zones() if zone_ids is None else zone_ids
        result = {}
        for zone_id in zone_ids:
            profile = self.try_get(zone_id, now=now)
            if profile is not None:
                result[zone_id] = profile
        return result

    # -- passive characterization (polling-free refinement) ------------------------
    def record_observation(self, zone_id, cpu_key, timestamp=0.0):
        """Fold one CPU observation from a routed invocation into the zone's
        passive profile."""
        builder = self._passive.get(zone_id)
        if builder is None:
            builder = self._passive[zone_id] = CharacterizationBuilder(
                zone_id)
        builder.add_observation(cpu_key, timestamp=timestamp)

    def passive_samples(self, zone_id):
        builder = self._passive.get(zone_id)
        return builder.samples if builder is not None else 0

    def clear_passive(self, zone_id=None):
        if zone_id is None:
            self._passive.clear()
        else:
            self._passive.pop(zone_id, None)

    def __repr__(self):
        return "CharacterizationStore(zones={}, staleness_limit={})".format(
            len(self.zones()), self.staleness_limit)
