"""Client-side resilience primitives: breakers, backoff, hedging.

These are the building blocks the resilient routing path
(:meth:`~repro.core.router.SmartRouter.route_resilient`) composes:

* :class:`CircuitBreaker` — per-zone closed → open → half-open state
  machine that stops hammering a failing zone;
* :class:`ExponentialBackoff` — full-jitter delays for transient and
  throttled errors;
* :class:`HedgePolicy` — issue a second request to another zone when the
  first exceeds a latency percentile;
* :class:`ResilienceConfig` — bundle of the above plus attempt budget;
* :class:`ResilientOutcome` — the structured result of a resilient route.

All clocks are *sim* time (seconds); all randomness is seed-derived.
"""

from repro.common.errors import ConfigurationError, ReproError
from repro.common.rng import derive_rng


class BreakerOpenError(ReproError):
    """The per-zone circuit breaker refused the request."""

    def __init__(self, zone_id):
        super().__init__(
            "circuit breaker open for zone {!r}".format(zone_id))
        self.zone_id = zone_id


class CircuitBreaker(object):
    """Per-zone circuit breaker: closed → open → half-open → closed.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — requests are refused until ``cooldown_s`` of sim time has
      passed since the trip.
    * **half-open** — up to ``probe_budget`` probe requests are admitted;
      ``probe_successes`` successes close the breaker, any probe failure
      re-opens it (and restarts the cooldown).

    ``allow(now)`` is the *mutating* gate (it performs the open →
    half-open transition and consumes probe budget); ``would_allow(now)``
    answers the same question without side effects, for candidate-zone
    filtering.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("failure_threshold", "cooldown_s", "probe_budget",
                 "probe_successes", "on_transition", "state",
                 "_consecutive_failures", "_opened_at", "_probes_issued",
                 "_probes_succeeded", "transitions")

    def __init__(self, failure_threshold=5, cooldown_s=30.0, probe_budget=2,
                 probe_successes=2, on_transition=None):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")
        if probe_budget < 1:
            raise ConfigurationError("probe_budget must be >= 1")
        if not 1 <= probe_successes <= probe_budget:
            raise ConfigurationError(
                "probe_successes must be in [1, probe_budget]")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.probe_budget = int(probe_budget)
        self.probe_successes = int(probe_successes)
        self.on_transition = on_transition
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probes_succeeded = 0
        self.transitions = []

    def _transition(self, now, new_state):
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        self.transitions.append((float(now), old, new_state))
        if self.on_transition is not None:
            self.on_transition(float(now), old, new_state)

    def would_allow(self, now):
        """Non-mutating: would ``allow(now)`` admit a request?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            return now - self._opened_at >= self.cooldown_s
        return self._probes_issued < self.probe_budget

    def allow(self, now):
        """Admit or refuse a request at sim-time ``now`` (mutating)."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self._transition(now, self.HALF_OPEN)
            self._probes_issued = 0
            self._probes_succeeded = 0
        if self._probes_issued >= self.probe_budget:
            return False
        self._probes_issued += 1
        return True

    def record_success(self, now):
        if self.state == self.HALF_OPEN:
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.probe_successes:
                self._transition(now, self.CLOSED)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self, now):
        if self.state == self.HALF_OPEN:
            self._open(now)
        elif self.state == self.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open(now)

    def _open(self, now):
        self._transition(now, self.OPEN)
        self._opened_at = float(now)
        self._consecutive_failures = 0

    def __repr__(self):
        return "CircuitBreaker({}, failures={})".format(
            self.state, self._consecutive_failures)


class ExponentialBackoff(object):
    """Full-jitter exponential backoff (AWS architecture-blog flavour).

    ``delay(attempt)`` draws uniformly from
    ``[0, min(cap_s, base_s * multiplier**attempt)]`` — the full-jitter
    variant, which empirically minimises total work under contention
    compared with equal-jitter or no jitter.
    """

    __slots__ = ("base_s", "cap_s", "multiplier", "_rng")

    def __init__(self, base_s=0.05, cap_s=5.0, multiplier=2.0, seed=0):
        if base_s <= 0 or cap_s <= 0:
            raise ConfigurationError("base_s and cap_s must be positive")
        if multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self._rng = derive_rng(seed, "backoff")

    def ceiling(self, attempt):
        """The deterministic upper bound for ``delay(attempt)``."""
        return min(self.cap_s, self.base_s * self.multiplier ** attempt)

    def delay(self, attempt):
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return float(self._rng.uniform(0.0, self.ceiling(attempt)))


class HedgePolicy(object):
    """When to issue a speculative duplicate request to another zone.

    A hedge fires when the primary's latency exceeds the zone's recent
    ``percentile`` latency (from :class:`~repro.core.health.ZoneHealthTracker`
    samples).  Below ``min_observations`` samples the policy abstains —
    hedging on noise burns money for nothing.
    """

    __slots__ = ("percentile", "min_observations", "max_hedges")

    def __init__(self, percentile=0.95, min_observations=20, max_hedges=1):
        if not 0.0 < percentile < 1.0:
            raise ConfigurationError("percentile must be in (0, 1)")
        if min_observations < 1:
            raise ConfigurationError("min_observations must be >= 1")
        if max_hedges < 1:
            raise ConfigurationError("max_hedges must be >= 1")
        self.percentile = float(percentile)
        self.min_observations = int(min_observations)
        self.max_hedges = int(max_hedges)

    def threshold(self, health, zone_id):
        """Latency (s) beyond which to hedge, or None to abstain."""
        if health is None:
            return None
        if len(health.latency_samples(zone_id)) < self.min_observations:
            return None
        return health.latency_percentile(zone_id, self.percentile)


class ResilienceConfig(object):
    """Bundle of resilience knobs for ``route_resilient``."""

    __slots__ = ("backoff", "hedge", "max_attempts", "failover")

    def __init__(self, backoff=None, hedge=None, max_attempts=4,
                 failover=True):
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self.backoff = backoff if backoff is not None else ExponentialBackoff()
        self.hedge = hedge
        self.max_attempts = int(max_attempts)
        self.failover = bool(failover)


class ResilientOutcome(object):
    """What a resilient route actually did, and what it cost.

    ``request`` is the winning :class:`~repro.core.router.RoutedRequest`;
    ``hedge_request`` (if any) is the speculative duplicate.  ``latency_s``
    is the *effective* client-observed latency: backoff waits plus, when a
    hedge won, the hedge-trigger threshold plus the hedge's own latency.
    """

    __slots__ = ("request", "hedge_request", "attempts", "backoff_s",
                 "hedged", "hedge_won", "failovers", "latency_s")

    def __init__(self, request, hedge_request=None, attempts=1,
                 backoff_s=0.0, hedged=False, hedge_won=False,
                 failovers=0, latency_s=None):
        self.request = request
        self.hedge_request = hedge_request
        self.attempts = attempts
        self.backoff_s = backoff_s
        self.hedged = hedged
        self.hedge_won = hedge_won
        self.failovers = failovers
        self.latency_s = (latency_s if latency_s is not None
                          else request.latency_s + backoff_s)

    @property
    def zone_id(self):
        winner = (self.hedge_request
                  if self.hedge_won and self.hedge_request is not None
                  else self.request)
        return winner.zone_id

    @property
    def retries(self):
        return self.request.retries

    @property
    def cost(self):
        """Total spend, including the losing side of a hedge."""
        total = self.request.cost
        if self.hedge_request is not None:
            total = total + self.hedge_request.cost
        return total

    def __repr__(self):
        return ("ResilientOutcome(zone={}, attempts={}, failovers={}, "
                "hedged={}, latency={:.3f}s)".format(
                    self.zone_id, self.attempts, self.failovers,
                    self.hedged, self.latency_s))
