"""The SkyController: the sky-computing middleware layer (§4.6).

One object owning the full serverless-sky lifecycle:

* **provisioning** — deploy the dynamic-function mesh and per-zone
  sampling endpoints;
* **profiling** — refresh zone characterizations, but only when the
  stability tracker says the current profile has gone stale (volatile
  zones daily, stable zones weekly — the §4.4 cost optimization);
* **routing** — serve workload requests/bursts through a SmartRouter with
  any policy, optionally feeding passive observations back into the store.

This is what a downstream user adopts: point it at a cloud, call
``submit``.
"""

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.core.characterization_store import CharacterizationStore
from repro.core.policies import HybridPolicy
from repro.core.router import SmartRouter
from repro.core.telemetry import RoutingTelemetry
from repro.core.runner import WorkloadRunner
from repro.dynfunc.handler import UniversalDynamicFunctionHandler
from repro.sampling.campaign import SamplingCampaign
from repro.sampling.stability import ZoneStabilityTracker
from repro.skymesh.mesh import SkyMesh
from repro.workloads.registry import resolve_runtime_model


class SkyController(object):
    """Characterization-driven routing with adaptive profiling cadence."""

    def __init__(self, cloud, account, zones, policy=None, memory_mb=2048,
                 arch="x86_64", polls_per_refresh=6, poll_requests=1000,
                 sampling_count=10, passive=True, client=None,
                 tracker=None, recovery_gap=None, obs=None, telemetry=None,
                 health=None, resilience=None):
        if not zones:
            raise ConfigurationError("controller needs candidate zones")
        self.cloud = cloud
        self.account = account
        self.zones = list(zones)
        self.policy = policy or HybridPolicy("focus_fastest")
        self.memory_mb = memory_mb
        self.arch = arch
        self.polls_per_refresh = int(polls_per_refresh)
        self.poll_requests = int(poll_requests)
        # After sampling, wait for the sampling FIs' keep-alives to lapse
        # so profiling traffic never crowds out the workload itself.
        if recovery_gap is None:
            provider = cloud.region_of_zone(self.zones[0]).provider
            recovery_gap = provider.keepalive * 1.2
        self.recovery_gap = float(recovery_gap)
        self.passive = passive
        self.client = client
        # Observability is opt-in per controller: passing an
        # ``Observability`` wires its bus through the cloud's zones and
        # pools, and every router created here traces + records telemetry.
        self.obs = obs
        if obs is not None:
            obs.install(cloud)
        # Resilience is opt-in the same way: a shared ZoneHealthTracker
        # (breaker state survives across routers) plus a ResilienceConfig
        # handed to every router created here.
        self.health = health
        self.resilience = resilience
        self.telemetry = telemetry if telemetry is not None \
            else RoutingTelemetry()
        self.mesh = SkyMesh(cloud)
        self.store = CharacterizationStore()
        self.tracker = tracker or ZoneStabilityTracker()
        self.runner = WorkloadRunner(cloud)
        self._sampling_cost = Money(0)
        self._sampling_endpoints = {}
        self._provision(sampling_count)

    # -- provisioning -----------------------------------------------------------
    def _provision(self, sampling_count):
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        for index, zone_id in enumerate(self.zones):
            self.mesh.register(self.cloud.deploy(
                self.account, zone_id, "dynamic", self.memory_mb,
                arch=self.arch, handler=handler))
            self._sampling_endpoints[zone_id] = (
                self.mesh.deploy_sampling_endpoints(
                    self.account, zone_id, count=sampling_count,
                    memory_base_mb=2048 + index * (sampling_count + 1)))

    # -- profiling ----------------------------------------------------------------
    @property
    def sampling_cost(self):
        return self._sampling_cost

    def refresh_zone(self, zone_id):
        """Force-refresh one zone's characterization now."""
        campaign = SamplingCampaign(
            self.cloud, self._sampling_endpoints[zone_id],
            n_requests=self.poll_requests,
            max_polls=self.polls_per_refresh, inter_poll_gap=1.0)
        result = campaign.run()
        profile = result.ground_truth()
        self.store.put(profile)
        self.tracker.observe(profile)
        self._sampling_cost = self._sampling_cost + result.total_cost
        bus = self.cloud.bus
        if bus.enabled:
            bus.emit("controller.refresh", self.cloud.clock.now,
                     zone=zone_id, polls=result.polls_run,
                     saturated=result.saturated,
                     cost_usd=float(result.total_cost),
                     stability=self.tracker.classify(zone_id))
        return profile

    def refresh_due_zones(self, force=False):
        """Refresh every zone whose profile has gone stale.

        Stable zones are re-sampled far less often than volatile ones —
        the adaptive-cadence saving the paper projects.  Returns the zones
        refreshed.
        """
        refreshed = []
        now = self.cloud.clock.now
        for zone_id in self.zones:
            if force or self.tracker.needs_refresh(zone_id, now):
                self.refresh_zone(zone_id)
                refreshed.append(zone_id)
        if refreshed:
            bus = self.cloud.bus
            if bus.enabled:
                bus.emit("controller.staleness", now,
                         stale=len(refreshed), checked=len(self.zones),
                         zones=",".join(refreshed), forced=bool(force))
            self.cloud.clock.advance(self.recovery_gap)
        return refreshed

    def classification(self):
        """Current stability label per zone."""
        return {zone_id: self.tracker.classify(zone_id)
                for zone_id in self.zones}

    # -- routing --------------------------------------------------------------------
    def router_for(self, workload):
        return SmartRouter(self.cloud, self.mesh, self.store, self.policy,
                           workload, self.zones, memory_mb=self.memory_mb,
                           arch=self.arch, client=self.client,
                           passive=self.passive, telemetry=self.telemetry,
                           obs=self.obs, health=self.health,
                           resilience=self.resilience)

    def submit(self, workload, payload=None):
        """Route one request of ``workload``; refreshes stale profiles
        first.  With a health tracker attached the request takes the
        resilient path (breakers, backoff, failover)."""
        self.refresh_due_zones()
        router = self.router_for(workload)
        if self.health is not None:
            return router.route_resilient(self.resilience)
        return router.route()

    def submit_burst(self, workload, n_requests):
        """Route a burst through the batched fast path; returns the
        :class:`~repro.core.runner.BatchedBurstResult`."""
        self.refresh_due_zones()
        router = self.router_for(workload)
        decision = router.decide()
        deployment = self.mesh.endpoint(decision.zone_id, self.memory_mb,
                                        self.arch)
        burst = self.runner.run_batched_burst(
            deployment, workload, n_requests,
            retry_policy=decision.retry_policy,
            policy_name=self.policy.name)
        if self.passive:
            for cpu_key, count in burst.cpu_counts.items():
                for _ in range(min(count, 50)):  # cap the bookkeeping
                    self.store.record_observation(
                        decision.zone_id, cpu_key,
                        timestamp=self.cloud.clock.now)
        return burst

    def __repr__(self):
        return "SkyController(zones={}, policy={})".format(
            self.zones, self.policy.name)
