"""SAAF report objects and aggregation helpers.

A single invocation yields one report; a sampling poll yields one report per
served request.  The characterization layer only needs the CPU attribute,
so for batched polls we expose the aggregated CPU counts directly instead of
materializing 1,000 dicts per poll.
"""

from repro.cloudsim.cpu import cpu_by_key
from repro.saaf.inspector import Inspector


class SAAFReport(object):
    """Typed view over a SAAF report dict."""

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = dict(data)

    @property
    def cpu_key(self):
        return self.data.get("cpuModel")

    @property
    def cpu_type(self):
        return self.data.get("cpuType")

    @property
    def is_cold(self):
        return bool(self.data.get("newcontainer", 0))

    @property
    def runtime_ms(self):
        return self.data.get("runtime", 0.0)

    @property
    def zone(self):
        return self.data.get("functionRegion")

    def __getitem__(self, key):
        return self.data[key]

    def __contains__(self, key):
        return key in self.data

    def __repr__(self):
        return "SAAFReport(cpu={}, runtime={:.1f}ms)".format(
            self.cpu_key, self.runtime_ms)


def report_from_invocation(invocation):
    """Full SAAF report for one simulated invocation."""
    return SAAFReport(Inspector(invocation).inspect_all().finish())


def reports_from_placement(result, max_reports=None):
    """Materialize per-request reports from a batched placement result.

    Reports carry the CPU attributes; identity fields are synthesized per
    request.  ``max_reports`` caps materialization for very large polls.
    """
    reports = []
    index = 0
    for cpu_key in sorted(result.request_cpu_counts):
        cpu = cpu_by_key(cpu_key)
        for _ in range(result.request_cpu_counts[cpu_key]):
            if max_reports is not None and len(reports) >= max_reports:
                return reports
            reports.append(SAAFReport({
                "version": 0.6,
                "lang": "python",
                "uuid": "{}-{}-{}".format(result.zone_id,
                                          int(result.timestamp), index),
                "cpuType": cpu.model_name,
                "cpuModel": cpu.key,
                "cpuMhz": cpu.clock_ghz * 1000.0,
                "cpuArch": cpu.arch,
                "cpuVendor": cpu.vendor,
                "functionRegion": result.zone_id,
                "runtime": result.duration * 1000.0,
                "startTime": result.timestamp,
            }))
            index += 1
    return reports


def aggregate_cpu_counts(reports):
    """Count reports per CPU key — the input to a characterization."""
    counts = {}
    for report in reports:
        key = report.cpu_key if isinstance(report, SAAFReport) else (
            report.get("cpuModel"))
        if key is None:
            continue
        counts[key] = counts.get(key, 0) + 1
    return counts
