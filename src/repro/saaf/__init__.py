"""A SAAF-style profiling layer for simulated function instances.

The paper uses the Serverless Application Analytics Framework (SAAF) to
observe, from *inside* a running function, the hardware it landed on: CPU
model string, clock speed, host identity, whether the container is new, and
runtime metrics.  This package reproduces SAAF's report schema on top of the
simulator so downstream code (characterization, routing) consumes reports
exactly the way SAAF consumers do.
"""

from repro.saaf.inspector import Inspector
from repro.saaf.report import (
    SAAFReport,
    aggregate_cpu_counts,
    report_from_invocation,
    reports_from_placement,
)

__all__ = [
    "Inspector",
    "SAAFReport",
    "aggregate_cpu_counts",
    "report_from_invocation",
    "reports_from_placement",
]
