"""The Inspector: SAAF's in-function introspection object.

Real SAAF exposes ``inspectCPU()``, ``inspectContainer()``,
``inspectPlatform()`` and friends, accumulating attributes into a dict that
is returned with the function's response.  Our Inspector reads the same
attributes from a simulated :class:`~repro.cloudsim.cloud.Invocation`.
"""

from repro.cloudsim.cpu import cpu_by_key


class Inspector(object):
    """Collects profiling attributes for one function execution.

    Mirrors SAAF's fluent usage::

        inspector = Inspector(invocation)
        inspector.inspect_cpu()
        inspector.inspect_container()
        report = inspector.finish()
    """

    def __init__(self, invocation):
        self._invocation = invocation
        self._attributes = {
            "version": 0.6,
            "lang": "python",
            "uuid": invocation.request_id,
        }

    # -- probes ---------------------------------------------------------------
    def inspect_cpu(self):
        """Record CPU attributes as read from /proc/cpuinfo inside the FI."""
        cpu = cpu_by_key(self._invocation.cpu_key)
        self._attributes.update({
            "cpuType": cpu.model_name,
            "cpuModel": cpu.key,
            "cpuMhz": cpu.clock_ghz * 1000.0,
            "cpuArch": cpu.arch,
            "cpuVendor": cpu.vendor,
        })
        return self

    def inspect_container(self):
        """Record container/FI identity and freshness."""
        self._attributes.update({
            "containerID": self._invocation.instance_id,
            "vmID": self._invocation.host_id,
            "newcontainer": 0 if self._invocation.reused else 1,
        })
        return self

    def inspect_platform(self):
        """Record platform-level attributes."""
        self._attributes.update({
            "platform": "simulated-faas",
            "functionRegion": self._invocation.zone_id,
        })
        return self

    def inspect_all(self):
        self.inspect_cpu()
        self.inspect_container()
        self.inspect_platform()
        return self

    def add_attribute(self, key, value):
        """SAAF lets handlers attach custom attributes."""
        self._attributes[key] = value
        return self

    # -- results -----------------------------------------------------------------
    def finish(self):
        """Finalize and return the report dict (SAAF's ``inspector.finish()``)."""
        self._attributes.update({
            "runtime": self._invocation.runtime_s * 1000.0,
            "latency": self._invocation.latency_s * 1000.0,
            "coldTime": self._invocation.cold_start_s * 1000.0,
            "startTime": self._invocation.timestamp,
        })
        return dict(self._attributes)
