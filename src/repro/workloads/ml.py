"""The logistic_regression workload: two-threaded SGD (Table 1)."""

import threading

import numpy as np

from repro.workloads.base import Workload


class LogisticRegression(Workload):
    """Runs logistic-regression SGD across two threads on a generated
    dataset for the requested epochs."""

    name = "logistic_regression"
    vcpus = 2
    base_seconds = 9.0
    description = ("Runs logistic-regression SGD across two threads on a "
                   "generated dataset for the requested epochs.")

    def generate_input(self, rng, scale=1.0):
        samples = max(128, int(2000 * scale))
        features = max(4, int(20 * scale))
        true_weights = rng.normal(0.0, 1.0, size=features)
        inputs = rng.normal(0.0, 1.0, size=(samples, features))
        logits = inputs.dot(true_weights)
        labels = (logits + rng.normal(0.0, 0.5, size=samples) > 0).astype(
            float)
        return {
            "X": inputs,
            "y": labels,
            "epochs": max(2, int(10 * scale)),
            "lr": 0.1,
        }

    def run(self, data):
        inputs, labels = data["X"], data["y"]
        samples, features = inputs.shape
        weights = np.zeros(features)
        half = samples // 2
        shards = ((inputs[:half], labels[:half]),
                  (inputs[half:], labels[half:]))

        def sgd_shard(shard_inputs, shard_labels):
            # Hogwild-style updates: both threads write the shared weight
            # vector without locking, as the original workload does.
            for _ in range(data["epochs"]):
                predictions = _sigmoid(shard_inputs.dot(weights))
                gradient = shard_inputs.T.dot(
                    predictions - shard_labels) / len(shard_labels)
                weights[:] = weights - data["lr"] * gradient

        threads = [threading.Thread(target=sgd_shard, args=shard)
                   for shard in shards]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        predictions = _sigmoid(inputs.dot(weights))
        accuracy = float(np.mean((predictions > 0.5) == (labels > 0.5)))
        loss = float(np.mean(
            -labels * np.log(predictions + 1e-12)
            - (1 - labels) * np.log(1 - predictions + 1e-12)))
        return {"weights": weights, "accuracy": accuracy, "loss": loss}

    def summarize(self, output):
        return {"accuracy": round(output["accuracy"], 4),
                "loss": round(output["loss"], 6)}


def _sigmoid(values):
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30, 30)))
