"""Disk workloads: disk_writer and disk_write_and_process (Table 1).

These exercise the FI's ephemeral filesystem.  The original
``disk_write_and_process`` pipes the file through shell commands (``wc``,
``base64``, ``sha1sum``, ``cat``); for portability we perform the exact same
computations in-process (documented substitution — the work per byte is the
same, without forking a shell).
"""

import base64
import hashlib
import os
import tempfile

from repro.workloads.base import Workload

_WORDS = ("serverless sky function instance zone region cloud "
          "hardware heterogeneity sampling poll retry route").split()


def _generate_text(rng, approx_bytes):
    words = []
    size = 0
    while size < approx_bytes:
        word = _WORDS[int(rng.integers(0, len(_WORDS)))]
        words.append(word)
        size += len(word) + 1
    return " ".join(words)


class DiskWriter(Workload):
    """Generates text, repeatedly writes it to disk, and deletes it."""

    name = "disk_writer"
    vcpus = 1
    base_seconds = 4.0
    description = ("Generates text, repeatedly writes it to disk, and "
                   "deletes it.")

    def generate_input(self, rng, scale=1.0):
        return {
            "text": _generate_text(rng, approx_bytes=int(65536 * scale)),
            "rounds": max(2, int(12 * scale)),
        }

    def run(self, data):
        written = 0
        for _ in range(data["rounds"]):
            fd, path = tempfile.mkstemp(prefix="disk-writer-")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(data["text"])
                written += os.path.getsize(path)
            finally:
                os.unlink(path)
        return {"bytes_written": written, "rounds": data["rounds"]}

    def summarize(self, output):
        return output


class DiskWriteAndProcess(Workload):
    """Writes a large text file and runs wc/base64/sha1sum/cat-equivalent
    passes over it in a loop."""

    name = "disk_write_and_process"
    vcpus = 1
    base_seconds = 5.0
    description = ("Writes a large text file and then runs several shell "
                   "commands (wc, base64, sha1sum, cat) on it in a loop.")

    def generate_input(self, rng, scale=1.0):
        return {
            "text": _generate_text(rng, approx_bytes=int(131072 * scale)),
            "rounds": max(1, int(6 * scale)),
        }

    def run(self, data):
        fd, path = tempfile.mkstemp(prefix="disk-process-")
        results = []
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(data["text"])
            for _ in range(data["rounds"]):
                with open(path, "rb") as handle:   # cat
                    raw = handle.read()
                lines = raw.count(b"\n") + (0 if raw.endswith(b"\n") else 1)
                words = len(raw.split())           # wc
                encoded = base64.b64encode(raw)    # base64
                digest = hashlib.sha1(raw).hexdigest()  # sha1sum
                results.append({
                    "lines": lines,
                    "words": words,
                    "chars": len(raw),
                    "b64_bytes": len(encoded),
                    "sha1": digest,
                })
        finally:
            os.unlink(path)
        return results

    def summarize(self, output):
        last = output[-1]
        return {"rounds": len(output), "words": last["words"],
                "sha1": last["sha1"]}
