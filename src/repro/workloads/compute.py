"""Compute-bound workloads: math_service and matrix_multiply (Table 1)."""

import numpy as np

from repro.workloads.base import Workload


class MathService(Workload):
    """Builds large arrays and repeatedly performs arithmetic on them."""

    name = "math_service"
    vcpus = 2
    base_seconds = 7.5
    description = ("Builds large arrays and repeatedly performs arithmetic "
                   "operations on them.")

    def generate_input(self, rng, scale=1.0):
        size = max(1024, int(200000 * scale))
        return {
            "a": rng.random(size),
            "b": rng.random(size) + 0.5,
            "rounds": max(2, int(25 * scale)),
        }

    def run(self, data):
        a, b = data["a"], data["b"]
        acc = np.zeros_like(a)
        for round_index in range(data["rounds"]):
            acc += a * b
            acc -= np.sqrt(np.abs(a - b))
            acc *= 1.0 + 1.0 / (round_index + 2)
            acc /= b
        return acc

    def summarize(self, output):
        return {"elements": int(output.size),
                "checksum": round(float(np.mean(output)), 6)}


class MatrixMultiply(Workload):
    """Generates large matrices and executes multiply and dot operations
    in loops."""

    name = "matrix_multiply"
    vcpus = 2
    base_seconds = 6.5
    description = ("Generates large matrices and executes multiply and dot "
                   "operations in loops.")

    def generate_input(self, rng, scale=1.0):
        side = max(16, int(160 * scale))
        return {
            "left": rng.random((side, side)),
            "right": rng.random((side, side)),
            "rounds": max(2, int(10 * scale)),
        }

    def run(self, data):
        product = data["left"]
        for _ in range(data["rounds"]):
            product = product.dot(data["right"])
            # Renormalize to keep values finite across rounds.
            product /= np.linalg.norm(product)
        return product

    def summarize(self, output):
        return {"shape": list(output.shape),
                "norm": round(float(np.linalg.norm(output)), 6)}
