"""Per-CPU runtime factors for the twelve workloads (Figure 9).

A factor is *relative runtime normalized to the Intel Xeon 2.5 GHz
baseline*: factor < 1 is faster than baseline, factor > 1 slower.  The
x86 Lambda CPUs carry workload-specific calibrations from the paper's
Figure 9; every other catalog CPU falls back to the generic
``1 / base_speed`` of its :class:`~repro.cloudsim.cpu.CPUModel`.
"""

from repro.common.errors import ConfigurationError
from repro.cloudsim.cpu import CPU_CATALOG

# workload -> {cpu_key: runtime factor vs. xeon-2.5}.
# Columns: xeon-3.0 (fastest), xeon-2.9 (older part, slower), amd-epyc.
_FIGURE9_FACTORS = {
    "graph_mst":              {"xeon-3.0": 0.90, "xeon-2.9": 1.20, "amd-epyc": 1.30},
    "graph_bfs":              {"xeon-3.0": 0.88, "xeon-2.9": 1.18, "amd-epyc": 1.28},
    "pagerank":               {"xeon-3.0": 0.89, "xeon-2.9": 1.22, "amd-epyc": 1.32},
    "disk_writer":            {"xeon-3.0": 0.97, "xeon-2.9": 1.05, "amd-epyc": 0.96},
    "disk_write_and_process": {"xeon-3.0": 0.95, "xeon-2.9": 1.08, "amd-epyc": 1.02},
    "zipper":                 {"xeon-3.0": 0.88, "xeon-2.9": 1.22, "amd-epyc": 1.33},
    "thumbnailer":            {"xeon-3.0": 0.90, "xeon-2.9": 1.20, "amd-epyc": 1.25},
    "sha1_hash":              {"xeon-3.0": 0.96, "xeon-2.9": 1.10, "amd-epyc": 1.05},
    "json_flattener":         {"xeon-3.0": 0.89, "xeon-2.9": 1.21, "amd-epyc": 1.30},
    "math_service":           {"xeon-3.0": 0.87, "xeon-2.9": 1.28, "amd-epyc": 1.48},
    "matrix_multiply":        {"xeon-3.0": 0.86, "xeon-2.9": 1.25, "amd-epyc": 1.40},
    "logistic_regression":    {"xeon-3.0": 0.87, "xeon-2.9": 1.30, "amd-epyc": 1.50},
}

BASELINE_CPU = "xeon-2.5"


def factors_for(workload_name):
    """Full cpu_key -> runtime factor map for a workload.

    Covers every CPU in the catalog: Figure 9 calibrations for the Lambda
    x86 parts, generic ``1 / base_speed`` elsewhere.
    """
    if workload_name not in _FIGURE9_FACTORS:
        raise ConfigurationError(
            "no performance profile for workload {!r}".format(workload_name))
    specific = _FIGURE9_FACTORS[workload_name]
    factors = {BASELINE_CPU: 1.0}
    for cpu_key, cpu in CPU_CATALOG.items():
        if cpu_key in specific:
            factors[cpu_key] = specific[cpu_key]
        elif cpu_key not in factors:
            factors[cpu_key] = 1.0 / cpu.base_speed
    return factors


def cpu_factor(workload_name, cpu_key):
    """Runtime factor of one workload on one CPU."""
    return factors_for(workload_name)[cpu_key]


def normalized_performance_table(workload_names=None, cpu_keys=None):
    """The Figure 9 table: runtime per CPU normalized to the 2.5 GHz Xeon.

    Returns ``{workload: {cpu_key: factor}}`` restricted to the requested
    rows/columns (defaults: all twelve workloads × the four Lambda CPUs).
    """
    if workload_names is None:
        workload_names = sorted(_FIGURE9_FACTORS)
    if cpu_keys is None:
        cpu_keys = (BASELINE_CPU, "xeon-2.9", "xeon-3.0", "amd-epyc")
    table = {}
    for name in workload_names:
        factors = factors_for(name)
        table[name] = {cpu: factors[cpu] for cpu in cpu_keys}
    return table


def profiled_workload_names():
    return sorted(_FIGURE9_FACTORS)
