"""The zipper workload: generate files and compress them into ZIP archives.

Table 1 lists zipper at 2 vCPUs: the original compresses two archives in
parallel threads (zlib releases the GIL, so threading is genuine
parallelism here).
"""

import io
import threading
import zipfile

from repro.workloads.base import Workload


class Zipper(Workload):
    """Generates files and compresses them into ZIP archives."""

    name = "zipper"
    vcpus = 2
    base_seconds = 8.0
    description = "Generates files and compresses them into ZIP archives."

    def generate_input(self, rng, scale=1.0):
        file_count = max(2, int(6 * scale))
        file_bytes = max(4096, int(98304 * scale))
        # Mix compressible (tiled) and incompressible (random) content.
        files = {}
        for index in range(file_count):
            if index % 2 == 0:
                tile = rng.integers(0, 256, size=256, dtype="u1").tobytes()
                files["tiled-{}.bin".format(index)] = tile * (
                    file_bytes // len(tile) + 1)
            else:
                files["random-{}.bin".format(index)] = rng.integers(
                    0, 256, size=file_bytes, dtype="u1").tobytes()
        return files

    def run(self, data):
        names = sorted(data)
        halves = (names[0::2], names[1::2])
        archives = [None, None]

        def compress(slot, subset):
            buffer = io.BytesIO()
            with zipfile.ZipFile(buffer, "w",
                                 compression=zipfile.ZIP_DEFLATED) as archive:
                for name in subset:
                    archive.writestr(name, data[name])
            archives[slot] = buffer.getvalue()

        threads = [threading.Thread(target=compress, args=(slot, subset))
                   for slot, subset in enumerate(halves)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return archives

    def summarize(self, output):
        return {
            "archives": len(output),
            "compressed_bytes": sum(len(a) for a in output),
        }
