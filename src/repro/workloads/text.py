"""Text workloads: sha1_hash and json_flattener (Table 1)."""

import hashlib

from repro.workloads.base import Workload


class Sha1Hash(Workload):
    """Takes an input string and produces its SHA-1 hash."""

    name = "sha1_hash"
    vcpus = 1
    base_seconds = 2.5
    description = "Takes an input string and produces its SHA-1 hash."

    def generate_input(self, rng, scale=1.0):
        payload = rng.integers(0, 256, size=int(262144 * scale),
                               dtype="u1").tobytes()
        return {"data": payload, "rounds": max(1, int(40 * scale))}

    def run(self, data):
        digest = None
        blob = data["data"]
        for _ in range(data["rounds"]):
            digest = hashlib.sha1(blob).hexdigest()
            blob = digest.encode("ascii") + blob[:-40] if len(blob) > 40 \
                else digest.encode("ascii")
        return digest

    def summarize(self, output):
        return {"sha1": output}


class JsonFlattener(Workload):
    """Recursively generates a large JSON object and flattens it into
    key-value pairs."""

    name = "json_flattener"
    vcpus = 1
    base_seconds = 5.0
    description = ("Recursively generates a large JSON object and flattens "
                   "it into key-value pairs.")

    def generate_input(self, rng, scale=1.0):
        depth = max(2, int(5 * min(scale, 2.0)))
        breadth = max(2, int(6 * scale))
        return self._generate_node(rng, depth, breadth)

    def _generate_node(self, rng, depth, breadth):
        if depth == 0:
            kind = int(rng.integers(0, 3))
            if kind == 0:
                return float(rng.random())
            if kind == 1:
                return int(rng.integers(0, 10 ** 6))
            return "value-{}".format(int(rng.integers(0, 10 ** 6)))
        if rng.random() < 0.3:
            return [self._generate_node(rng, depth - 1, breadth)
                    for _ in range(breadth)]
        return {"key_{}".format(i): self._generate_node(rng, depth - 1,
                                                        breadth)
                for i in range(breadth)}

    def run(self, data):
        flat = {}
        self._flatten(data, "", flat)
        return flat

    def _flatten(self, node, prefix, out):
        if isinstance(node, dict):
            for key, value in node.items():
                self._flatten(value, prefix + "." + key if prefix else key,
                              out)
        elif isinstance(node, list):
            for index, value in enumerate(node):
                self._flatten(value, "{}[{}]".format(prefix, index), out)
        else:
            out[prefix] = node

    def summarize(self, output):
        return {"pairs": len(output)}
