"""Workload registry: name -> singleton workload instance."""

from repro.common.errors import ConfigurationError, PayloadError
from repro.workloads.compress import Zipper
from repro.workloads.compute import MathService, MatrixMultiply
from repro.workloads.disk import DiskWriteAndProcess, DiskWriter
from repro.workloads.graphs import GraphBFS, GraphMST, PageRank
from repro.workloads.media import Thumbnailer
from repro.workloads.ml import LogisticRegression
from repro.workloads.text import JsonFlattener, Sha1Hash

_WORKLOAD_CLASSES = (
    GraphMST,
    GraphBFS,
    PageRank,
    DiskWriter,
    DiskWriteAndProcess,
    Zipper,
    Thumbnailer,
    Sha1Hash,
    JsonFlattener,
    MathService,
    MatrixMultiply,
    LogisticRegression,
)

_REGISTRY = {cls.name: cls() for cls in _WORKLOAD_CLASSES}

WORKLOAD_NAMES = tuple(sorted(_REGISTRY))


def workload_by_name(name):
    """Look up a workload instance by its Table-1 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError("unknown workload {!r}".format(name))


def all_workloads():
    """All twelve workloads, sorted by name."""
    return [_REGISTRY[name] for name in WORKLOAD_NAMES]


_MODEL_CACHE = {}


def resolve_runtime_model(payload):
    """Payload -> runtime model, for universal dynamic-function endpoints.

    Payloads built by :meth:`repro.workloads.base.Workload.payload` carry
    their workload name in ``args["workload"]``.
    """
    args = payload.args
    name = args.get("workload") if isinstance(args, dict) else None
    if name is None:
        raise PayloadError(
            "payload does not identify its workload (args['workload'])")
    model = _MODEL_CACHE.get(name)
    if model is None:
        model = _MODEL_CACHE[name] = workload_by_name(name).runtime_model()
    return model


def memory_aware_resolver(memory_mb):
    """A payload resolver for one mesh rung's memory setting.

    Wraps each workload's runtime model with the Lambda CPU-allocation
    slowdown for ``memory_mb`` (see :mod:`repro.workloads.memory`), so a
    128 MB deployment genuinely runs slower than the 2 GB rung the
    Figure-9 factors were calibrated at.
    """
    from repro.cloudsim.handlers import ScaledWorkloadHandler
    from repro.workloads.memory import memory_speed_factor

    def resolve(payload):
        model = resolve_runtime_model(payload)
        workload = workload_by_name(model.name)
        scale = memory_speed_factor(memory_mb, vcpus=workload.vcpus)
        if abs(scale - 1.0) < 1e-9:
            return model
        return ScaledWorkloadHandler(model, scale)

    return resolve
