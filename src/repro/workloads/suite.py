"""The workload suite runner: execute Table 1 for real and report.

Runs every workload's genuine implementation through the dynamic-function
runtime, timing execution — the local measurement a user makes to sanity-
check the simulator's runtime models before trusting routing decisions.
"""

import math
import time
from repro.common.errors import ConfigurationError
from repro.dynfunc.runtime import DynamicFunctionRuntime
from repro.workloads.registry import WORKLOAD_NAMES, workload_by_name


class SuiteRow(object):
    """Timing results for one workload."""

    __slots__ = ("name", "vcpus", "runs", "mean_seconds", "stdev_seconds",
                 "sample_summary")

    def __init__(self, name, vcpus, runs, mean_seconds, stdev_seconds,
                 sample_summary):
        self.name = name
        self.vcpus = vcpus
        self.runs = runs
        self.mean_seconds = mean_seconds
        self.stdev_seconds = stdev_seconds
        self.sample_summary = sample_summary

    def __repr__(self):
        return "SuiteRow({}, mean={:.4f}s)".format(self.name,
                                                   self.mean_seconds)


class SuiteReport(object):
    """All rows plus convenience accessors."""

    def __init__(self, rows, scale):
        self.rows = list(rows)
        self.scale = scale

    def __len__(self):
        return len(self.rows)

    def row(self, name):
        for row in self.rows:
            if row.name == name:
                return row
        raise ConfigurationError("no suite row for {!r}".format(name))

    def total_seconds(self):
        return sum(row.mean_seconds * row.runs for row in self.rows)

    def to_rows(self):
        """CSV-ready dict rows."""
        return [{
            "workload": row.name,
            "vcpus": row.vcpus,
            "runs": row.runs,
            "mean_seconds": round(row.mean_seconds, 6),
            "stdev_seconds": round(row.stdev_seconds, 6),
        } for row in self.rows]


class WorkloadSuite(object):
    """Executes the twelve workloads for real, with timing."""

    def __init__(self, scale=0.1, repetitions=3, seed=0):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        self.scale = float(scale)
        self.repetitions = int(repetitions)
        self.seed = seed

    def run(self, names=None):
        """Run the suite; ``names`` restricts to a subset of workloads."""
        names = sorted(names) if names is not None else list(
            WORKLOAD_NAMES)
        runtime = DynamicFunctionRuntime()
        rows = []
        for name in names:
            workload = workload_by_name(name)
            payload = workload.payload(args={"seed": self.seed,
                                             "scale": self.scale})
            runtime.handle(payload)  # warm decode + JIT-ish effects
            timings = []
            sample_summary = None
            for repetition in range(self.repetitions):
                rep_payload = workload.payload(
                    args={"seed": self.seed + repetition,
                          "scale": self.scale})
                started = time.perf_counter()
                result = runtime.handle(rep_payload)
                timings.append(time.perf_counter() - started)
                sample_summary = result.value["summary"]
            mean = sum(timings) / len(timings)
            if len(timings) > 1:
                variance = (sum((t - mean) ** 2 for t in timings)
                            / (len(timings) - 1))
                stdev = math.sqrt(variance)
            else:
                stdev = 0.0
            rows.append(SuiteRow(name, workload.vcpus, len(timings),
                                 mean, stdev, sample_summary))
        return SuiteReport(rows, self.scale)
