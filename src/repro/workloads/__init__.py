"""The paper's twelve serverless workloads (Table 1).

Each workload exists in two forms:

* **runnable code** — a real Python implementation (`generate_input` /
  `run`), executed end-to-end by tests, examples, and the dynamic-function
  runtime;
* **a calibrated runtime model** — per-CPU relative runtime factors
  (Figure 9) used inside the simulator, where profiling runs execute each
  workload 10,000 times per zone.

The factors encode the paper's measured hierarchy: the 3.0 GHz Xeon is
5-15 % faster than the 2.5 GHz baseline, the 2.9 GHz part is 15-30 %
slower, and the AMD EPYC is up to 50 % slower for compute-bound functions —
with the paper's noted exceptions (disk_writer, disk_write_and_process,
sha1_hash) where I/O dominates and EPYC can even win.
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    all_workloads,
    resolve_runtime_model,
    workload_by_name,
)
from repro.workloads.profiles import (
    cpu_factor,
    factors_for,
    normalized_performance_table,
)

__all__ = [
    "Workload",
    "WORKLOAD_NAMES",
    "all_workloads",
    "resolve_runtime_model",
    "workload_by_name",
    "cpu_factor",
    "factors_for",
    "normalized_performance_table",
]
