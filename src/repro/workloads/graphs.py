"""Graph workloads: MST, BFS, and PageRank (Table 1).

All three generate their own random graph (no external inputs) and perform
classic graph computations.  MST and BFS use networkx structures; PageRank
runs a dense power iteration in numpy for determinism.
"""

import collections

import networkx as nx
import numpy as np

from repro.workloads.base import Workload


def _random_weighted_graph(rng, nodes, edges):
    """A connected Gnm-style graph with uniform random edge weights."""
    graph = nx.Graph()
    graph.add_nodes_from(range(nodes))
    # A random spanning chain guarantees connectivity.
    order = rng.permutation(nodes)
    for left, right in zip(order, order[1:]):
        graph.add_edge(int(left), int(right),
                       weight=float(rng.uniform(0.1, 10.0)))
    while graph.number_of_edges() < edges:
        u = int(rng.integers(0, nodes))
        v = int(rng.integers(0, nodes))
        if u != v:
            graph.add_edge(u, v, weight=float(rng.uniform(0.1, 10.0)))
    return graph


class GraphMST(Workload):
    """Generates a graph and calculates its minimum spanning tree."""

    name = "graph_mst"
    vcpus = 1
    base_seconds = 6.0
    description = ("Generates a graph and calculates its minimum "
                   "spanning tree.")

    def generate_input(self, rng, scale=1.0):
        nodes = max(8, int(240 * scale))
        return _random_weighted_graph(rng, nodes, edges=nodes * 3)

    def run(self, data):
        return nx.minimum_spanning_tree(data, algorithm="kruskal")

    def summarize(self, output):
        weight = sum(attrs["weight"]
                     for _, _, attrs in output.edges(data=True))
        return {"mst_edges": output.number_of_edges(),
                "mst_weight": round(weight, 6)}


class GraphBFS(Workload):
    """Generates a graph and performs a breadth-first search."""

    name = "graph_bfs"
    vcpus = 1
    base_seconds = 5.5
    description = ("Generates a graph and performs a breadth-first "
                   "search.")

    def generate_input(self, rng, scale=1.0):
        nodes = max(8, int(300 * scale))
        return _random_weighted_graph(rng, nodes, edges=nodes * 4)

    def run(self, data):
        # Manual BFS: depth of every node from node 0.
        depths = {0: 0}
        queue = collections.deque([0])
        while queue:
            node = queue.popleft()
            for neighbor in data.neighbors(node):
                if neighbor not in depths:
                    depths[neighbor] = depths[node] + 1
                    queue.append(neighbor)
        return depths

    def summarize(self, output):
        return {"visited": len(output),
                "max_depth": max(output.values())}


class PageRank(Workload):
    """Generates a graph and computes the PageRank of each node."""

    name = "pagerank"
    vcpus = 1.2
    base_seconds = 7.0
    description = ("Generates a graph and computes the PageRank of "
                   "each node.")

    damping = 0.85
    iterations = 50

    def generate_input(self, rng, scale=1.0):
        nodes = max(8, int(200 * scale))
        # Dense random adjacency with ~6 out-links per node.
        adjacency = (rng.random((nodes, nodes))
                     < (6.0 / nodes)).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        # Dangling nodes link everywhere.
        dangling = adjacency.sum(axis=1) == 0
        adjacency[dangling, :] = 1.0
        np.fill_diagonal(adjacency, 0.0)
        return adjacency

    def run(self, data):
        nodes = data.shape[0]
        transition = data / data.sum(axis=1, keepdims=True)
        rank = np.full(nodes, 1.0 / nodes)
        for _ in range(self.iterations):
            rank = ((1 - self.damping) / nodes
                    + self.damping * transition.T.dot(rank))
        return rank

    def summarize(self, output):
        return {"nodes": int(output.shape[0]),
                "top_rank": round(float(output.max()), 8),
                "rank_sum": round(float(output.sum()), 6)}
