"""Memory-dependent performance: the Lambda CPU-allocation model.

AWS Lambda allocates CPU in proportion to configured memory — one full
vCPU per ~1,769 MB.  A workload therefore runs slower below its CPU
saturation point, with the slowdown bounded by its non-parallelizable
fraction (Amdahl), and degrades sharply once memory drops below its
working set.  The paper's mesh spans the whole memory ladder (§3.3); this
model is what makes choosing a rung a real decision (see
:mod:`repro.core.memory_advisor` — the SAAF performance/cost-prediction
lineage the paper cites).

The Figure-9 runtime calibrations are taken at the 2 GB setting, so
factors here are normalized to ``reference_memory_mb=2048``.
"""

from repro.common.errors import ConfigurationError

# AWS Lambda: one full vCPU per 1,769 MB of configured memory.
VCPU_SATURATION_MB = 1769.0

# Fraction of a typical workload's runtime that scales with CPU allocation.
DEFAULT_PARALLEL_FRACTION = 0.85

# Exponent of the slowdown once memory drops below the working set.
PRESSURE_EXPONENT = 1.5


def _raw_factor(memory_mb, vcpus, parallel_fraction, min_memory_mb):
    """Runtime multiplier at ``memory_mb`` vs. full CPU allocation."""
    if memory_mb <= 0:
        raise ConfigurationError("memory must be positive")
    cpu_alloc = memory_mb / VCPU_SATURATION_MB
    usable = min(cpu_alloc, vcpus)
    usable = max(usable, 0.05)  # the platform floor: some CPU always runs
    factor = (1.0 - parallel_fraction) + parallel_fraction * (
        vcpus / usable)
    factor = max(factor, 1.0)
    if memory_mb < min_memory_mb:
        factor *= (min_memory_mb / memory_mb) ** PRESSURE_EXPONENT
    return factor


def memory_speed_factor(memory_mb, vcpus=1.0,
                        parallel_fraction=DEFAULT_PARALLEL_FRACTION,
                        min_memory_mb=256,
                        reference_memory_mb=2048):
    """Runtime multiplier at ``memory_mb`` relative to the reference rung.

    1.0 at the reference (2 GB, where Figure 9 was calibrated); > 1 when
    the setting starves the workload of CPU or memory; < 1 when extra
    memory buys more vCPU than the reference had.

    >>> memory_speed_factor(2048, vcpus=1) == 1.0
    True
    """
    if vcpus <= 0:
        raise ConfigurationError("vcpus must be positive")
    if not 0 <= parallel_fraction < 1:
        raise ConfigurationError("parallel_fraction must be in [0, 1)")
    reference = _raw_factor(reference_memory_mb, vcpus,
                            parallel_fraction, min_memory_mb)
    return _raw_factor(memory_mb, vcpus, parallel_fraction,
                       min_memory_mb) / reference


def saturation_memory_mb(vcpus):
    """Memory at which the workload has all the CPU it can use."""
    return vcpus * VCPU_SATURATION_MB
