"""The workload base class.

A :class:`Workload` couples a real, runnable implementation with the
simulator-facing runtime model.  Subclasses implement
:meth:`generate_input`, :meth:`run`, and :meth:`summarize`; the base class
provides the dynamic-function source packaging and handler construction.
"""

import textwrap

from repro.common.errors import ConfigurationError
from repro.cloudsim.handlers import ModeledWorkloadHandler
from repro.dynfunc.handler import DynamicFunctionHandler
from repro.dynfunc.payload import build_payload
from repro.workloads import profiles


class Workload(object):
    """One of the paper's twelve serverless functions.

    Class attributes set by subclasses:

    * ``name`` — registry key (matches Figure 9 labels);
    * ``vcpus`` — parallelism from Table 1 (1, 1.2, or 2);
    * ``base_seconds`` — modelled runtime on the 2.5 GHz baseline CPU;
    * ``description`` — the Table 1 description.
    """

    name = None
    vcpus = 1.0
    base_seconds = 1.0
    description = ""
    noise_sigma = 0.04

    # SeBS-style input size classes -> generate_input scale factors.
    SIZE_SCALES = {"test": 0.05, "small": 0.3, "large": 1.0}

    # -- runnable implementation (override in subclasses) -----------------------
    def generate_input(self, rng, scale=1.0):
        """Create a self-contained input for :meth:`run`.

        Every workload generates its own data (the paper removed external
        service dependencies when packaging them as dynamic functions), so
        ``rng`` and ``scale`` fully determine the work.
        """
        raise NotImplementedError

    def run(self, data):
        """Execute the workload on ``data``; returns its raw output."""
        raise NotImplementedError

    def summarize(self, output):
        """A small JSON-safe summary of ``output`` (function response body)."""
        raise NotImplementedError

    def execute(self, rng, scale=1.0):
        """Generate input and run, returning the summary (one-call helper)."""
        return self.summarize(self.run(self.generate_input(rng, scale)))

    @classmethod
    def scale_for_size(cls, size):
        """Map a SeBS-style size class (test/small/large) to a scale.

        >>> Workload.scale_for_size("small")
        0.3
        """
        try:
            return cls.SIZE_SCALES[size]
        except KeyError:
            raise ConfigurationError(
                "unknown size class {!r}; pick one of {}".format(
                    size, sorted(cls.SIZE_SCALES)))

    # -- simulator-facing model ---------------------------------------------------
    def cpu_factors(self):
        """Per-CPU runtime factors (Figure 9 calibration)."""
        return profiles.factors_for(self.name)

    def runtime_model(self):
        """A :class:`ModeledWorkloadHandler` for this workload."""
        return ModeledWorkloadHandler(self.name, self.base_seconds,
                                      self.cpu_factors(),
                                      noise_sigma=self.noise_sigma)

    def handler(self, payload=None):
        """A dynamic-function handler hosting this workload."""
        if payload is None:
            payload = self.payload()
        return DynamicFunctionHandler(self.runtime_model(),
                                      default_payload=payload)

    # -- dynamic-function packaging --------------------------------------------------
    def source_code(self):
        """Self-contained dynamic-function source for this workload.

        The source assumes the repro library is present in the FI (shipped
        once via a Lambda-layer-style dependency, as the paper's dynamic
        functions support), keeping the per-request payload tiny.
        """
        return textwrap.dedent('''\
            """Dynamic-function body for the {name} workload."""
            import numpy as np

            from repro.workloads import workload_by_name


            def handler(event, context):
                event = event or {{}}
                workload = workload_by_name("{name}")
                rng = np.random.default_rng(event.get("seed", 0))
                scale = event.get("scale")
                if scale is None:
                    scale = workload.scale_for_size(
                        event.get("size", "test"))
                data = workload.generate_input(rng, scale=scale)
                output = workload.run(data)
                return {{
                    "workload": "{name}",
                    "summary": workload.summarize(output),
                }}
            ''').format(name=self.name)

    def payload(self, args=None, files=None):
        """Build the dynamic-function payload for this workload.

        The payload always identifies its workload in ``args["workload"]``
        so universal mesh endpoints can resolve the runtime model.
        """
        args = dict(args or {})
        args.setdefault("workload", self.name)
        return build_payload(self.source_code(), files=files,
                             entry="handler", args=args)

    def __repr__(self):
        return "Workload({!r}, vcpus={}, base={:.1f}s)".format(
            self.name, self.vcpus, self.base_seconds)
