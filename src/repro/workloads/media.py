"""The thumbnailer workload: bitmap generation and rescaling."""

import numpy as np

from repro.workloads.base import Workload


class Thumbnailer(Workload):
    """Generates a random bitmap image and scales it to different sizes."""

    name = "thumbnailer"
    vcpus = 1
    base_seconds = 4.5
    description = ("Generates a random bitmap image and scales it to "
                   "different sizes.")

    target_factors = (2, 4, 8)

    def generate_input(self, rng, scale=1.0):
        side = max(64, int(512 * scale))
        side -= side % 8  # keep divisible by all scale factors
        return rng.integers(0, 256, size=(side, side, 3), dtype="u1")

    def run(self, data):
        thumbnails = {}
        for factor in self.target_factors:
            thumbnails[factor] = self._block_mean(data, factor)
        return thumbnails

    @staticmethod
    def _block_mean(image, factor):
        """Downscale by averaging factor x factor pixel blocks."""
        height, width, channels = image.shape
        reshaped = image.reshape(height // factor, factor,
                                 width // factor, factor, channels)
        return reshaped.mean(axis=(1, 3)).astype("u1")

    def summarize(self, output):
        return {
            "thumbnails": sorted(output),
            "sizes": {factor: list(thumb.shape)
                      for factor, thumb in sorted(output.items())},
        }
