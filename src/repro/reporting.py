"""Result export: characterizations, campaigns, and studies to JSON/CSV.

Everything the experiments produce can be serialized for external
analysis; the CLI uses these helpers for its ``--json``/``--csv`` flags.
"""

import csv
import json

from repro.common.errors import ConfigurationError


def characterization_to_dict(profile):
    """A :class:`CPUCharacterization` as a JSON-safe dict."""
    return {
        "zone": profile.zone_id,
        "shares": {cpu: round(profile.share(cpu), 6)
                   for cpu in profile.cpu_keys()},
        "samples": profile.samples,
        "polls": profile.polls,
        "cost_usd": float(profile.cost),
        "created_at": profile.created_at,
    }


def campaign_to_dict(result):
    """A :class:`CampaignResult` with its per-poll trace."""
    return {
        "zone": result.zone_id,
        "saturated": result.saturated,
        "polls": result.polls_run,
        "total_fis": result.total_fis,
        "total_cost_usd": float(result.total_cost),
        "trace": [
            {
                "unique_fis": obs.unique_fis,
                "served": obs.served,
                "failed": obs.failed,
                "failure_rate": round(obs.failure_rate, 4),
                "cost_usd": float(obs.cost),
                "cpu_counts": dict(obs.cpu_counts),
            }
            for obs in result.observations
        ],
        "ground_truth": characterization_to_dict(result.ground_truth()),
    }


def study_result_to_dict(result):
    """A :class:`StudyResult` with savings summaries."""
    payload = {
        "workload": result.workload_name,
        "days": result.days,
        "policies": list(result.policy_names),
        "daily_costs_usd": {name: list(series)
                            for name, series in result.daily_costs.items()},
        "daily_retries": {name: list(series)
                          for name, series in result.daily_retries.items()},
        "zones_chosen": {name: list(series)
                         for name, series in result.zones_chosen.items()},
        "sampling_cost_usd": float(result.sampling_cost),
    }
    if "baseline" in result.daily_costs:
        payload["savings_vs_baseline"] = result.savings_summary()
    return payload


def write_json(path, payload):
    """Write any JSON-safe payload to ``path`` (pretty-printed)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path):
    with open(path) as handle:
        return json.load(handle)


def characterizations_to_rows(profiles):
    """Flatten characterizations into CSV rows (one row per zone x CPU)."""
    rows = []
    for profile in profiles:
        for cpu in profile.cpu_keys():
            rows.append({
                "zone": profile.zone_id,
                "cpu": cpu,
                "share": round(profile.share(cpu), 6),
                "samples": profile.samples,
                "cost_usd": float(profile.cost),
            })
    return rows


def study_to_rows(result):
    """Flatten a study into CSV rows (one row per policy x day)."""
    rows = []
    for name in result.policy_names:
        for day, cost in enumerate(result.daily_costs[name], start=1):
            rows.append({
                "workload": result.workload_name,
                "policy": name,
                "day": day,
                "cost_usd": cost,
                "retries": result.daily_retries[name][day - 1],
                "zone": result.zones_chosen[name][day - 1],
            })
    return rows


def write_csv(path, rows):
    """Write a list of homogeneous dicts to ``path`` as CSV."""
    if not rows:
        raise ConfigurationError("no rows to write")
    fieldnames = list(rows[0])
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path
