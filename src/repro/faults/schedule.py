"""Fault schedules: which fault models run, and canned presets.

A :class:`FaultSchedule` is an ordered collection of
:class:`~repro.faults.models.FaultModel` instances; the injector asks it
which models are active for ``(zone_id, now)``.  :func:`build_preset`
produces the scripted scenarios the chaos CLI and CI smoke tests use.
"""

from repro.common.errors import ConfigurationError
from repro.faults.models import (
    Brownout,
    ColdStartStorm,
    LatencySpike,
    NetworkPartition,
    ThrottlingBurst,
    TransientFaults,
    ZoneOutage,
)


class FaultSchedule(object):
    """An ordered set of fault models consulted per ``(zone, time)``."""

    __slots__ = ("models",)

    def __init__(self, models=None):
        self.models = list(models) if models is not None else []

    def add(self, model):
        """Append a model; returns self for chaining."""
        self.models.append(model)
        return self

    def active(self, zone_id, now):
        """Models whose zone/window matches ``(zone_id, now)``, in order."""
        return [m for m in self.models if m.applies(zone_id, now)]

    def __len__(self):
        return len(self.models)

    def __iter__(self):
        return iter(self.models)

    def __repr__(self):
        return "FaultSchedule({} models)".format(len(self.models))


#: Names accepted by :func:`build_preset` and ``repro chaos --preset``.
PRESET_NAMES = ("brownout", "outage", "throttle", "partition",
                "coldstorm", "chaos")


def build_preset(name, zones, start=60.0, duration=240.0):
    """Build a scripted fault schedule targeting ``zones[0]``.

    Each preset injects one dominant failure mode into the primary zone
    for the window ``[start, start + duration)``, leaving the remaining
    zones healthy so resilient routing has somewhere to go.
    """
    if not zones:
        raise ConfigurationError("preset needs at least one target zone")
    if name not in PRESET_NAMES:
        raise ConfigurationError(
            "unknown preset {!r}; choose from {}".format(
                name, ", ".join(PRESET_NAMES)))
    primary = [zones[0]]
    end = start + duration
    schedule = FaultSchedule()
    if name == "brownout":
        schedule.add(Brownout(failure_rate=0.85, capacity_factor=0.05,
                              zones=primary, start=start, end=end))
    elif name == "outage":
        schedule.add(ZoneOutage(zones=primary, start=start, end=end))
    elif name == "throttle":
        schedule.add(ThrottlingBurst(rate=0.7, zones=primary,
                                     start=start, end=end))
    elif name == "partition":
        schedule.add(NetworkPartition(zones=primary, start=start, end=end))
    elif name == "coldstorm":
        schedule.add(ColdStartStorm(multiplier=6.0, zones=primary,
                                    start=start, end=end))
    else:  # "chaos": a little of everything
        third = duration / 3.0
        schedule.add(TransientFaults(rate=0.10, zones=primary,
                                     start=start, end=end))
        schedule.add(Brownout(failure_rate=0.75, capacity_factor=0.10,
                              zones=primary, start=start, end=start + third))
        schedule.add(ThrottlingBurst(rate=0.5, zones=primary,
                                     start=start + third,
                                     end=start + 2 * third))
        schedule.add(LatencySpike(extra_s=0.20, zones=primary,
                                  start=start + 2 * third, end=end))
    return schedule
