"""Fleet-level chaos for the distributed sweep backend.

:mod:`repro.faults.models` perturbs the *simulated* cloud inside a task;
this module perturbs the *real* fleet running the tasks — worker
processes, the coordinator, the links between them.  A
:class:`FleetChaos` is a seeded, deterministic schedule of fleet events
keyed on sweep progress (the count of accepted chunks), so a chaos test
kills worker 1 at chunk 3 on every run, not "sometime around the
middle":

* ``kill_worker`` — SIGKILL a worker subprocess (crash, no drain);
* ``term_worker`` — SIGTERM a worker (graceful drain path);
* ``netsplit`` — SIGSTOP a worker for ``duration_s`` then SIGCONT it
  (alive but unreachable: heartbeats stop, the coordinator requeues,
  the worker spools results it computed during the split);
* ``slow_worker`` — same mechanism with a short pause (a straggler that
  recovers inside the heartbeat tolerance);
* ``coordinator_crash`` — raise :class:`CoordinatorCrash` *in the
  engine thread*, right after the chunk is journaled (the in-process
  stand-in for ``kill -9`` on the coordinator; CI does the real thing).

Wire it up through ``SweepEngine(chunk_hook=chaos.chunk_hook)`` plus a
worker-registry callback, or drive it manually from a test.  The
schedule is data (:meth:`FleetChaos.plan`), so tests can assert what
*will* happen before making it happen.
"""

import random
import signal

from repro.common.errors import ConfigurationError, ReproError

#: Event kinds a :class:`FleetChaos` schedule may contain.
FLEET_EVENTS = ("kill_worker", "term_worker", "netsplit", "slow_worker",
                "coordinator_crash")


class CoordinatorCrash(ReproError):
    """Injected coordinator death (the in-process ``kill -9`` stand-in).

    Deliberately *not* a :class:`~repro.common.errors.SweepError` or
    ``TransportError`` subclass: nothing in the engine catches it, so it
    unwinds ``SweepEngine.run`` exactly the way a real crash would —
    after the journal append, before any further dispatch.
    """

    def __init__(self, after_chunks):
        super().__init__(
            "injected coordinator crash after {} accepted "
            "chunk(s)".format(after_chunks))
        self.after_chunks = after_chunks


class FleetEvent(object):
    """One scheduled fleet perturbation."""

    __slots__ = ("at_chunk", "kind", "target", "duration_s", "fired")

    def __init__(self, at_chunk, kind, target=None, duration_s=0.0):
        if kind not in FLEET_EVENTS:
            raise ConfigurationError(
                "unknown fleet event {!r}; pick one of {}".format(
                    kind, FLEET_EVENTS))
        self.at_chunk = int(at_chunk)
        self.kind = kind
        self.target = target
        self.duration_s = float(duration_s)
        self.fired = False

    def to_dict(self):
        return {"at_chunk": self.at_chunk, "kind": self.kind,
                "target": self.target, "duration_s": self.duration_s,
                "fired": self.fired}

    def __repr__(self):
        return "FleetEvent(at_chunk={}, kind={!r}, target={!r})".format(
            self.at_chunk, self.kind, self.target)


class FleetChaos(object):
    """A seeded, progress-keyed schedule of fleet perturbations.

    ``events`` is an explicit list of :class:`FleetEvent`; alternatively
    :meth:`seeded` derives one deterministically from ``(seed, chunks,
    workers)``.  The object is used as the engine's ``chunk_hook``:
    every accepted chunk advances the progress counter and fires every
    event scheduled at that count.

    Process-touching events need to know the fleet: ``register(name,
    process)`` maps logical worker names (``"worker-0"``, ...) to
    ``subprocess.Popen``-like handles (anything with ``pid``).  Events
    targeting an unregistered or already-dead worker are skipped, not
    errors — chaos against an elastic fleet must tolerate the fleet
    having shrunk on its own.
    """

    def __init__(self, events=(), on_event=None):
        self.events = list(events)
        self.accepted = 0
        self.on_event = on_event
        self._processes = {}
        self._stopped = []

    @classmethod
    def seeded(cls, seed, chunks, workers, intensity=0.3, on_event=None):
        """Derive a deterministic schedule from a seed.

        ``intensity`` scales how many events are planted (roughly
        ``intensity * chunks`` candidate points, capped at one event per
        chunk).  The same ``(seed, chunks, workers, intensity)`` always
        yields the same schedule.
        """
        if chunks < 1 or workers < 1:
            raise ConfigurationError(
                "seeded chaos needs at least one chunk and one worker")
        rng = random.Random(("fleet-chaos", int(seed), int(chunks),
                             int(workers)).__repr__())
        count = max(1, min(chunks, int(round(intensity * chunks))))
        points = sorted(rng.sample(range(1, chunks + 1),
                                   min(count, chunks)))
        kinds = ("kill_worker", "term_worker", "netsplit", "slow_worker")
        events = []
        for at_chunk in points:
            kind = kinds[rng.randrange(len(kinds))]
            target = "worker-{}".format(rng.randrange(workers))
            duration = {"netsplit": rng.uniform(0.5, 1.5),
                        "slow_worker": rng.uniform(0.05, 0.2)}.get(kind,
                                                                   0.0)
            events.append(FleetEvent(at_chunk, kind, target=target,
                                     duration_s=duration))
        return cls(events, on_event=on_event)

    # -- fleet wiring --------------------------------------------------------
    def register(self, name, process):
        """Attach a worker handle (``.pid``) under a logical name."""
        self._processes[name] = process
        return process

    def register_spawned(self, processes):
        """Register ``spawn_local_workers`` output as worker-0..n-1."""
        for n, process in enumerate(processes):
            self.register("worker-{}".format(n), process)
        return processes

    # -- schedule ------------------------------------------------------------
    def plan(self):
        """The schedule as plain data (for asserting before running)."""
        return [event.to_dict() for event in self.events]

    def pending(self):
        return [event for event in self.events if not event.fired]

    def chunk_hook(self, chunk_id, records):
        """``SweepEngine(chunk_hook=...)`` entry point."""
        del chunk_id, records
        self.heal()  # end any partition whose duration has elapsed
        self.accepted += 1
        for event in self.events:
            if not event.fired and event.at_chunk == self.accepted:
                self._fire(event)

    # -- executors -----------------------------------------------------------
    def _fire(self, event):
        event.fired = True
        if self.on_event is not None:
            self.on_event(event)
        if event.kind == "coordinator_crash":
            raise CoordinatorCrash(self.accepted)
        process = self._processes.get(event.target)
        if process is None or getattr(process, "poll", lambda: 0)() \
                is not None:
            return  # fleet already shrank; nothing to perturb
        if event.kind == "kill_worker":
            self._signal(process, signal.SIGKILL)
        elif event.kind == "term_worker":
            self._signal(process, signal.SIGTERM)
        elif event.kind in ("netsplit", "slow_worker"):
            if self._signal(process, signal.SIGSTOP):
                import time
                self._stopped.append((process, event, time.monotonic()))

    @staticmethod
    def _signal(process, signum):
        try:
            process.send_signal(signum)
            return True
        except (OSError, ProcessLookupError, AttributeError):
            return False

    def heal(self):
        """SIGCONT every stopped worker whose split/slowdown elapsed.

        Chaos never owns a timer thread — call this from the test's (or
        engine's) loop; :meth:`release_all` unconditionally resumes
        everyone regardless of remaining duration.
        """
        import time

        now = time.monotonic()
        still_stopped = []
        for process, event, stopped_at in self._stopped:
            if now - stopped_at >= event.duration_s:
                self._signal(process, signal.SIGCONT)
            else:
                still_stopped.append((process, event, stopped_at))
        self._stopped = still_stopped

    def release_all(self):
        while self._stopped:
            process, _, _ = self._stopped.pop()
            self._signal(process, signal.SIGCONT)

    def __repr__(self):
        return "FleetChaos(events={}, accepted={})".format(
            len(self.events), self.accepted)
