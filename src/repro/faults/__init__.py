"""Deterministic fault injection for the simulated sky.

Public surface::

    from repro.faults import (
        FaultInjector, NULL_INJECTOR, FaultSchedule, build_preset,
        TransientFaults, ZoneOutage, Brownout, ThrottlingBurst,
        LatencySpike, NetworkPartition, ColdStartStorm,
        FleetChaos, FleetEvent, CoordinatorCrash,
    )

Cloud-level models perturb the *simulated* platform inside a task;
:class:`~repro.faults.fleet.FleetChaos` perturbs the *real* fleet
running the tasks (worker kills, netsplits, coordinator crashes) on a
seeded, progress-keyed schedule.

The chaos-experiment harness lives in :mod:`repro.faults.harness` and is
*not* re-exported here: it imports :mod:`repro.core`, which imports
:mod:`repro.cloudsim`, which imports this package — importing it here
would close the cycle.  Use ``from repro.faults.harness import
ChaosExperiment`` directly.
"""

from repro.faults.injector import (
    FaultInjector,
    InjectedFault,
    NULL_INJECTOR,
    NullInjector,
)
from repro.faults.models import (
    Brownout,
    ColdStartStorm,
    FaultModel,
    LatencySpike,
    NetworkPartition,
    ThrottlingBurst,
    TransientFaults,
    ZoneOutage,
)
from repro.faults.fleet import (
    CoordinatorCrash,
    FleetChaos,
    FleetEvent,
    FLEET_EVENTS,
)
from repro.faults.schedule import FaultSchedule, PRESET_NAMES, build_preset

__all__ = [
    "Brownout",
    "ColdStartStorm",
    "CoordinatorCrash",
    "FaultInjector",
    "FaultModel",
    "FaultSchedule",
    "FleetChaos",
    "FleetEvent",
    "FLEET_EVENTS",
    "InjectedFault",
    "LatencySpike",
    "NetworkPartition",
    "NULL_INJECTOR",
    "NullInjector",
    "PRESET_NAMES",
    "ThrottlingBurst",
    "TransientFaults",
    "ZoneOutage",
    "build_preset",
]
