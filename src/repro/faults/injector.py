"""The fault injector: deterministic chaos wired into the simulated cloud.

Mirrors the opt-in pattern of :class:`repro.obs.Observability`: a cloud
starts with the no-op :data:`NULL_INJECTOR` and pays nothing until a real
:class:`FaultInjector` is installed via ``injector.install(cloud)``.

Determinism contract: every random draw comes from a per-zone stream
derived as ``derive_rng(seed, "faults", zone_id)``.  Two clouds driven
with the same ``(seed, schedule)`` and the same per-zone request order
produce identical fault timelines, independent of what happens in any
*other* zone.
"""

from repro.common.rng import derive_rng
from repro.faults.schedule import FaultSchedule


class NullInjector(object):
    """Absent-fault singleton: every hook is the cheapest possible no-op."""

    __slots__ = ()

    enabled = False

    def before_invoke(self, zone_id, now):
        return None

    def before_batch(self, zone_id, now):
        return None

    def extra_latency(self, zone_id, now):
        return 0.0

    def capacity_factor(self, zone_id, now):
        return 1.0

    def cold_start_multiplier(self, zone_id, now):
        return 1.0

    def forces_cold(self, zone_id, now):
        return False

    def __repr__(self):
        return "NullInjector()"


#: Shared no-op injector; the default value of ``Cloud.faults``.
NULL_INJECTOR = NullInjector()


class InjectedFault(object):
    """One materialised fault event on the injector's timeline."""

    __slots__ = ("kind", "zone_id", "timestamp", "reason")

    def __init__(self, kind, zone_id, timestamp, reason):
        self.kind = kind
        self.zone_id = zone_id
        self.timestamp = float(timestamp)
        self.reason = reason

    def to_dict(self):
        return {"kind": self.kind, "zone_id": self.zone_id,
                "timestamp": self.timestamp, "reason": self.reason}

    def __repr__(self):
        return "InjectedFault({}, {}, t={:.1f}, {})".format(
            self.kind, self.zone_id, self.timestamp, self.reason)


class FaultInjector(object):
    """Injects scheduled faults into a :class:`~repro.cloudsim.cloud.Cloud`.

    Parameters
    ----------
    schedule:
        A :class:`~repro.faults.schedule.FaultSchedule` (or a plain list of
        fault models, which is wrapped).
    seed:
        Root seed for the per-zone random streams.
    """

    enabled = True

    def __init__(self, schedule, seed=0):
        if not isinstance(schedule, FaultSchedule):
            schedule = FaultSchedule(schedule)
        self.schedule = schedule
        self.seed = seed
        self.timeline = []
        self._rngs = {}
        self._cloud = None

    # -- wiring --------------------------------------------------------------
    def install(self, cloud):
        """Attach this injector to ``cloud`` (and its zones).  Returns self."""
        cloud.attach_faults(self)
        self._cloud = cloud
        return self

    def _rng_for(self, zone_id):
        rng = self._rngs.get(zone_id)
        if rng is None:
            rng = derive_rng(self.seed, "faults", zone_id)
            self._rngs[zone_id] = rng
        return rng

    def _emit(self, kind, zone_id, now, reason):
        self.timeline.append(InjectedFault(kind, zone_id, now, reason))
        cloud = self._cloud
        if cloud is not None and cloud.bus.enabled:
            cloud.bus.emit("fault.injected", now,
                           zone=zone_id, kind=kind, reason=reason)

    # -- hooks consulted by the simulator ------------------------------------
    def before_invoke(self, zone_id, now):
        """Raise the scheduled error for this invocation, if any."""
        for model in self.schedule.active(zone_id, now):
            error = model.invoke_error(self._rng_for(zone_id))
            if error is not None:
                self._emit(model.kind, zone_id, now, error.reason)
                raise error

    def before_batch(self, zone_id, now):
        """Raise the scheduled error for this batched placement, if any."""
        for model in self.schedule.active(zone_id, now):
            error = model.batch_error(self._rng_for(zone_id))
            if error is not None:
                self._emit(model.kind, zone_id, now, error.reason)
                raise error

    def extra_latency(self, zone_id, now):
        extra = 0.0
        for model in self.schedule.active(zone_id, now):
            delta = model.extra_latency(self._rng_for(zone_id))
            if delta:
                extra += delta
                self._emit(model.kind, zone_id, now, "latency")
        return extra

    def capacity_factor(self, zone_id, now):
        factor = 1.0
        for model in self.schedule.active(zone_id, now):
            factor *= model.capacity_factor()
        return factor

    def cold_start_multiplier(self, zone_id, now):
        mult = 1.0
        for model in self.schedule.active(zone_id, now):
            mult *= model.cold_start_multiplier()
        return mult

    def forces_cold(self, zone_id, now):
        return any(model.forces_cold()
                   for model in self.schedule.active(zone_id, now))

    # -- reporting -----------------------------------------------------------
    def fault_counts(self):
        """``{(kind, zone_id): count}`` over the materialised timeline."""
        counts = {}
        for fault in self.timeline:
            key = (fault.kind, fault.zone_id)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self):
        return "FaultInjector(models={}, seed={}, injected={})".format(
            len(self.schedule), self.seed, len(self.timeline))
