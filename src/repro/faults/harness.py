"""The chaos-experiment harness behind ``python -m repro chaos``.

Runs the same routed workload twice on identically-seeded skies under the
same scripted fault schedule — once through the full resilience stack
(breakers + backoff + failover + optional hedging) and once naively — and
reports availability, latency percentiles, retry/hedge overhead, breaker
transitions, and injected-fault counts, all flowing through the
:mod:`repro.obs` metrics registry so the run is inspectable with the
standard exports.

Import as ``from repro.faults.harness import ChaosExperiment`` — this
module pulls in :mod:`repro.core` and so lives outside
``repro.faults.__init__`` (see the note there).
"""

from repro.cloudsim.catalog import build_global_catalog
from repro.common.errors import ConfigurationError, InvocationError
from repro.core.health import ZoneHealthTracker
from repro.core.policies import RegionalPolicy
from repro.core.resilience import HedgePolicy, ResilienceConfig
from repro.core.router import SmartRouter
from repro.dynfunc.handler import UniversalDynamicFunctionHandler
from repro.faults.injector import FaultInjector
from repro.faults.schedule import build_preset
from repro.obs import Observability
from repro.obs.metrics import quantile
from repro.sampling.characterization import CharacterizationBuilder
from repro.core.characterization_store import CharacterizationStore
from repro.skymesh.mesh import SkyMesh
from repro.workloads.registry import (
    resolve_runtime_model,
    workload_by_name,
)


class ChaosReport(object):
    """Outcome of one run (resilient or naive) under a fault schedule."""

    __slots__ = ("label", "requests", "served", "latencies", "retries",
                 "backoff_s", "hedges", "hedge_wins", "failovers",
                 "breaker_transitions", "fault_counts", "obs")

    def __init__(self, label, requests, served, latencies, retries,
                 backoff_s, hedges, hedge_wins, failovers,
                 breaker_transitions, fault_counts, obs):
        self.label = label
        self.requests = requests
        self.served = served
        self.latencies = latencies
        self.retries = retries
        self.backoff_s = backoff_s
        self.hedges = hedges
        self.hedge_wins = hedge_wins
        self.failovers = failovers
        self.breaker_transitions = breaker_transitions
        self.fault_counts = fault_counts
        self.obs = obs

    @property
    def availability(self):
        if self.requests == 0:
            return 0.0
        return self.served / float(self.requests)

    def latency_percentile(self, q):
        if not self.latencies:
            return 0.0
        return quantile(sorted(self.latencies), q)

    def to_dict(self):
        return {
            "label": self.label,
            "requests": self.requests,
            "served": self.served,
            "availability": self.availability,
            "p50_latency_s": self.latency_percentile(0.50),
            "p99_latency_s": self.latency_percentile(0.99),
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "breaker_transitions": [
                {"zone": zone, "t": now, "from": old, "to": new}
                for zone, now, old, new in self.breaker_transitions],
            "fault_counts": {
                "{}:{}".format(kind, zone): count
                for (kind, zone), count in sorted(self.fault_counts.items())},
        }

    def __repr__(self):
        return ("ChaosReport({}: availability={:.1%}, p99={:.3f}s, "
                "failovers={})".format(self.label, self.availability,
                                       self.latency_percentile(0.99),
                                       self.failovers))


class ChaosExperiment(object):
    """Drives a routed workload through a scripted fault schedule.

    Both runs build an identically-seeded sky, so any difference between
    the resilient and naive reports is attributable to the client path,
    not to simulator randomness.
    """

    def __init__(self, zones=("us-west-1a", "us-west-1b"), workload=None,
                 seed=42, requests=400, interval_s=1.0):
        if len(zones) < 2:
            raise ConfigurationError(
                "chaos experiment needs at least two candidate zones")
        if requests < 1:
            raise ConfigurationError("requests must be >= 1")
        self.zones = list(zones)
        self.workload = (workload if workload is not None
                         else workload_by_name("sha1_hash"))
        if isinstance(self.workload, str):
            self.workload = workload_by_name(self.workload)
        self.seed = seed
        self.requests = int(requests)
        self.interval_s = float(interval_s)

    # -- rig construction -----------------------------------------------------
    def _build_rig(self, schedule=None, resilient=False):
        cloud = build_global_catalog(seed=self.seed, aws_only=True)
        obs = Observability()
        obs.install(cloud)
        injector = None
        if schedule is not None:
            injector = FaultInjector(schedule, seed=self.seed).install(cloud)
        account = cloud.create_account("chaos", "aws")
        mesh = SkyMesh(cloud)
        handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
        store = CharacterizationStore()
        for zone_id in self.zones:
            mesh.register(cloud.deploy(account, zone_id, "dynamic", 2048,
                                       handler=handler))
            builder = CharacterizationBuilder(zone_id)
            builder.add_poll({key: pool.capacity for key, pool
                              in cloud.zone(zone_id).pools.items()
                              if pool.capacity > 0})
            store.put(builder.snapshot())
        health = None
        resilience = None
        if resilient:
            health = ZoneHealthTracker(bus=obs.bus)
            resilience = ResilienceConfig(hedge=HedgePolicy())
        router = SmartRouter(cloud, mesh, store, RegionalPolicy(),
                             self.workload, self.zones, obs=obs,
                             health=health, resilience=resilience)
        return cloud, obs, injector, router, health

    def preferred_zone(self):
        """The zone the policy routes to on a healthy sky — the one a
        targeted fault schedule must hit for the demo to mean anything."""
        _, _, _, router, _ = self._build_rig()
        return router.decide().zone_id

    # -- runs ------------------------------------------------------------------
    def run_resilient(self, schedule):
        cloud, obs, injector, router, health = self._build_rig(
            schedule, resilient=True)
        served = 0
        latencies = []
        retries = backoff_s = hedges = hedge_wins = failovers = 0
        for _ in range(self.requests):
            try:
                outcome = router.route_resilient()
            except InvocationError:
                pass
            else:
                served += 1
                latencies.append(outcome.latency_s)
                retries += outcome.attempts - 1
                backoff_s += outcome.backoff_s
                hedges += 1 if outcome.hedged else 0
                hedge_wins += 1 if outcome.hedge_won else 0
                failovers += outcome.failovers
            cloud.clock.advance(self.interval_s)
        return ChaosReport(
            label="resilient",
            requests=self.requests,
            served=served,
            latencies=latencies,
            retries=retries,
            backoff_s=backoff_s,
            hedges=hedges,
            hedge_wins=hedge_wins,
            failovers=failovers,
            breaker_transitions=health.transitions(),
            fault_counts=injector.fault_counts() if injector else {},
            obs=obs,
        )

    def run_naive(self, schedule):
        cloud, obs, injector, router, _ = self._build_rig(schedule)
        served = 0
        latencies = []
        for _ in range(self.requests):
            try:
                request = router.route()
            except InvocationError:
                pass
            else:
                served += 1
                latencies.append(request.latency_s)
            cloud.clock.advance(self.interval_s)
        return ChaosReport(
            label="naive",
            requests=self.requests,
            served=served,
            latencies=latencies,
            retries=0,
            backoff_s=0.0,
            hedges=0,
            hedge_wins=0,
            failovers=0,
            breaker_transitions=[],
            fault_counts=injector.fault_counts() if injector else {},
            obs=obs,
        )

    def run_preset(self, name, start=60.0, duration=240.0):
        """Run resilient vs. naive under the named preset, targeted at the
        policy's preferred zone.  Returns ``(resilient, naive)`` reports.

        Each run gets its own :class:`~repro.faults.injector.FaultInjector`
        over the *same* ``(seed, schedule)``, so their fault timelines are
        identical wherever their request streams coincide.
        """
        primary = self.preferred_zone()
        targets = [primary] + [z for z in self.zones if z != primary]
        schedule = build_preset(name, targets, start=start,
                                duration=duration)
        resilient = self.run_resilient(schedule)
        naive = self.run_naive(schedule)
        return resilient, naive
