"""Composable fault models: what can go wrong, where, and when.

Each model describes one failure mode real FaaS platforms exhibit —
transient invocation faults, zone outages, brownouts (capacity collapse),
throttling bursts, network latency spikes, partitions, and cold-start
storms — scoped to a set of zones and a ``[start, end)`` sim-time window.

Models are *pure configuration*: they hold no mutable state and draw any
randomness from the generator the :class:`~repro.faults.injector.FaultInjector`
hands them (a deterministic per-zone stream derived from the injector
seed).  That keeps fault timelines a pure function of
``(seed, zone, draw index)``, mirroring how :mod:`repro.cloudsim.drift`
is a pure function of ``(seed, day, hour)``.
"""

import math

from repro.common.errors import (
    ConfigurationError,
    QuotaExceededError,
    SaturationError,
    TransientFaultError,
)

FOREVER = float("inf")


class FaultModel(object):
    """Base class: a failure mode active in some zones over some window.

    Subclasses override the narrow hooks the injector consults:
    ``invoke_error`` / ``batch_error`` (an exception to raise, or None),
    ``extra_latency`` (seconds added to the request), ``capacity_factor``
    (multiplier on free placement slots), ``cold_start_multiplier``, and
    ``forces_cold``.
    """

    kind = "abstract"

    __slots__ = ("zones", "start", "end")

    def __init__(self, zones=None, start=0.0, end=FOREVER):
        if end <= start:
            raise ConfigurationError(
                "fault window must satisfy end > start")
        self.zones = frozenset(zones) if zones is not None else None
        self.start = float(start)
        self.end = float(end)

    def applies(self, zone_id, now):
        """Is this fault active for ``zone_id`` at sim-time ``now``?"""
        if not self.start <= now < self.end:
            return False
        return self.zones is None or zone_id in self.zones

    # -- hooks (no-ops by default) -------------------------------------------
    def invoke_error(self, rng):
        """Exception to inject on a single invocation, or None."""
        return None

    def batch_error(self, rng):
        """Exception to inject on a batched placement (poll), or None."""
        return None

    def extra_latency(self, rng):
        """Seconds added to an invocation's observed latency."""
        return 0.0

    def capacity_factor(self):
        """Multiplier on the zone's free placement slots (1.0 = intact)."""
        return 1.0

    def cold_start_multiplier(self):
        return 1.0

    def forces_cold(self):
        """Whether warm reuse is disabled (every request cold-starts)."""
        return False

    def __repr__(self):
        zones = sorted(self.zones) if self.zones is not None else "all"
        return "{}(zones={}, window=[{:.0f}, {:.0f}))".format(
            type(self).__name__, zones, self.start,
            self.end if self.end != FOREVER else -1)


class TransientFaults(FaultModel):
    """Independent per-invocation transient failures at a fixed rate."""

    kind = "transient"

    __slots__ = ("rate",)

    def __init__(self, rate=0.05, zones=None, start=0.0, end=FOREVER):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        super().__init__(zones, start, end)
        self.rate = float(rate)

    def invoke_error(self, rng):
        if rng.random() < self.rate:
            return TransientFaultError("injected transient fault")
        return None


class ZoneOutage(FaultModel):
    """Total loss of a zone: every request fails, no capacity at all."""

    kind = "outage"

    def invoke_error(self, rng):
        return SaturationError("injected zone outage")

    def capacity_factor(self):
        return 0.0


class Brownout(FaultModel):
    """Capacity collapse for a window: most requests fail, few slots left.

    The per-request ``failure_rate`` models the platform shedding load at
    the front door; ``capacity_factor`` models the shrunken placement pool
    the batched path sees.
    """

    kind = "brownout"

    __slots__ = ("failure_rate", "_capacity_factor")

    def __init__(self, failure_rate=0.85, capacity_factor=0.05, zones=None,
                 start=0.0, end=FOREVER):
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError("failure_rate must be in [0, 1]")
        if not 0.0 <= capacity_factor <= 1.0:
            raise ConfigurationError("capacity_factor must be in [0, 1]")
        super().__init__(zones, start, end)
        self.failure_rate = float(failure_rate)
        self._capacity_factor = float(capacity_factor)

    def invoke_error(self, rng):
        if rng.random() < self.failure_rate:
            return SaturationError("injected brownout: capacity collapsed")
        return None

    def capacity_factor(self):
        return self._capacity_factor


class ThrottlingBurst(FaultModel):
    """The platform throttles a fraction of requests for a window."""

    kind = "throttle"

    __slots__ = ("rate",)

    def __init__(self, rate=0.5, zones=None, start=0.0, end=FOREVER):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        super().__init__(zones, start, end)
        self.rate = float(rate)

    def invoke_error(self, rng):
        if rng.random() < self.rate:
            return QuotaExceededError("injected throttling burst")
        return None


class LatencySpike(FaultModel):
    """Network path degradation: extra seconds on every round trip."""

    kind = "latency"

    __slots__ = ("extra_s", "jitter_sigma")

    def __init__(self, extra_s=0.25, jitter_sigma=0.0, zones=None,
                 start=0.0, end=FOREVER):
        if extra_s < 0:
            raise ConfigurationError("extra_s must be non-negative")
        super().__init__(zones, start, end)
        self.extra_s = float(extra_s)
        self.jitter_sigma = float(jitter_sigma)

    def extra_latency(self, rng):
        if self.jitter_sigma > 0:
            return self.extra_s * float(
                math.exp(rng.normal(0.0, self.jitter_sigma)))
        return self.extra_s


class NetworkPartition(FaultModel):
    """The zone's front door is unreachable: every call fails fast."""

    kind = "partition"

    def invoke_error(self, rng):
        return TransientFaultError("injected network partition")

    def batch_error(self, rng):
        return TransientFaultError("injected network partition")


class ColdStartStorm(FaultModel):
    """Warm pools evicted: everything cold-starts, and slowly."""

    kind = "coldstorm"

    __slots__ = ("multiplier", "force_cold")

    def __init__(self, multiplier=6.0, force_cold=True, zones=None,
                 start=0.0, end=FOREVER):
        if multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        super().__init__(zones, start, end)
        self.multiplier = float(multiplier)
        self.force_cold = bool(force_cold)

    def cold_start_multiplier(self):
        return self.multiplier

    def forces_cold(self):
        return self.force_cold
