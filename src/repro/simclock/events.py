"""A small discrete-event queue.

The heavy paths of the simulator are batched (a poll places 1,000 requests in
one vectorized call), but background processes — host pool scaling, drift
steps, keep-alive expiry sweeps — are naturally event-driven.  This queue
lets an experiment interleave those processes with its own actions while
staying fully deterministic.
"""

import heapq
import itertools

from repro.common.errors import ConfigurationError


class ScheduledEvent(object):
    """A callback scheduled at a simulated timestamp."""

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(self, time, seq, callback, label):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self):
        """Mark the event so the queue skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledEvent({!r} @ {:.3f}s, {})".format(
            self.label, self.time, state)


class EventQueue(object):
    """Priority queue of :class:`ScheduledEvent` driven by a `SimClock`.

    Events scheduled at the same timestamp fire in scheduling order (FIFO),
    which keeps runs deterministic.
    """

    def __init__(self, clock):
        self._clock = clock
        self._heap = []
        self._seq = itertools.count()

    def __len__(self):
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay, callback, label="event"):
        """Schedule ``callback(clock_now)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError("cannot schedule in the past")
        event = ScheduledEvent(self._clock.now + delay, next(self._seq),
                               callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, timestamp, callback, label="event"):
        """Schedule ``callback`` at an absolute simulated timestamp."""
        if timestamp < self._clock.now:
            raise ConfigurationError("cannot schedule in the past")
        event = ScheduledEvent(timestamp, next(self._seq), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def next_event_time(self):
        """Timestamp of the earliest pending event, or None if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def run_until(self, timestamp):
        """Fire all events scheduled up to ``timestamp`` (inclusive).

        The clock is advanced to each event's time as it fires and finally to
        ``timestamp``.  Returns the number of callbacks executed.
        """
        fired = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].time > timestamp:
                break
            event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.callback(self._clock.now)
            fired += 1
        self._clock.advance_to(max(timestamp, self._clock.now))
        return fired

    def run_all(self):
        """Fire every pending event in timestamp order."""
        fired = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap:
                return fired
            event = heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.callback(self._clock.now)
            fired += 1

    def _drop_cancelled_head(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
