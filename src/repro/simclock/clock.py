"""The virtual clock shared by every simulated component."""

from repro.common.errors import ConfigurationError
from repro.common.units import DAYS, HOURS


class SimClock(object):
    """Monotonic simulated time in seconds since the simulation epoch.

    The clock only moves forward.  Components read ``clock.now`` and
    experiments advance it with :meth:`advance` or :meth:`advance_to`.
    """

    __slots__ = ("_now",)

    def __init__(self, start=0.0):
        if start < 0:
            raise ConfigurationError("clock cannot start before epoch")
        self._now = float(start)

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds):
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ConfigurationError(
                "cannot move simulated time backwards ({}s)".format(seconds))
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp):
        """Jump the clock to an absolute timestamp (must not be in the past)."""
        if timestamp < self._now:
            raise ConfigurationError(
                "cannot rewind clock from {} to {}".format(
                    self._now, timestamp))
        self._now = float(timestamp)
        return self._now

    # -- convenience views ---------------------------------------------------
    @property
    def day(self):
        """Whole simulated days elapsed since the epoch."""
        return int(self._now // DAYS)

    @property
    def hour_of_day(self):
        """Fractional hour within the current simulated day (0-24)."""
        return (self._now % DAYS) / HOURS

    def __repr__(self):
        return "SimClock(day={}, hour={:.2f})".format(self.day,
                                                      self.hour_of_day)
