"""Simulated time: a virtual clock plus a discrete-event queue.

The cloud simulator never touches wall-clock time.  All components share a
:class:`SimClock`; campaigns advance it explicitly (e.g. "run a poll, wait
30 seconds, run the next poll") and long-horizon experiments jump it by days.
"""

from repro.simclock.clock import SimClock
from repro.simclock.events import EventQueue, ScheduledEvent

__all__ = ["SimClock", "EventQueue", "ScheduledEvent"]
